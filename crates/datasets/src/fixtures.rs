//! Ready-to-register dataset bundles: CSV text plus the matching [`Spec`],
//! exactly what the server's `register` op consumes. Shared by the server
//! tests, the concurrent differential oracle, and the `psens-load` driver so
//! they all exercise one well-known dataset instead of each inventing its
//! own.

use crate::{AdultGenerator, ScaleGenerator, Spec};
use psens_microdata::csv::to_csv_string;

/// A dataset ready to be registered with the server: headered CSV text and
/// the spec describing its schema and hierarchies.
#[derive(Debug, Clone)]
pub struct DatasetFixture {
    /// Suggested registry name (callers may override).
    pub name: String,
    /// Headered RFC-4180 CSV, parseable against `spec.schema()`.
    pub csv: String,
    /// Attribute roles + key-attribute hierarchies (96-node Adult lattice).
    pub spec: Spec,
}

/// `rows` synthetic Adult tuples (identifier + 4 keys + 4 confidential)
/// under the Table 7 hierarchies. Deterministic in `(seed, rows)`.
pub fn adult_fixture(seed: u64, rows: usize) -> DatasetFixture {
    let table = AdultGenerator::new(seed).generate(rows);
    DatasetFixture {
        name: format!("adult-{rows}"),
        csv: to_csv_string(&table, true),
        spec: Spec::adult(),
    }
}

/// `rows` Adult-shaped scale tuples (no identifier column, bounded
/// dictionaries) under the same hierarchies. Deterministic in
/// `(seed, rows)`.
pub fn scale_fixture(seed: u64, rows: usize) -> DatasetFixture {
    let table = ScaleGenerator::new(seed).generate(rows);
    DatasetFixture {
        name: format!("scale-{rows}"),
        csv: to_csv_string(&table, true),
        spec: Spec::scale(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::csv::read_table_str;

    #[test]
    fn adult_fixture_roundtrips_through_its_own_spec() {
        let fixture = adult_fixture(11, 40);
        let schema = fixture.spec.schema().unwrap();
        let table = read_table_str(&fixture.csv, schema, true).unwrap();
        assert_eq!(table.n_rows(), 40);
        assert_eq!(fixture.spec.qi_space().unwrap().lattice().node_count(), 96);
    }

    #[test]
    fn scale_fixture_roundtrips_through_its_own_spec() {
        let fixture = scale_fixture(3, 25);
        let schema = fixture.spec.schema().unwrap();
        let table = read_table_str(&fixture.csv, schema, true).unwrap();
        assert_eq!(table.n_rows(), 25);
    }

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(adult_fixture(7, 30).csv, adult_fixture(7, 30).csv);
        assert_eq!(scale_fixture(7, 30).csv, scale_fixture(7, 30).csv);
    }
}
