//! Worked examples from the successor papers whose models the
//! [`psens_core::PrivacyModel`] trait hosts: the l-diversity inpatient
//! tables (Machanavajjhala et al., ICDE 2006) and the t-closeness salary
//! table (Li et al., ICDE 2007). They are the golden inputs for the
//! per-model metric tests in `psens-metrics`.

use psens_microdata::{table_from_str_rows, Attribute, Schema, Table};

/// l-diversity paper **Table 2**: the 4-anonymous inpatient release whose
/// third group is homogeneous in Condition (all Cancer) — the homogeneity
/// attack that motivates diversity. Groups of four on (ZipCode, Age,
/// Nationality).
pub fn ldiv_table2_inpatient_4anonymous() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("ZipCode"),
        Attribute::cat_key("Age"),
        Attribute::cat_key("Nationality"),
        Attribute::cat_confidential("Condition"),
    ])
    .expect("valid schema");
    table_from_str_rows(
        schema,
        &[
            &["130**", "<30", "*", "Heart Disease"],
            &["130**", "<30", "*", "Heart Disease"],
            &["130**", "<30", "*", "Viral Infection"],
            &["130**", "<30", "*", "Viral Infection"],
            &["1485*", ">=40", "*", "Cancer"],
            &["1485*", ">=40", "*", "Heart Disease"],
            &["1485*", ">=40", "*", "Viral Infection"],
            &["1485*", ">=40", "*", "Viral Infection"],
            &["130**", "3*", "*", "Cancer"],
            &["130**", "3*", "*", "Cancer"],
            &["130**", "3*", "*", "Cancer"],
            &["130**", "3*", "*", "Cancer"],
        ],
    )
    .expect("fixture is well-formed")
}

/// l-diversity paper **Table 4**: the 3-diverse inpatient release. Every
/// group holds exactly three distinct conditions with frequencies
/// (2, 1, 1), so the table is distinct 3-diverse but only entropy
/// 2√2 ≈ 2.83-diverse — the paper's own illustration that the entropy
/// variant is strictly stronger.
pub fn ldiv_table4_inpatient_3diverse() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("ZipCode"),
        Attribute::cat_key("Age"),
        Attribute::cat_key("Nationality"),
        Attribute::cat_confidential("Condition"),
    ])
    .expect("valid schema");
    table_from_str_rows(
        schema,
        &[
            &["1305*", "<=40", "*", "Heart Disease"],
            &["1305*", "<=40", "*", "Viral Infection"],
            &["1305*", "<=40", "*", "Cancer"],
            &["1305*", "<=40", "*", "Cancer"],
            &["1485*", ">40", "*", "Cancer"],
            &["1485*", ">40", "*", "Heart Disease"],
            &["1485*", ">40", "*", "Viral Infection"],
            &["1485*", ">40", "*", "Viral Infection"],
            &["1306*", "<=40", "*", "Heart Disease"],
            &["1306*", "<=40", "*", "Viral Infection"],
            &["1306*", "<=40", "*", "Cancer"],
            &["1306*", "<=40", "*", "Cancer"],
        ],
    )
    .expect("fixture is well-formed")
}

/// t-closeness paper **Table 3**: the 3-anonymous, distinct 3-diverse
/// salary release the paper attacks with distribution skew — the first
/// group's salaries are the three lowest in the table, so closeness to the
/// global distribution is poor even though diversity holds. Salary and
/// Disease are both confidential.
pub fn tclose_table3_salary_3diverse() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("ZipCode"),
        Attribute::cat_key("Age"),
        Attribute::int_confidential("Salary"),
        Attribute::cat_confidential("Disease"),
    ])
    .expect("valid schema");
    table_from_str_rows(
        schema,
        &[
            &["476**", "2*", "3000", "Gastric Ulcer"],
            &["476**", "2*", "4000", "Gastritis"],
            &["476**", "2*", "5000", "Stomach Cancer"],
            &["4790*", ">=40", "6000", "Gastritis"],
            &["4790*", ">=40", "7000", "Flu"],
            &["4790*", ">=40", "8000", "Bronchitis"],
            &["476**", "3*", "9000", "Bronchitis"],
            &["476**", "3*", "10000", "Pneumonia"],
            &["476**", "3*", "11000", "Stomach Cancer"],
        ],
    )
    .expect("fixture is well-formed")
}
