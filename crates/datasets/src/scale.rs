//! Size-parameterized Adult-shaped tables for scaling experiments.
//!
//! [`crate::AdultGenerator`] reproduces the paper's 400/4,000-tuple samples,
//! identifier column included. At the millions-of-rows scale the ROADMAP
//! targets, that identifier is pure ballast: 10M distinct `P0000042` strings
//! dominate memory while playing no privacy role (identifiers are removed
//! before masking anyway). [`ScaleGenerator`] keeps the same key and
//! confidential attributes — and the same samplers, so marginals and
//! correlations match — but drops `Id` and `FnlWgt`, leaving every
//! dictionary bounded by its attribute's small domain regardless of row
//! count.
//!
//! Generation is sequential in one seeded RNG, so
//! [`ScaleGenerator::generate`] equals the concatenation of
//! [`ScaleGenerator::chunks`] for *any* chunk size: the streaming producer
//! and the one-shot table are the same dataset, which is what lets the CLI
//! stream a 10M-row CSV to disk in bounded memory and the benches compare
//! serial and chunked group-by on identical inputs.

use crate::adult::{
    pick_weighted, sample_age, sample_capital_gain, sample_capital_loss, sample_high_pay,
    sample_marital, sample_tax_period, PAY, RACE_WEIGHTS,
};
use crate::hierarchies::{MARITAL_STATUS, RACE, SEX};
use psens_microdata::{Attribute, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic Adult-shaped generator for large tables.
#[derive(Debug, Clone)]
pub struct ScaleGenerator {
    seed: u64,
}

impl ScaleGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        ScaleGenerator { seed }
    }

    /// The scale schema: the paper's four key attributes and four
    /// confidential attributes, nothing else.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("MaritalStatus"),
            Attribute::cat_key("Race"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Pay"),
            Attribute::int_confidential("CapitalGain"),
            Attribute::int_confidential("CapitalLoss"),
            Attribute::cat_confidential("TaxPeriod"),
        ])
        .expect("static schema is valid")
    }

    /// Generates `n` tuples as one table.
    pub fn generate(&self, n: usize) -> Table {
        let mut rng = self.rng();
        let mut builder = TableBuilder::new(Self::schema());
        for _ in 0..n {
            builder
                .push_row(sample_row(&mut rng))
                .expect("generated row matches schema");
        }
        builder.finish()
    }

    /// Streams `n` tuples as tables of at most `chunk_rows` rows (clamped to
    /// at least 1). The concatenation of the chunks is exactly
    /// [`ScaleGenerator::generate`]`(n)` — one RNG runs through all chunks —
    /// so memory is bounded by the chunk size, not `n`.
    pub fn chunks(&self, n: usize, chunk_rows: usize) -> ScaleChunks {
        ScaleChunks {
            rng: self.rng(),
            remaining: n,
            chunk_rows: chunk_rows.max(1),
        }
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Iterator of chunk tables from [`ScaleGenerator::chunks`].
#[derive(Debug)]
pub struct ScaleChunks {
    rng: StdRng,
    remaining: usize,
    chunk_rows: usize,
}

impl Iterator for ScaleChunks {
    type Item = Table;

    fn next(&mut self) -> Option<Table> {
        if self.remaining == 0 {
            return None;
        }
        let rows = self.remaining.min(self.chunk_rows);
        self.remaining -= rows;
        let mut builder = TableBuilder::new(ScaleGenerator::schema());
        for _ in 0..rows {
            builder
                .push_row(sample_row(&mut self.rng))
                .expect("generated row matches schema");
        }
        Some(builder.finish())
    }
}

/// One tuple of the scale dataset — the same mixture as
/// [`crate::AdultGenerator::generate`] minus the identifier and weight
/// columns (and with the same 3% outlier component planting rare key
/// combinations).
fn sample_row(rng: &mut StdRng) -> Vec<Value> {
    let outlier = rng.gen::<f64>() < 0.03;
    let (age, marital, race, sex) = if outlier {
        (
            rng.gen_range(17i64..=90),
            MARITAL_STATUS[rng.gen_range(0..MARITAL_STATUS.len())],
            RACE[rng.gen_range(0..RACE.len())],
            SEX[rng.gen_range(0..SEX.len())],
        )
    } else {
        let age = sample_age(rng);
        let marital = sample_marital(rng, age);
        let race = pick_weighted(rng, &RACE, &RACE_WEIGHTS);
        let sex = if rng.gen::<f64>() < 0.669 {
            SEX[0]
        } else {
            SEX[1]
        };
        (age, marital, race, sex)
    };
    let high_pay = sample_high_pay(rng, age, marital, sex);
    let pay = if high_pay { PAY[1] } else { PAY[0] };
    vec![
        Value::Int(age),
        Value::Text(marital.to_owned()),
        Value::Text(race.to_owned()),
        Value::Text(sex.to_owned()),
        Value::Text(pay.to_owned()),
        Value::Int(sample_capital_gain(rng, high_pay)),
        Value::Int(sample_capital_loss(rng, high_pay)),
        Value::Text(sample_tax_period(rng, high_pay).to_owned()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::ChunkedTable;

    #[test]
    fn generation_is_deterministic() {
        let a = ScaleGenerator::new(11).generate(500);
        let b = ScaleGenerator::new(11).generate(500);
        assert_eq!(a, b);
        assert_ne!(a, ScaleGenerator::new(12).generate(500));
    }

    #[test]
    fn chunks_concatenate_to_generate() {
        let g = ScaleGenerator::new(13);
        let whole = g.generate(257);
        for chunk_rows in [1usize, 7, 64, 256, 257, 1000] {
            let mut chunked = ChunkedTable::new(ScaleGenerator::schema(), chunk_rows);
            for chunk in g.chunks(257, chunk_rows) {
                chunked.push_chunk(chunk);
            }
            assert_eq!(chunked.n_rows(), 257);
            assert_eq!(chunked.to_table(), whole, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn schema_matches_paper_roles() {
        let schema = ScaleGenerator::schema();
        let keys: Vec<&str> = schema
            .key_indices()
            .iter()
            .map(|&i| schema.attribute(i).name())
            .collect();
        assert_eq!(keys, vec!["Age", "MaritalStatus", "Race", "Sex"]);
        let conf: Vec<&str> = schema
            .confidential_indices()
            .iter()
            .map(|&i| schema.attribute(i).name())
            .collect();
        assert_eq!(conf, vec!["Pay", "CapitalGain", "CapitalLoss", "TaxPeriod"]);
    }

    #[test]
    fn rows_compatible_with_adult_hierarchies() {
        let t = ScaleGenerator::new(14).generate(2000);
        let qi = crate::hierarchies::adult_qi_space();
        let node = psens_hierarchy::Node(vec![1, 1, 1, 1]);
        assert!(qi.apply(&t, &node).is_ok());
    }

    #[test]
    fn dictionaries_stay_bounded() {
        let t = ScaleGenerator::new(15).generate(10_000);
        for (i, name) in [(1usize, "MaritalStatus"), (2, "Race"), (3, "Sex")] {
            let distinct = t.column(i).n_distinct();
            assert!(distinct <= 7, "{name} has {distinct} distinct values");
        }
    }
}
