//! # psens-datasets
//!
//! Data for reproducing the paper's examples and experiments:
//!
//! - [`paper`]: verbatim fixtures of Tables 1–3, Figure 3's microdata, and
//!   Example 1's 1,000-tuple dataset (exact Table 5 frequencies).
//! - [`hierarchies`]: the Figure 1/2 ZipCode & Sex hierarchies and the
//!   Table 7 Adult hierarchies (96-node lattice, height 9).
//! - [`adult`]: a deterministic synthetic UCI-Adult generator matching the
//!   published census marginals — the offline substitute for the dataset the
//!   paper downloaded from the UCI repository (DESIGN.md §4).
//! - [`scale`]: a size-parameterized Adult-shaped generator (no identifier
//!   column, bounded dictionaries) for multi-million-row scaling runs, with
//!   a chunk-streaming mode whose output concatenates to the one-shot table.
//! - [`related`]: worked examples from the successor papers (l-diversity,
//!   t-closeness) — golden inputs for the pluggable privacy models.
//! - [`spec`]: the JSON dataset specification (attribute roles + hierarchies)
//!   shared by the CLI file format and the server's `register` op.
//! - [`fixtures`]: ready-to-register CSV + spec bundles for server tests and
//!   the `psens-load` driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adult;
pub mod fixtures;
pub mod hierarchies;
pub mod paper;
pub mod related;
pub mod scale;
pub mod spec;

pub use adult::{paper_samples, AdultGenerator};
pub use scale::{ScaleChunks, ScaleGenerator};
pub use spec::Spec;
