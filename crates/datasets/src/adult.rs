//! A deterministic synthetic stand-in for the UCI *Adult* census dataset.
//!
//! The paper's experiments (Section 4, Table 8) draw 400- and 4,000-tuple
//! samples from Adult [16]. This environment has no network access, so we
//! synthesize a dataset whose **marginal distributions match the published
//! Adult census marginals** for the four key attributes (Age 17–90,
//! MaritalStatus, Race, Sex) and whose confidential attributes (Pay,
//! CapitalGain, CapitalLoss, TaxPeriod) exhibit the real dataset's heavy
//! skew (three quarters `<=50K`, capital gain/loss mostly absent). The
//! age↔marital-status, sex/marital↔pay, and pay↔capital correlations are
//! modeled so that QI-groups show the homogeneity that drives the paper's
//! attribute-disclosure counts. See DESIGN.md §4 for the substitution
//! argument.
//!
//! Generation is fully deterministic given the seed.

use psens_microdata::{Attribute, Schema, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::hierarchies::{COUNTRY, EDUCATION, MARITAL_STATUS, OCCUPATION, RACE, SEX, WORK_CLASS};

/// Tax filing periods for the synthetic `TaxPeriod` confidential attribute.
///
/// Standard Adult has no such column; the paper evidently used a derived
/// extract, so we synthesize a plausible domain.
pub const TAX_PERIOD: [&str; 4] = ["Annual", "Quarterly", "Monthly", "Weekly"];

/// Pay classes, as in Adult's target column.
pub const PAY: [&str; 2] = ["<=50K", ">50K"];

/// Deterministic synthetic Adult generator.
#[derive(Debug, Clone)]
pub struct AdultGenerator {
    seed: u64,
}

/// Decade buckets with approximate Adult census proportions (per mille).
pub(crate) const AGE_BUCKETS: [(i64, i64, u32); 8] = [
    (17, 19, 45),
    (20, 29, 245),
    (30, 39, 262),
    (40, 49, 215),
    (50, 59, 140),
    (60, 69, 65),
    (70, 79, 21),
    (80, 90, 7),
];

/// Race proportions (per mille), Adult census.
pub(crate) const RACE_WEIGHTS: [u32; 5] = [854, 96, 31, 10, 9];

impl AdultGenerator {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        AdultGenerator { seed }
    }

    /// The synthetic Adult schema: an identifier, the paper's four key
    /// attributes, its four confidential attributes, and one bookkeeping
    /// attribute (`FnlWgt`) that plays no privacy role.
    pub fn schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_identifier("Id"),
            Attribute::int_key("Age"),
            Attribute::cat_key("MaritalStatus"),
            Attribute::cat_key("Race"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Pay"),
            Attribute::int_confidential("CapitalGain"),
            Attribute::int_confidential("CapitalLoss"),
            Attribute::cat_confidential("TaxPeriod"),
            Attribute::new(
                "FnlWgt",
                psens_microdata::Kind::Int,
                psens_microdata::Role::Other,
            ),
        ])
        .expect("static schema is valid")
    }

    /// The wide benchmark schema: [`AdultGenerator::schema`] plus four more
    /// key attributes (Education, WorkClass, Occupation, Country), matching
    /// [`crate::hierarchies::adult_wide_qi_space`]'s 8-QI lattice.
    pub fn wide_schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_identifier("Id"),
            Attribute::int_key("Age"),
            Attribute::cat_key("MaritalStatus"),
            Attribute::cat_key("Race"),
            Attribute::cat_key("Sex"),
            Attribute::cat_key("Education"),
            Attribute::cat_key("WorkClass"),
            Attribute::cat_key("Occupation"),
            Attribute::cat_key("Country"),
            Attribute::cat_confidential("Pay"),
            Attribute::int_confidential("CapitalGain"),
            Attribute::int_confidential("CapitalLoss"),
            Attribute::cat_confidential("TaxPeriod"),
        ])
        .expect("static schema is valid")
    }

    /// Generates `n` tuples against [`AdultGenerator::wide_schema`]. The
    /// extension attributes correlate with pay the way Adult's do (degrees
    /// and white-collar work skew high-pay), so wide QI-groups still show
    /// the homogeneity the paper's disclosure counts rely on.
    pub fn generate_wide(&self, n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x81DE);
        let mut builder = TableBuilder::new(Self::wide_schema());
        for i in 0..n {
            let age = sample_age(&mut rng);
            let marital = sample_marital(&mut rng, age);
            let race = pick_weighted(&mut rng, &RACE, &RACE_WEIGHTS);
            let sex = if rng.gen::<f64>() < 0.669 {
                SEX[0]
            } else {
                SEX[1]
            };
            let high_pay = sample_high_pay(&mut rng, age, marital, sex);
            let education = pick_weighted(
                &mut rng,
                &EDUCATION,
                if high_pay {
                    &[20, 20, 35, 25]
                } else {
                    &[45, 30, 18, 7]
                },
            );
            let work_class = pick_weighted(
                &mut rng,
                &WORK_CLASS,
                if high_pay {
                    &[60, 20, 18, 2]
                } else {
                    &[65, 10, 25, 10]
                },
            );
            let occupation = pick_weighted(
                &mut rng,
                &OCCUPATION,
                if high_pay {
                    &[60, 20, 10, 10]
                } else {
                    &[25, 40, 25, 10]
                },
            );
            let country = pick_weighted(&mut rng, &COUNTRY, &[895, 40, 20, 45]);
            let pay = if high_pay { PAY[1] } else { PAY[0] };
            let capital_gain = sample_capital_gain(&mut rng, high_pay);
            let capital_loss = sample_capital_loss(&mut rng, high_pay);
            let tax_period = sample_tax_period(&mut rng, high_pay);
            builder
                .push_row(vec![
                    Value::Text(format!("P{i:06}")),
                    Value::Int(age),
                    Value::Text(marital.to_owned()),
                    Value::Text(race.to_owned()),
                    Value::Text(sex.to_owned()),
                    Value::Text(education.to_owned()),
                    Value::Text(work_class.to_owned()),
                    Value::Text(occupation.to_owned()),
                    Value::Text(country.to_owned()),
                    Value::Text(pay.to_owned()),
                    Value::Int(capital_gain),
                    Value::Int(capital_loss),
                    Value::Text(tax_period.to_owned()),
                ])
                .expect("generated row matches schema");
        }
        builder.finish()
    }

    /// Generates `n` tuples.
    pub fn generate(&self, n: usize) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut builder = TableBuilder::new(Self::schema());
        for i in 0..n {
            // Census joint distributions are ragged: a small uniform mixture
            // component plants the rare key combinations (an 87-year-old
            // separated Amer-Indian man, ...) whose singleton QI-groups force
            // larger samples toward coarser generalizations — the effect
            // behind Table 8's node choices.
            let outlier = rng.gen::<f64>() < 0.03;
            let (age, marital, race, sex) = if outlier {
                (
                    rng.gen_range(17i64..=90),
                    MARITAL_STATUS[rng.gen_range(0..MARITAL_STATUS.len())],
                    RACE[rng.gen_range(0..RACE.len())],
                    SEX[rng.gen_range(0..SEX.len())],
                )
            } else {
                let age = sample_age(&mut rng);
                let marital = sample_marital(&mut rng, age);
                let race = pick_weighted(&mut rng, &RACE, &RACE_WEIGHTS);
                let sex = if rng.gen::<f64>() < 0.669 {
                    SEX[0]
                } else {
                    SEX[1]
                };
                (age, marital, race, sex)
            };
            let high_pay = sample_high_pay(&mut rng, age, marital, sex);
            let pay = if high_pay { PAY[1] } else { PAY[0] };
            let capital_gain = sample_capital_gain(&mut rng, high_pay);
            let capital_loss = sample_capital_loss(&mut rng, high_pay);
            let tax_period = sample_tax_period(&mut rng, high_pay);
            let fnlwgt = rng.gen_range(20_000i64..500_000);
            builder
                .push_row(vec![
                    Value::Text(format!("P{i:06}")),
                    Value::Int(age),
                    Value::Text(marital.to_owned()),
                    Value::Text(race.to_owned()),
                    Value::Text(sex.to_owned()),
                    Value::Text(pay.to_owned()),
                    Value::Int(capital_gain),
                    Value::Int(capital_loss),
                    Value::Text(tax_period.to_owned()),
                    Value::Int(fnlwgt),
                ])
                .expect("generated row matches schema");
        }
        builder.finish()
    }
}

pub(crate) fn pick_weighted<'a, T: ?Sized>(
    rng: &mut StdRng,
    items: &[&'a T],
    weights: &[u32],
) -> &'a T {
    debug_assert_eq!(items.len(), weights.len());
    let total: u32 = weights.iter().sum();
    let mut roll = rng.gen_range(0..total);
    for (item, &w) in items.iter().zip(weights) {
        if roll < w {
            return item;
        }
        roll -= w;
    }
    items[items.len() - 1]
}

pub(crate) fn sample_age(rng: &mut StdRng) -> i64 {
    let total: u32 = AGE_BUCKETS.iter().map(|&(_, _, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(lo, hi, w) in &AGE_BUCKETS {
        if roll < w {
            return rng.gen_range(lo..=hi);
        }
        roll -= w;
    }
    90
}

pub(crate) fn sample_marital(rng: &mut StdRng, age: i64) -> &'static str {
    // Base Adult proportions, shifted by age bracket: the young are mostly
    // never-married, widowhood concentrates in old age.
    let weights: [u32; 7] = if age < 25 {
        [780, 150, 30, 20, 2, 15, 3]
    } else if age < 35 {
        [380, 450, 110, 35, 5, 18, 2]
    } else if age < 55 {
        [150, 560, 210, 45, 15, 19, 1]
    } else if age < 70 {
        [70, 560, 220, 30, 100, 19, 1]
    } else {
        [40, 420, 150, 15, 360, 15, 0]
    };
    let marital: Vec<&'static str> = MARITAL_STATUS.to_vec();
    pick_weighted(rng, &marital, &weights)
}

pub(crate) fn sample_high_pay(rng: &mut StdRng, age: i64, marital: &str, sex: &str) -> bool {
    // Logistic-flavoured: married, male, and mid-career raise P(>50K);
    // calibrated so the population rate lands near Adult's 24%.
    let mut p = 0.08;
    if marital.starts_with("Married") {
        p += 0.22;
    }
    if sex == "Male" {
        p += 0.05;
    }
    if (35..=55).contains(&age) {
        p += 0.10;
    } else if (28..35).contains(&age) || (56..=62).contains(&age) {
        p += 0.05;
    } else if age < 23 {
        p = 0.02;
    }
    rng.gen::<f64>() < p
}

pub(crate) fn sample_capital_gain(rng: &mut StdRng, high_pay: bool) -> i64 {
    // Adult: ~91.7% zeros; nonzero values cluster on a few spikes.
    let zero_prob = if high_pay { 0.78 } else { 0.96 };
    if rng.gen::<f64>() < zero_prob {
        return 0;
    }
    let spikes: [i64; 6] = [2174, 3103, 5178, 7688, 15024, 99999];
    let weights: [u32; 6] = if high_pay {
        [5, 15, 25, 25, 25, 5]
    } else {
        [50, 30, 10, 5, 4, 1]
    };
    *pick_weighted(rng, &spikes.iter().collect::<Vec<_>>(), &weights)
}

pub(crate) fn sample_capital_loss(rng: &mut StdRng, high_pay: bool) -> i64 {
    // Adult: ~95.3% zeros.
    let zero_prob = if high_pay { 0.88 } else { 0.97 };
    if rng.gen::<f64>() < zero_prob {
        return 0;
    }
    let spikes: [i64; 4] = [1408, 1721, 1902, 2415];
    let weights: [u32; 4] = [25, 30, 35, 10];
    *pick_weighted(rng, &spikes.iter().collect::<Vec<_>>(), &weights)
}

pub(crate) fn sample_tax_period(rng: &mut StdRng, high_pay: bool) -> &'static str {
    let weights: [u32; 4] = if high_pay {
        [70, 20, 8, 2]
    } else {
        [45, 20, 20, 15]
    };
    let periods: Vec<&'static str> = TAX_PERIOD.to_vec();
    pick_weighted(rng, &periods, &weights)
}

/// The two initial microdata samples of the paper's Section 4: 400 and
/// 4,000 tuples, drawn with fixed seeds for reproducibility.
pub fn paper_samples() -> (Table, Table) {
    (
        AdultGenerator::new(0x5EED_0400).generate(400),
        AdultGenerator::new(0x5EED_4000).generate(4000),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::FrequencySet;

    #[test]
    fn generation_is_deterministic() {
        let a = AdultGenerator::new(7).generate(200);
        let b = AdultGenerator::new(7).generate(200);
        assert_eq!(a, b);
        let c = AdultGenerator::new(8).generate(200);
        assert_ne!(a, c);
    }

    #[test]
    fn schema_roles_match_section4() {
        let schema = AdultGenerator::schema();
        let names: Vec<&str> = schema
            .key_indices()
            .iter()
            .map(|&i| schema.attribute(i).name())
            .collect();
        assert_eq!(names, vec!["Age", "MaritalStatus", "Race", "Sex"]);
        let names: Vec<&str> = schema
            .confidential_indices()
            .iter()
            .map(|&i| schema.attribute(i).name())
            .collect();
        assert_eq!(
            names,
            vec!["Pay", "CapitalGain", "CapitalLoss", "TaxPeriod"]
        );
    }

    #[test]
    fn ages_are_in_domain() {
        let t = AdultGenerator::new(1).generate(5000);
        let age = t.column_by_name("Age").unwrap();
        for row in 0..t.n_rows() {
            let v = age.value(row).as_int().unwrap();
            assert!((17..=90).contains(&v), "age {v} out of domain");
        }
        // The full domain has 74 distinct values; a 5,000-sample should see
        // most of them.
        assert!(
            age.n_distinct() > 60,
            "only {} distinct ages",
            age.n_distinct()
        );
    }

    #[test]
    fn marginals_roughly_match_adult() {
        let t = AdultGenerator::new(2).generate(20_000);
        let n = t.n_rows() as f64;
        let fs = FrequencySet::of_attribute(&t, "Sex").unwrap();
        let male = fs.count_of(&[Value::Text("Male".into())]) as f64 / n;
        assert!((0.63..0.70).contains(&male), "male share {male}");
        let fs = FrequencySet::of_attribute(&t, "Race").unwrap();
        let white = fs.count_of(&[Value::Text("White".into())]) as f64 / n;
        assert!((0.82..0.89).contains(&white), "white share {white}");
        let fs = FrequencySet::of_attribute(&t, "Pay").unwrap();
        let high = fs.count_of(&[Value::Text(">50K".into())]) as f64 / n;
        assert!((0.18..0.30).contains(&high), "high-pay share {high}");
        let fs = FrequencySet::of_attribute(&t, "CapitalGain").unwrap();
        let zero = fs.count_of(&[Value::Int(0)]) as f64 / n;
        assert!((0.87..0.96).contains(&zero), "zero capital gain {zero}");
    }

    #[test]
    fn correlations_point_the_right_way() {
        let t = AdultGenerator::new(3).generate(20_000);
        let (mut married_high, mut married_n) = (0usize, 0usize);
        let (mut single_high, mut single_n) = (0usize, 0usize);
        for row in 0..t.n_rows() {
            let married = t.value(row, 2).as_text().unwrap().starts_with("Married");
            let high = t.value(row, 5).as_text().unwrap() == ">50K";
            if married {
                married_n += 1;
                married_high += usize::from(high);
            } else {
                single_n += 1;
                single_high += usize::from(high);
            }
        }
        let married_rate = married_high as f64 / married_n as f64;
        let single_rate = single_high as f64 / single_n as f64;
        assert!(
            married_rate > single_rate * 2.0,
            "married {married_rate} vs single {single_rate}"
        );
    }

    #[test]
    fn paper_samples_have_requested_sizes() {
        let (s400, s4000) = paper_samples();
        assert_eq!(s400.n_rows(), 400);
        assert_eq!(s4000.n_rows(), 4000);
        // The samples must be compatible with the Table 7 hierarchies.
        let qi = crate::hierarchies::adult_qi_space();
        let node = psens_hierarchy::Node(vec![1, 1, 1, 1]);
        assert!(qi.apply(&s400, &node).is_ok());
        assert!(qi.apply(&s4000, &node).is_ok());
    }

    #[test]
    fn identifiers_are_unique() {
        let t = AdultGenerator::new(4).generate(1000);
        let id = t.column_by_name("Id").unwrap();
        assert_eq!(id.n_distinct(), 1000);
    }

    #[test]
    fn wide_sample_is_deterministic_and_lattice_compatible() {
        let a = AdultGenerator::new(6).generate_wide(300);
        let b = AdultGenerator::new(6).generate_wide(300);
        assert_eq!(a, b);
        let schema = AdultGenerator::wide_schema();
        let names: Vec<&str> = schema
            .key_indices()
            .iter()
            .map(|&i| schema.attribute(i).name())
            .collect();
        assert_eq!(
            names,
            vec![
                "Age",
                "MaritalStatus",
                "Race",
                "Sex",
                "Education",
                "WorkClass",
                "Occupation",
                "Country"
            ]
        );
        // Every row must generalize under the wide hierarchies.
        let qi = crate::hierarchies::adult_wide_qi_space();
        let node = psens_hierarchy::Node(vec![1, 1, 1, 1, 1, 1, 1, 1]);
        assert!(qi.apply(&a, &node).is_ok());
    }
}
