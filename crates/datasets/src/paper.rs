//! Verbatim fixtures of every worked example in the paper.

use psens_microdata::{table_from_str_rows, Attribute, Schema, Table, TableBuilder, Value};

/// Paper **Table 1**: patient masked microdata satisfying 2-anonymity.
///
/// Age holds decade labels ("the Age attribute was generalized to multiples
/// of 10"), so the column is categorical in the masked release.
pub fn table1_patients() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("Age"),
        Attribute::cat_key("ZipCode"),
        Attribute::cat_key("Sex"),
        Attribute::cat_confidential("Illness"),
    ])
    .expect("valid schema");
    table_from_str_rows(
        schema,
        &[
            &["50", "43102", "M", "Colon Cancer"],
            &["30", "43102", "F", "Breast Cancer"],
            &["30", "43102", "F", "HIV"],
            &["20", "43102", "M", "Diabetes"],
            &["20", "43102", "M", "Diabetes"],
            &["50", "43102", "M", "Heart Disease"],
        ],
    )
    .expect("fixture is well-formed")
}

/// Paper **Table 2**: the intruder's external information.
pub fn table2_external() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_identifier("Name"),
        Attribute::int_key("Age"),
        Attribute::cat_key("Sex"),
        Attribute::cat_key("ZipCode"),
    ])
    .expect("valid schema");
    table_from_str_rows(
        schema,
        &[
            &["Sam", "29", "M", "43102"],
            &["Gloria", "38", "F", "43102"],
            &["Adam", "51", "M", "43102"],
            &["Eric", "29", "M", "43102"],
            &["Tanisha", "34", "F", "43102"],
            &["Don", "51", "M", "43102"],
        ],
    )
    .expect("fixture is well-formed")
}

/// Paper **Table 3**: masked microdata satisfying 1-sensitive 3-anonymity
/// (the first group has two illnesses but a single income).
pub fn table3_psensitive_example() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("Age"),
        Attribute::cat_key("ZipCode"),
        Attribute::cat_key("Sex"),
        Attribute::cat_confidential("Illness"),
        Attribute::int_confidential("Income"),
    ])
    .expect("valid schema");
    table_from_str_rows(
        schema,
        &[
            &["20", "43102", "F", "AIDS", "50000"],
            &["20", "43102", "F", "AIDS", "50000"],
            &["20", "43102", "F", "Diabetes", "50000"],
            &["30", "43102", "M", "Diabetes", "30000"],
            &["30", "43102", "M", "Diabetes", "40000"],
            &["30", "43102", "M", "Heart Disease", "30000"],
            &["30", "43102", "M", "Heart Disease", "40000"],
        ],
    )
    .expect("fixture is well-formed")
}

/// Paper **Table 3, amended**: "If the first tuple would have a different
/// value for income (such as 40,000) ... the value of p would be 2."
pub fn table3_fixed() -> Table {
    let schema = table3_psensitive_example().schema().clone();
    table_from_str_rows(
        schema,
        &[
            &["20", "43102", "F", "AIDS", "40000"],
            &["20", "43102", "F", "AIDS", "50000"],
            &["20", "43102", "F", "Diabetes", "50000"],
            &["30", "43102", "M", "Diabetes", "30000"],
            &["30", "43102", "M", "Diabetes", "40000"],
            &["30", "43102", "M", "Heart Disease", "30000"],
            &["30", "43102", "M", "Heart Disease", "40000"],
        ],
    )
    .expect("fixture is well-formed")
}

/// Paper **Figure 3**: the 10-tuple (Sex, ZipCode) initial microdata used
/// for the minimal-generalization-with-suppression walkthrough (Table 4).
///
/// An `Illness` confidential attribute is attached (the paper's figure shows
/// only the key attributes; the sensitivity side needs at least one
/// confidential attribute to be non-vacuous).
pub fn figure3_microdata() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("Sex"),
        Attribute::cat_key("ZipCode"),
        Attribute::cat_confidential("Illness"),
    ])
    .expect("valid schema");
    table_from_str_rows(
        schema,
        &[
            &["M", "41076", "Flu"],
            &["F", "41099", "HIV"],
            &["M", "41099", "Asthma"],
            &["M", "41076", "HIV"],
            &["F", "43102", "Flu"],
            &["M", "43102", "Asthma"],
            &["M", "43102", "HIV"],
            &["F", "43103", "Flu"],
            &["M", "48202", "Asthma"],
            &["M", "48201", "Flu"],
        ],
    )
    .expect("fixture is well-formed")
}

/// Paper **Example 1 / Tables 5–6**: a 1,000-tuple microdata whose three
/// confidential attributes have exactly the frequency sets of Table 5
/// (`S1`: 300/300/200/100/100; `S2`: 500/300/100/40/35/25; `S3`:
/// 700/200/50/10/10/10/10/5/3/2).
///
/// Two key attributes are included as the example prescribes; their values
/// cycle so group structure is available if needed.
pub fn example1_microdata() -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("K1"),
        Attribute::cat_key("K2"),
        Attribute::cat_confidential("S1"),
        Attribute::cat_confidential("S2"),
        Attribute::cat_confidential("S3"),
    ])
    .expect("valid schema");
    let f1: &[usize] = &[300, 300, 200, 100, 100];
    let f2: &[usize] = &[500, 300, 100, 40, 35, 25];
    let f3: &[usize] = &[700, 200, 50, 10, 10, 10, 10, 5, 3, 2];
    let expand = |freqs: &[usize]| -> Vec<String> {
        freqs
            .iter()
            .enumerate()
            .flat_map(|(v, &count)| std::iter::repeat_n(format!("v{v}"), count))
            .collect()
    };
    let (c1, c2, c3) = (expand(f1), expand(f2), expand(f3));
    let mut builder = TableBuilder::new(schema);
    for i in 0..1000 {
        builder
            .push_row(vec![
                Value::Text(format!("k{}", i % 4)),
                Value::Text(format!("g{}", i % 2)),
                Value::Text(c1[i].clone()),
                Value::Text(c2[i].clone()),
                Value::Text(c3[i].clone()),
            ])
            .expect("fixture row is valid");
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let t = table1_patients();
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.schema().key_indices(), vec![0, 1, 2]);
        assert_eq!(t.schema().confidential_indices(), vec![3]);
    }

    #[test]
    fn table2_shape() {
        let t = table2_external();
        assert_eq!(t.n_rows(), 6);
        assert_eq!(t.schema().identifier_indices(), vec![0]);
        assert_eq!(t.value(0, 0), Value::Text("Sam".into()));
        assert_eq!(t.value(2, 1), Value::Int(51));
    }

    #[test]
    fn table3_shapes() {
        assert_eq!(table3_psensitive_example().n_rows(), 7);
        assert_eq!(table3_fixed().n_rows(), 7);
        assert_eq!(
            table3_psensitive_example().schema().confidential_indices(),
            vec![3, 4]
        );
    }

    #[test]
    fn figure3_shape() {
        let t = figure3_microdata();
        assert_eq!(t.n_rows(), 10);
        assert_eq!(t.schema().key_indices(), vec![0, 1]);
    }

    #[test]
    fn example1_has_exact_frequencies() {
        use psens_microdata::FrequencySet;
        let t = example1_microdata();
        assert_eq!(t.n_rows(), 1000);
        let fs = FrequencySet::of_attribute(&t, "S1").unwrap();
        assert_eq!(fs.descending_counts(), vec![300, 300, 200, 100, 100]);
        let fs = FrequencySet::of_attribute(&t, "S2").unwrap();
        assert_eq!(fs.descending_counts(), vec![500, 300, 100, 40, 35, 25]);
        let fs = FrequencySet::of_attribute(&t, "S3").unwrap();
        assert_eq!(
            fs.descending_counts(),
            vec![700, 200, 50, 10, 10, 10, 10, 5, 3, 2]
        );
    }
}
