//! The JSON dataset specification consumed by the CLI and the server:
//! attribute roles plus optional generalization hierarchies per key
//! attribute.

use crate::hierarchies as adult_hierarchies;
use crate::{AdultGenerator, ScaleGenerator};
use psens_hierarchy::{Hierarchy, QiSpace};
use psens_microdata::{Attribute, JsonError, JsonValue, Kind, Role, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A dataset specification: schema attributes (with privacy roles) and the
/// generalization hierarchy of each key attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Spec {
    /// Attributes in column order.
    pub attributes: Vec<Attribute>,
    /// Hierarchies by key-attribute name. Key attributes without an entry
    /// cannot be generalized (they get an implicit single-level hierarchy
    /// only if categorical — otherwise `qi_space` errors).
    #[serde(default)]
    pub hierarchies: BTreeMap<String, Hierarchy>,
}

impl Spec {
    /// Builds the schema described by the spec.
    pub fn schema(&self) -> Result<Schema, psens_microdata::Error> {
        Schema::new(self.attributes.clone())
    }

    /// Builds the QI space from the schema's key attributes and the spec's
    /// hierarchies, in schema order.
    pub fn qi_space(&self) -> Result<QiSpace, String> {
        let schema = self.schema().map_err(|e| e.to_string())?;
        let mut entries = Vec::new();
        for &idx in &schema.key_indices() {
            let name = schema.attribute(idx).name();
            let hierarchy = self
                .hierarchies
                .get(name)
                .cloned()
                .ok_or_else(|| format!("no hierarchy for key attribute `{name}`"))?;
            entries.push((name.to_owned(), hierarchy));
        }
        QiSpace::new(entries).map_err(|e| e.to_string())
    }

    /// Serializes the spec to its JSON file format:
    /// `{"attributes": [{"name", "kind", "role"}, ...], "hierarchies":
    /// {<name>: <hierarchy>, ...}}`.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set(
            "attributes",
            JsonValue::Array(
                self.attributes
                    .iter()
                    .map(|attr| {
                        let mut a = JsonValue::object();
                        a.set("name", JsonValue::Str(attr.name().to_owned()));
                        a.set("kind", JsonValue::Str(attr.kind().to_string()));
                        a.set("role", JsonValue::Str(attr.role().to_string()));
                        a
                    })
                    .collect(),
            ),
        );
        let mut hierarchies = JsonValue::object();
        for (name, hierarchy) in &self.hierarchies {
            hierarchies.set(name, hierarchy.to_json());
        }
        out.set("hierarchies", hierarchies);
        out
    }

    /// Parses a spec from its JSON file format. `hierarchies` may be omitted.
    pub fn from_json(text: &str) -> Result<Spec, String> {
        let value = JsonValue::parse(text).map_err(|e| format!("spec: {e}"))?;
        let attributes = value
            .require("attributes")
            .and_then(JsonValue::as_array)
            .map_err(|e| format!("spec: {e}"))?
            .iter()
            .map(parse_attribute)
            .collect::<Result<Vec<_>, JsonError>>()
            .map_err(|e| format!("spec: {e}"))?;
        let mut hierarchies = BTreeMap::new();
        if let Some(entries) = value.get("hierarchies") {
            for (name, entry) in entries.as_object().map_err(|e| format!("spec: {e}"))? {
                let hierarchy = Hierarchy::from_json(entry)
                    .map_err(|e| format!("spec: hierarchy `{name}`: {e}"))?;
                hierarchies.insert(name.clone(), hierarchy);
            }
        }
        Ok(Spec {
            attributes,
            hierarchies,
        })
    }

    /// The built-in spec for the synthetic Adult dataset (paper Section 4).
    pub fn adult() -> Spec {
        Spec {
            attributes: AdultGenerator::schema().attributes().to_vec(),
            hierarchies: adult_key_hierarchies(),
        }
    }

    /// The built-in spec for the scale dataset (`generate --profile scale`):
    /// the Adult key attributes and hierarchies without the identifier and
    /// weight columns.
    pub fn scale() -> Spec {
        Spec {
            attributes: ScaleGenerator::schema().attributes().to_vec(),
            hierarchies: adult_key_hierarchies(),
        }
    }
}

/// The Table 7 hierarchies for the four Adult key attributes, shared by the
/// `adult` and `scale` specs.
fn adult_key_hierarchies() -> BTreeMap<String, Hierarchy> {
    let mut hierarchies = BTreeMap::new();
    hierarchies.insert("Age".to_owned(), adult_hierarchies::adult_age());
    hierarchies.insert(
        "MaritalStatus".to_owned(),
        adult_hierarchies::adult_marital_status(),
    );
    hierarchies.insert("Race".to_owned(), adult_hierarchies::adult_race());
    hierarchies.insert("Sex".to_owned(), adult_hierarchies::adult_sex());
    hierarchies
}

fn parse_attribute(value: &JsonValue) -> Result<Attribute, JsonError> {
    let name = value.require("name")?.as_str()?;
    let kind = match value.require("kind")?.as_str()? {
        "int" => Kind::Int,
        "cat" => Kind::Cat,
        other => return Err(JsonError::shape(format!("unknown kind `{other}`"))),
    };
    let role = match value.require("role")?.as_str()? {
        "identifier" => Role::Identifier,
        "key" => Role::Key,
        "confidential" => Role::Confidential,
        "other" => Role::Other,
        other => return Err(JsonError::shape(format!("unknown role `{other}`"))),
    };
    Ok(Attribute::new(name, kind, role))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adult_spec_roundtrips_through_json() {
        let spec = Spec::adult();
        let json = spec.to_json().to_json_pretty();
        let back = Spec::from_json(&json).unwrap();
        assert_eq!(back.attributes.len(), spec.attributes.len());
        assert_eq!(back.hierarchies.len(), 4);
        let qi = back.qi_space().unwrap();
        assert_eq!(qi.lattice().node_count(), 96);
    }

    #[test]
    fn missing_hierarchy_is_reported() {
        let mut spec = Spec::adult();
        spec.hierarchies.remove("Race");
        let err = spec.qi_space().unwrap_err();
        assert!(err.contains("Race"), "{err}");
    }

    #[test]
    fn scale_spec_covers_its_key_attributes() {
        let spec = Spec::scale();
        let schema = spec.schema().unwrap();
        assert!(schema.attributes().iter().all(|a| a.name() != "Id"));
        let qi = spec.qi_space().unwrap();
        assert_eq!(qi.lattice().node_count(), 96);
        // Round-trips through the JSON file format like the Adult spec.
        let back = Spec::from_json(&spec.to_json().to_json_pretty()).unwrap();
        assert_eq!(back.attributes.len(), spec.attributes.len());
    }

    #[test]
    fn schema_from_spec() {
        let spec = Spec::adult();
        let schema = spec.schema().unwrap();
        assert_eq!(schema.key_indices().len(), 4);
        assert_eq!(schema.confidential_indices().len(), 4);
    }
}
