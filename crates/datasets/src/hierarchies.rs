//! Generalization hierarchies used by the paper's figures and experiments.

use psens_hierarchy::builders::{flat_hierarchy, grouping_hierarchy, prefix_hierarchy};
use psens_hierarchy::{CatHierarchy, Hierarchy, IntHierarchy, IntLevel, QiSpace};

/// The Adult marital-status domain (7 distinct values, paper Table 7).
pub const MARITAL_STATUS: [&str; 7] = [
    "Never-married",
    "Married-civ-spouse",
    "Divorced",
    "Separated",
    "Widowed",
    "Married-spouse-absent",
    "Married-AF-spouse",
];

/// The Adult race domain (5 distinct values, paper Table 7).
pub const RACE: [&str; 5] = [
    "White",
    "Black",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
];

/// The Adult sex domain.
pub const SEX: [&str; 2] = ["Male", "Female"];

/// Coarsened Adult education domain for the wide (8-QI) benchmark space.
pub const EDUCATION: [&str; 4] = ["HS-grad", "Some-college", "Bachelors", "Advanced"];

/// Coarsened Adult workclass domain for the wide (8-QI) benchmark space.
pub const WORK_CLASS: [&str; 4] = ["Private", "Self-emp", "Government", "Unemployed"];

/// Coarsened Adult occupation domain for the wide (8-QI) benchmark space.
pub const OCCUPATION: [&str; 4] = ["White-collar", "Blue-collar", "Service", "Other-occ"];

/// Coarsened Adult native-country domain for the wide (8-QI) benchmark
/// space.
pub const COUNTRY: [&str; 4] = ["United-States", "Mexico", "Canada", "Other-country"];

/// Figure 1's ZipCode hierarchy: 5-digit codes → 2-digit prefixes → `*****`.
pub fn figure1_zipcode() -> CatHierarchy {
    prefix_hierarchy(
        vec!["41076", "41099", "43102", "43103", "48201", "48202"],
        &[2, 0],
    )
    .expect("static hierarchy is valid")
}

/// Figure 1's Sex hierarchy: `{M, F}` → `{*}`.
pub fn figure1_sex() -> Hierarchy {
    flat_hierarchy(vec!["M", "F"]).expect("static hierarchy is valid")
}

/// The QI space of Figures 2–3 / Table 4: Sex (2 domains) × ZipCode
/// (3 domains), giving the 6-node, height-3 lattice of Figure 2.
pub fn figure2_qi_space() -> QiSpace {
    QiSpace::new(vec![
        ("Sex".into(), figure1_sex()),
        ("ZipCode".into(), Hierarchy::Cat(figure1_zipcode())),
    ])
    .expect("static QI space is valid")
}

/// Table 7's Age hierarchy: 74 distinct values (17–90) → 10-year ranges →
/// `{<50, >=50}` → one group. The decade cuts include 50 so the levels nest.
pub fn adult_age() -> Hierarchy {
    Hierarchy::Int(
        IntHierarchy::new(vec![
            IntLevel::Ranges {
                cuts: vec![20, 30, 40, 50, 60, 70, 80, 90],
                labels: vec![
                    "<20", "20-29", "30-39", "40-49", "50-59", "60-69", "70-79", "80-89", ">=90",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
            },
            IntLevel::Ranges {
                cuts: vec![50],
                labels: vec!["<50".into(), ">=50".into()],
            },
            IntLevel::Single("*".into()),
        ])
        .expect("static hierarchy is valid"),
    )
}

/// Table 7's MaritalStatus hierarchy: 7 values → `{Single, Married}` → one
/// group.
pub fn adult_marital_status() -> Hierarchy {
    Hierarchy::Cat(
        grouping_hierarchy(
            MARITAL_STATUS.to_vec(),
            &[&[
                ("Never-married", "Single"),
                ("Married-civ-spouse", "Married"),
                ("Divorced", "Single"),
                ("Separated", "Single"),
                ("Widowed", "Single"),
                ("Married-spouse-absent", "Married"),
                ("Married-AF-spouse", "Married"),
            ]],
        )
        .and_then(|h| h.push_top("*"))
        .expect("static hierarchy is valid"),
    )
}

/// Table 7's Race hierarchy: 5 values → `{White, Black, Other}` →
/// `{White, Other}` → one group.
pub fn adult_race() -> Hierarchy {
    Hierarchy::Cat(
        grouping_hierarchy(
            RACE.to_vec(),
            &[
                &[
                    ("White", "White"),
                    ("Black", "Black"),
                    ("Asian-Pac-Islander", "Other"),
                    ("Amer-Indian-Eskimo", "Other"),
                    ("Other", "Other"),
                ],
                &[("White", "White"), ("Black", "Other"), ("Other", "Other")],
            ],
        )
        .and_then(|h| h.push_top("*"))
        .expect("static hierarchy is valid"),
    )
}

/// Table 7's Sex hierarchy: `{Male, Female}` → one group.
pub fn adult_sex() -> Hierarchy {
    flat_hierarchy(SEX.to_vec()).expect("static hierarchy is valid")
}

/// The full Adult QI space of Section 4: `<A, M, R, S>` with 4 × 3 × 4 × 2 =
/// 96 lattice nodes and `height(GL_A) = 9`.
pub fn adult_qi_space() -> QiSpace {
    QiSpace::new(vec![
        ("Age".into(), adult_age()),
        ("MaritalStatus".into(), adult_marital_status()),
        ("Race".into(), adult_race()),
        ("Sex".into(), adult_sex()),
    ])
    .expect("static QI space is valid")
}

/// A 4-value domain generalized into two 2-value groups, then `*`: the
/// 3-level shape shared by all four wide-QI extension attributes.
fn two_group_hierarchy(
    values: [&'static str; 4],
    groups: [(&'static str, &'static str); 4],
) -> Hierarchy {
    Hierarchy::Cat(
        grouping_hierarchy(values.to_vec(), &[&groups])
            .and_then(|h| h.push_top("*"))
            .expect("static hierarchy is valid"),
    )
}

/// Education for the wide space: 4 values → `{NoDegree, Degree}` → `*`.
pub fn adult_education() -> Hierarchy {
    two_group_hierarchy(
        EDUCATION,
        [
            ("HS-grad", "NoDegree"),
            ("Some-college", "NoDegree"),
            ("Bachelors", "Degree"),
            ("Advanced", "Degree"),
        ],
    )
}

/// Workclass for the wide space: 4 values → `{Employed, NotEmployed}` → `*`.
pub fn adult_work_class() -> Hierarchy {
    two_group_hierarchy(
        WORK_CLASS,
        [
            ("Private", "Employed"),
            ("Self-emp", "Employed"),
            ("Government", "Employed"),
            ("Unemployed", "NotEmployed"),
        ],
    )
}

/// Occupation for the wide space: 4 values → `{Office, Manual}` → `*`.
pub fn adult_occupation() -> Hierarchy {
    two_group_hierarchy(
        OCCUPATION,
        [
            ("White-collar", "Office"),
            ("Blue-collar", "Manual"),
            ("Service", "Manual"),
            ("Other-occ", "Office"),
        ],
    )
}

/// Native country for the wide space: 4 values → `{US, Non-US}` → `*`.
pub fn adult_country() -> Hierarchy {
    two_group_hierarchy(
        COUNTRY,
        [
            ("United-States", "US"),
            ("Mexico", "Non-US"),
            ("Canada", "Non-US"),
            ("Other-country", "Non-US"),
        ],
    )
}

/// The wide 8-QI Adult space used by the parallel-search benchmark: the
/// Section 4 attributes plus Education, WorkClass, Occupation, and Country,
/// giving a 4 × 3 × 4 × 2 × 3⁴ = 7,776-node lattice of height 17 — big
/// enough that per-stratum fan-out and verdict reuse are measurable.
pub fn adult_wide_qi_space() -> QiSpace {
    QiSpace::new(vec![
        ("Age".into(), adult_age()),
        ("MaritalStatus".into(), adult_marital_status()),
        ("Race".into(), adult_race()),
        ("Sex".into(), adult_sex()),
        ("Education".into(), adult_education()),
        ("WorkClass".into(), adult_work_class()),
        ("Occupation".into(), adult_occupation()),
        ("Country".into(), adult_country()),
    ])
    .expect("static QI space is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::Value;

    #[test]
    fn figure2_lattice_dimensions() {
        let qi = figure2_qi_space();
        let gl = qi.lattice();
        assert_eq!(gl.node_count(), 6);
        assert_eq!(gl.height(), 3);
    }

    #[test]
    fn adult_lattice_matches_section4() {
        let qi = adult_qi_space();
        let gl = qi.lattice();
        assert_eq!(gl.node_count(), 96);
        assert_eq!(gl.height(), 9);
        assert_eq!(gl.max_levels(), &[3, 2, 3, 1]);
    }

    #[test]
    fn adult_wide_lattice_dimensions() {
        let qi = adult_wide_qi_space();
        let gl = qi.lattice();
        assert_eq!(gl.node_count(), 7776);
        assert_eq!(gl.height(), 17);
        assert_eq!(gl.max_levels(), &[3, 2, 3, 1, 2, 2, 2, 2]);
    }

    #[test]
    fn wide_extension_hierarchies_generalize() {
        for (h, value, grouped) in [
            (adult_education(), "Some-college", "NoDegree"),
            (adult_work_class(), "Government", "Employed"),
            (adult_occupation(), "Service", "Manual"),
            (adult_country(), "Canada", "Non-US"),
        ] {
            assert_eq!(h.n_levels(), 3);
            assert_eq!(
                h.generalize(&Value::Text(value.into()), 1).unwrap(),
                Value::Text(grouped.into())
            );
            assert_eq!(
                h.generalize(&Value::Text(value.into()), 2).unwrap(),
                Value::Text("*".into())
            );
        }
    }

    #[test]
    fn age_levels() {
        let age = adult_age();
        assert_eq!(
            age.generalize(&Value::Int(44), 1).unwrap(),
            Value::Text("40-49".into())
        );
        assert_eq!(
            age.generalize(&Value::Int(44), 2).unwrap(),
            Value::Text("<50".into())
        );
        assert_eq!(
            age.generalize(&Value::Int(44), 3).unwrap(),
            Value::Text("*".into())
        );
    }

    #[test]
    fn marital_levels() {
        let m = adult_marital_status();
        assert_eq!(
            m.generalize(&Value::Text("Widowed".into()), 1).unwrap(),
            Value::Text("Single".into())
        );
        assert_eq!(
            m.generalize(&Value::Text("Married-AF-spouse".into()), 1)
                .unwrap(),
            Value::Text("Married".into())
        );
        assert_eq!(m.n_levels(), 3);
    }

    #[test]
    fn race_levels() {
        let r = adult_race();
        assert_eq!(r.n_levels(), 4);
        assert_eq!(
            r.generalize(&Value::Text("Asian-Pac-Islander".into()), 1)
                .unwrap(),
            Value::Text("Other".into())
        );
        assert_eq!(
            r.generalize(&Value::Text("Black".into()), 1).unwrap(),
            Value::Text("Black".into())
        );
        assert_eq!(
            r.generalize(&Value::Text("Black".into()), 2).unwrap(),
            Value::Text("Other".into())
        );
        assert_eq!(
            r.generalize(&Value::Text("White".into()), 2).unwrap(),
            Value::Text("White".into())
        );
        assert_eq!(
            r.generalize(&Value::Text("White".into()), 3).unwrap(),
            Value::Text("*".into())
        );
    }

    #[test]
    fn zipcode_prefixes() {
        let z = figure1_zipcode();
        assert_eq!(z.generalize("48201", 1).unwrap(), "48***");
        assert_eq!(z.generalize("48201", 2).unwrap(), "*****");
    }
}
