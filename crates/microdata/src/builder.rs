//! Row-oriented construction of [`Table`]s.

use crate::column::{CatColumn, Column, IntColumn};
use crate::error::{Error, Result};
use crate::schema::{Kind, Schema};
use crate::table::Table;
use crate::value::Value;

/// Accumulates rows and produces a [`Table`].
///
/// ```
/// use psens_microdata::{Attribute, Schema, TableBuilder, Value};
///
/// let schema = Schema::new(vec![
///     Attribute::int_key("Age"),
///     Attribute::cat_confidential("Illness"),
/// ]).unwrap();
/// let mut builder = TableBuilder::new(schema);
/// builder.push_row(vec![Value::Int(50), Value::Text("Colon Cancer".into())]).unwrap();
/// builder.push_row(vec![Value::Int(30), Value::Missing]).unwrap();
/// let table = builder.finish();
/// assert_eq!(table.n_rows(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<ColumnBuilder>,
    n_rows: usize,
}

#[derive(Debug, Clone)]
enum ColumnBuilder {
    Int(IntColumn),
    Cat(CatColumn),
}

impl TableBuilder {
    /// Starts a builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| match a.kind() {
                Kind::Int => ColumnBuilder::Int(IntColumn::new()),
                Kind::Cat => ColumnBuilder::Cat(CatColumn::new()),
            })
            .collect();
        TableBuilder {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// Number of rows accumulated so far.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Appends one row; values must match the schema's kinds.
    ///
    /// On error the builder is left unchanged.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.len() {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                found: row.len(),
            });
        }
        // Validate the entire row before mutating any column so a failed push
        // cannot leave columns with uneven lengths.
        for (i, value) in row.iter().enumerate() {
            let ok = matches!(
                (&self.columns[i], value),
                (ColumnBuilder::Int(_), Value::Int(_))
                    | (ColumnBuilder::Cat(_), Value::Text(_))
                    | (_, Value::Missing)
            );
            if !ok {
                return Err(Error::TypeMismatch {
                    attribute: self.schema.attribute(i).name().to_owned(),
                    expected: match self.schema.attribute(i).kind() {
                        Kind::Int => "integer",
                        Kind::Cat => "text",
                    },
                    found: value.kind_name(),
                });
            }
        }
        for (col, value) in self.columns.iter_mut().zip(row) {
            match (col, value) {
                (ColumnBuilder::Int(c), Value::Int(v)) => c.push(v),
                (ColumnBuilder::Int(c), Value::Missing) => c.push_missing(),
                (ColumnBuilder::Cat(c), Value::Text(s)) => c.push(&s),
                (ColumnBuilder::Cat(c), Value::Missing) => c.push_missing(),
                _ => unreachable!("validated above"),
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Appends several rows.
    pub fn push_rows<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> Result<()> {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Finalizes the builder into a [`Table`].
    pub fn finish(self) -> Table {
        let columns = self
            .columns
            .into_iter()
            .map(|c| match c {
                ColumnBuilder::Int(c) => Column::Int(c),
                ColumnBuilder::Cat(c) => Column::Cat(c),
            })
            .collect();
        Table::new(self.schema, columns).expect("builder maintains invariants")
    }
}

/// Builds a table from string rows (everything categorical) — convenient for
/// tests and fixtures. Integer columns in `schema` are parsed from the text;
/// empty strings and `"?"` become missing.
pub fn table_from_str_rows(schema: Schema, rows: &[&[&str]]) -> Result<Table> {
    let mut builder = TableBuilder::new(schema);
    for (line, raw) in rows.iter().enumerate() {
        let mut row = Vec::with_capacity(raw.len());
        for (i, field) in raw.iter().enumerate() {
            let attr = builder.schema.attribute(i);
            let value = if field.is_empty() || *field == "?" {
                Value::Missing
            } else {
                match attr.kind() {
                    Kind::Int => {
                        Value::Int(field.trim().parse::<i64>().map_err(|_| Error::Parse {
                            line: line + 1,
                            attribute: attr.name().to_owned(),
                            text: (*field).to_owned(),
                        })?)
                    }
                    Kind::Cat => Value::Text((*field).to_owned()),
                }
            };
            row.push(value);
        }
        builder.push_row(row)?;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![Attribute::int_key("Age"), Attribute::cat_key("Sex")]).unwrap()
    }

    #[test]
    fn build_rows() {
        let mut b = TableBuilder::new(schema());
        b.push_row(vec![Value::Int(20), Value::Text("M".into())])
            .unwrap();
        b.push_row(vec![Value::Missing, Value::Missing]).unwrap();
        assert_eq!(b.n_rows(), 2);
        let t = b.finish();
        assert_eq!(t.value(0, 0), Value::Int(20));
        assert_eq!(t.value(1, 1), Value::Missing);
    }

    #[test]
    fn arity_checked() {
        let mut b = TableBuilder::new(schema());
        let err = b.push_row(vec![Value::Int(20)]).unwrap_err();
        assert!(matches!(err, Error::ArityMismatch { .. }));
        assert_eq!(b.n_rows(), 0);
    }

    #[test]
    fn kind_checked_without_partial_mutation() {
        let mut b = TableBuilder::new(schema());
        // First cell valid, second invalid: nothing may be pushed.
        let err = b.push_row(vec![Value::Int(20), Value::Int(1)]).unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
        assert_eq!(b.n_rows(), 0);
        // Builder still usable.
        b.push_row(vec![Value::Int(20), Value::Text("F".into())])
            .unwrap();
        assert_eq!(b.finish().n_rows(), 1);
    }

    #[test]
    fn push_rows_bulk() {
        let mut b = TableBuilder::new(schema());
        b.push_rows(vec![
            vec![Value::Int(1), Value::Text("M".into())],
            vec![Value::Int(2), Value::Text("F".into())],
        ])
        .unwrap();
        assert_eq!(b.finish().n_rows(), 2);
    }

    #[test]
    fn from_str_rows_parses_ints_and_missing() {
        let t = table_from_str_rows(
            schema(),
            &[&["50", "M"], &["", "F"], &["?", "M"], &["30", ""]],
        )
        .unwrap();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.value(0, 0), Value::Int(50));
        assert_eq!(t.value(1, 0), Value::Missing);
        assert_eq!(t.value(2, 0), Value::Missing);
        assert_eq!(t.value(3, 1), Value::Missing);
    }

    #[test]
    fn from_str_rows_rejects_bad_int() {
        let err = table_from_str_rows(schema(), &[&["abc", "M"]]).unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
    }
}
