//! A compact validity bitmap for nullable columns.

/// A growable bit vector; bit `i` is true when row `i` holds a present value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates an empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let word = if value { u64::MAX } else { 0 };
        let mut bitmap = Bitmap {
            words: vec![word; len.div_ceil(64)],
            len,
        };
        bitmap.trim_tail();
        bitmap
    }

    fn trim_tail(&mut self) {
        // Clear bits beyond `len` so `count_ones` stays exact.
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, value: bool) {
        let word = self.len / 64;
        let bit = self.len % 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if value {
            self.words[word] |= 1 << bit;
        }
        self.len += 1;
    }

    /// Reads bit `index`.
    ///
    /// # Panics
    /// Panics when `index >= len`.
    pub fn get(&self, index: usize) -> bool {
        assert!(index < self.len, "bit {index} out of bounds ({})", self.len);
        (self.words[index / 64] >> (index % 64)) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    /// Panics when `index >= len`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len, "bit {index} out of bounds ({})", self.len);
        let mask = 1u64 << (index % 64);
        if value {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Builds a bitmap holding `indices`-selected bits of `self`, in order.
    pub fn gather(&self, indices: &[usize]) -> Bitmap {
        let mut out = Bitmap::new();
        for &i in indices {
            out.push(self.get(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(bm.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn filled_true_and_false() {
        let ones = Bitmap::filled(70, true);
        assert_eq!(ones.count_ones(), 70);
        assert!(ones.all());
        let zeros = Bitmap::filled(70, false);
        assert_eq!(zeros.count_ones(), 0);
        assert!(!zeros.all());
        assert!(Bitmap::filled(0, true).all());
    }

    #[test]
    fn set_flips_bits() {
        let mut bm = Bitmap::filled(10, false);
        bm.set(3, true);
        bm.set(9, true);
        bm.set(3, false);
        assert!(!bm.get(3));
        assert!(bm.get(9));
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    fn gather_selects_in_order() {
        let mut bm = Bitmap::new();
        for b in [true, false, true, true, false] {
            bm.push(b);
        }
        let picked = bm.gather(&[4, 0, 2]);
        assert_eq!(picked.len(), 3);
        assert!(!picked.get(0));
        assert!(picked.get(1));
        assert!(picked.get(2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Bitmap::new().get(0);
    }

    #[test]
    fn word_boundary_exactness() {
        let bm = Bitmap::filled(64, true);
        assert_eq!(bm.count_ones(), 64);
        let bm = Bitmap::filled(65, true);
        assert_eq!(bm.count_ones(), 65);
    }
}
