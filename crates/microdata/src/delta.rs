//! Row-level deltas against immutable [`Table`]s, and the incremental
//! counters the re-anonymization layer maintains across them.
//!
//! A [`DeltaBatch`] is the unit of change: a set of appended rows plus a set
//! of deleted row indices, applied atomically. [`DeltaBatch::apply`] derives
//! the successor table deterministically — survivors keep their relative
//! order, appends follow in batch order — so replaying the same batch
//! sequence always reproduces the same table (the property the write-ahead
//! delta journal relies on).
//!
//! [`RowMultiset`] and [`IncrementalFrequency`] are the multiset-level
//! counters that survive deltas in O(|delta|) instead of O(n): the paper's
//! frequency sets (Definition 4) consume only the *counts* of value
//! combinations, never their order, so a hash multiset reproduces the
//! descending/cumulative forms byte-for-byte.

use crate::builder::TableBuilder;
use crate::error::{Error, Result};
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// One atomic batch of row changes against a table.
///
/// `deletes` are row indices into the *current* table (before any append of
/// this batch); `appends` are full rows in schema order. Deletes are applied
/// first, then appends, and both happen in one step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    /// Rows to append, each in schema order.
    pub appends: Vec<Vec<Value>>,
    /// Indices of rows to delete from the current table.
    pub deletes: Vec<usize>,
}

impl DeltaBatch {
    /// A batch that only appends rows.
    pub fn append_rows(appends: Vec<Vec<Value>>) -> DeltaBatch {
        DeltaBatch {
            appends,
            deletes: Vec::new(),
        }
    }

    /// A batch that only deletes rows.
    pub fn delete_rows(deletes: Vec<usize>) -> DeltaBatch {
        DeltaBatch {
            appends: Vec::new(),
            deletes,
        }
    }

    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.appends.is_empty() && self.deletes.is_empty()
    }

    /// True when the batch deletes nothing.
    pub fn is_append_only(&self) -> bool {
        self.deletes.is_empty()
    }

    /// Validates the batch against `table`: every append row must match the
    /// schema's arity (kind mismatches surface in [`apply`](Self::apply)
    /// through the row builder), no append cell may be an empty text value,
    /// and every delete index must be in bounds and unique.
    ///
    /// Empty text is rejected because [`Value::render`] maps both
    /// `Value::Missing` and `Value::Text("")` to `""`: a journaled batch
    /// carrying `Text("")` would replay as `Missing` after a crash,
    /// silently diverging from the table the live server acknowledged.
    pub fn validate(&self, table: &Table) -> Result<()> {
        for row in &self.appends {
            if row.len() != table.schema().len() {
                return Err(Error::ArityMismatch {
                    expected: table.schema().len(),
                    found: row.len(),
                });
            }
            for (c, value) in row.iter().enumerate() {
                if matches!(value, Value::Text(s) if s.is_empty()) {
                    return Err(Error::Io(format!(
                        "append cell in column {c} is empty text, which renders \
                         identically to a missing value; use Value::Missing"
                    )));
                }
            }
        }
        let mut seen = vec![false; table.n_rows()];
        for &ix in &self.deletes {
            if ix >= table.n_rows() {
                return Err(Error::RowOutOfBounds {
                    index: ix,
                    len: table.n_rows(),
                });
            }
            if seen[ix] {
                return Err(Error::Io(format!("row {ix} deleted twice in one batch")));
            }
            seen[ix] = true;
        }
        Ok(())
    }

    /// Applies the batch, producing the successor table: survivors in their
    /// original order, then the appended rows in batch order.
    pub fn apply(&self, table: &Table) -> Result<Table> {
        self.validate(table)?;
        let mut deleted = vec![false; table.n_rows()];
        for &ix in &self.deletes {
            deleted[ix] = true;
        }
        let survivors = table.filter(|i| !deleted[i]);
        if self.appends.is_empty() {
            return Ok(survivors);
        }
        let mut builder = TableBuilder::new(table.schema().clone());
        for row in &self.appends {
            builder.push_row(row.clone())?;
        }
        survivors.concat(&builder.finish())
    }
}

/// An exact multiset of full rows, maintained across deltas.
///
/// Backs the net-zero detection of the invalidation classifier: a batch
/// whose touched rows all end at their starting count cannot change any
/// multiset-derived quantity (every `NodeCheck` field is one).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowMultiset {
    counts: HashMap<Vec<Value>, usize>,
    total: usize,
}

impl RowMultiset {
    /// The multiset of `table`'s rows.
    pub fn of(table: &Table) -> RowMultiset {
        let mut set = RowMultiset::default();
        for i in 0..table.n_rows() {
            set.insert(table.row(i).expect("index in range"));
        }
        set
    }

    /// Multiplicity of `row` (0 when absent).
    pub fn count(&self, row: &[Value]) -> usize {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Number of rows counted, with multiplicity.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of distinct rows.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Adds one occurrence of `row`.
    pub fn insert(&mut self, row: Vec<Value>) {
        *self.counts.entry(row).or_insert(0) += 1;
        self.total += 1;
    }

    /// Removes one occurrence of `row`.
    ///
    /// # Panics
    /// Panics when `row` is not present — the callers maintain the set in
    /// lockstep with a table, so a miss is a logic error, not bad input.
    pub fn remove(&mut self, row: &[Value]) {
        let count = self
            .counts
            .get_mut(row)
            .unwrap_or_else(|| panic!("row absent from multiset"));
        *count -= 1;
        if *count == 0 {
            self.counts.remove(row);
        }
        self.total -= 1;
    }
}

/// An incrementally maintained frequency set over an attribute subset —
/// the hash-multiset twin of [`crate::FrequencySet`].
///
/// [`crate::FrequencySet`] keeps its keys in first-appearance order, which
/// deletes and re-inserts cannot reproduce; this tracker therefore promises
/// equality only at the level the paper's conditions consume: the
/// key-to-count mapping and its descending/cumulative forms, which are
/// byte-identical to a from-scratch recompute.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalFrequency {
    by: Vec<usize>,
    counts: HashMap<Vec<Value>, usize>,
    total: usize,
}

impl IncrementalFrequency {
    /// Builds the tracker from `table`'s attributes at `by`.
    pub fn of(table: &Table, by: &[usize]) -> IncrementalFrequency {
        let mut tracker = IncrementalFrequency {
            by: by.to_vec(),
            counts: HashMap::new(),
            total: 0,
        };
        for i in 0..table.n_rows() {
            let key: Vec<Value> = by.iter().map(|&c| table.value(i, c)).collect();
            tracker.insert_key(key);
        }
        tracker
    }

    /// The attribute indices this tracker projects.
    pub fn by(&self) -> &[usize] {
        &self.by
    }

    /// Extracts this tracker's key from a full row and counts it once more.
    pub fn insert_row(&mut self, row: &[Value]) {
        let key: Vec<Value> = self.by.iter().map(|&c| row[c].clone()).collect();
        self.insert_key(key);
    }

    /// Extracts this tracker's key from a full row and removes one count.
    pub fn remove_row(&mut self, row: &[Value]) {
        let key: Vec<Value> = self.by.iter().map(|&c| row[c].clone()).collect();
        let count = self
            .counts
            .get_mut(&key)
            .unwrap_or_else(|| panic!("key absent from frequency tracker"));
        *count -= 1;
        if *count == 0 {
            self.counts.remove(&key);
        }
        self.total -= 1;
    }

    fn insert_key(&mut self, key: Vec<Value>) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of distinct combinations (the paper's `s_j`).
    pub fn n_combinations(&self) -> usize {
        self.counts.len()
    }

    /// Total rows counted (the paper's `n`).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Count of one combination, or 0 when absent.
    pub fn count_of(&self, key: &[Value]) -> usize {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Frequencies sorted descending — byte-identical to
    /// [`crate::FrequencySet::descending_counts`] on the same table.
    pub fn descending_counts(&self) -> Vec<usize> {
        let mut counts: Vec<usize> = self.counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::freq::FrequencySet;
    use crate::schema::{Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_key("Sex"),
            Attribute::int_key("Age"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap()
    }

    fn base() -> Table {
        table_from_str_rows(
            schema(),
            &[
                &["M", "30", "Flu"],
                &["F", "40", "HIV"],
                &["M", "30", "Cold"],
                &["F", "40", "Flu"],
            ],
        )
        .unwrap()
    }

    fn row(sex: &str, age: i64, illness: &str) -> Vec<Value> {
        vec![
            Value::Text(sex.into()),
            Value::Int(age),
            Value::Text(illness.into()),
        ]
    }

    #[test]
    fn apply_preserves_survivor_order_then_appends() {
        let t = base();
        let batch = DeltaBatch {
            appends: vec![row("M", 50, "Flu")],
            deletes: vec![1],
        };
        let next = batch.apply(&t).unwrap();
        assert_eq!(next.n_rows(), 4);
        assert_eq!(next.row(0).unwrap(), row("M", 30, "Flu"));
        assert_eq!(next.row(1).unwrap(), row("M", 30, "Cold"));
        assert_eq!(next.row(2).unwrap(), row("F", 40, "Flu"));
        assert_eq!(next.row(3).unwrap(), row("M", 50, "Flu"));
    }

    #[test]
    fn validation_rejects_bad_batches() {
        let t = base();
        let wide = DeltaBatch::append_rows(vec![vec![Value::Missing]]);
        assert!(matches!(wide.apply(&t), Err(Error::ArityMismatch { .. })));
        let oob = DeltaBatch::delete_rows(vec![9]);
        assert!(matches!(oob.apply(&t), Err(Error::RowOutOfBounds { .. })));
        let twice = DeltaBatch::delete_rows(vec![1, 1]);
        assert!(twice.apply(&t).is_err());
        let wrong_kind = DeltaBatch::append_rows(vec![vec![
            Value::Int(1),
            Value::Int(2),
            Value::Text("x".into()),
        ]]);
        assert!(matches!(
            wrong_kind.apply(&t),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_empty_text_but_admits_missing() {
        let t = base();
        // Text("") renders as "" — indistinguishable from Missing in the
        // delta journal, so validation refuses it outright.
        let ambiguous = DeltaBatch::append_rows(vec![vec![
            Value::Text(String::new()),
            Value::Int(30),
            Value::Text("Flu".into()),
        ]]);
        let err = ambiguous.apply(&t).expect_err("empty text must be refused");
        assert!(err.to_string().contains("empty text"), "{err}");
        // An explicit Missing in the same position is fine.
        let missing = DeltaBatch::append_rows(vec![vec![
            Value::Missing,
            Value::Int(30),
            Value::Text("Flu".into()),
        ]]);
        assert!(missing.validate(&t).is_ok());
    }

    #[test]
    fn empty_batch_reproduces_the_table() {
        let t = base();
        let next = DeltaBatch::default().apply(&t).unwrap();
        assert_eq!(next, t);
    }

    #[test]
    fn row_multiset_tracks_inserts_and_removes() {
        let t = base();
        let mut set = RowMultiset::of(&t);
        assert_eq!(set.total(), 4);
        assert_eq!(set.distinct(), 4);
        set.insert(row("M", 30, "Flu"));
        assert_eq!(set.count(&row("M", 30, "Flu")), 2);
        set.remove(&row("M", 30, "Flu"));
        set.remove(&row("M", 30, "Flu"));
        assert_eq!(set.count(&row("M", 30, "Flu")), 0);
        assert_eq!(set.total(), 3);
    }

    #[test]
    #[should_panic(expected = "absent")]
    fn removing_an_absent_row_panics() {
        let mut set = RowMultiset::of(&base());
        set.remove(&row("X", 1, "Nope"));
    }

    #[test]
    fn incremental_frequency_matches_frequency_set_after_deltas() {
        let mut table = base();
        let mut tracker = IncrementalFrequency::of(&table, &[2]);
        let batches = [
            DeltaBatch::append_rows(vec![row("M", 30, "Flu"), row("F", 20, "Measles")]),
            DeltaBatch::delete_rows(vec![0, 3]),
            DeltaBatch {
                appends: vec![row("M", 60, "Cold")],
                deletes: vec![1],
            },
        ];
        for batch in &batches {
            for &ix in &batch.deletes {
                tracker.remove_row(&table.row(ix).unwrap());
            }
            for r in &batch.appends {
                tracker.insert_row(r);
            }
            table = batch.apply(&table).unwrap();
            let scratch = FrequencySet::of(&table, &[2]);
            assert_eq!(tracker.total(), scratch.total());
            assert_eq!(tracker.n_combinations(), scratch.n_combinations());
            assert_eq!(tracker.descending_counts(), scratch.descending_counts());
            for (key, count) in scratch.iter() {
                assert_eq!(tracker.count_of(key), count);
            }
        }
    }

    #[test]
    fn group_key_deletion_drops_to_zero_and_returns() {
        // A group death followed by a rebirth: first-appearance order is
        // unreproducible, the count map is — which is all we promise.
        let mut table = base();
        let mut tracker = IncrementalFrequency::of(&table, &[0, 1]);
        let death = DeltaBatch::delete_rows(vec![1, 3]); // both (F, 40) rows
        for &ix in &death.deletes {
            tracker.remove_row(&table.row(ix).unwrap());
        }
        table = death.apply(&table).unwrap();
        assert_eq!(
            tracker.count_of(&[Value::Text("F".into()), Value::Int(40)]),
            0
        );
        let rebirth = DeltaBatch::append_rows(vec![row("F", 40, "Asthma")]);
        tracker.insert_row(&rebirth.appends[0]);
        table = rebirth.apply(&table).unwrap();
        let scratch = FrequencySet::of(&table, &[0, 1]);
        assert_eq!(tracker.descending_counts(), scratch.descending_counts());
        assert_eq!(
            tracker.count_of(&[Value::Text("F".into()), Value::Int(40)]),
            1
        );
    }
}
