//! Error types for the microdata substrate.

use std::fmt;

/// Errors produced by microdata construction, access, and I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute name was not found in the schema.
    UnknownAttribute(String),
    /// An attribute name occurs more than once in a schema.
    DuplicateAttribute(String),
    /// A row had a different number of fields than the schema.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of fields actually provided.
        found: usize,
    },
    /// A value had the wrong type for its column.
    TypeMismatch {
        /// Attribute whose column rejected the value.
        attribute: String,
        /// Kind the column stores.
        expected: &'static str,
        /// Kind that was provided.
        found: &'static str,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row index.
        index: usize,
        /// Number of rows in the table.
        len: usize,
    },
    /// Columns of differing lengths were combined into one table.
    LengthMismatch {
        /// Attribute whose column had the offending length.
        attribute: String,
        /// Length of the first column.
        expected: usize,
        /// Length of the offending column.
        found: usize,
    },
    /// Malformed CSV input.
    Csv {
        /// 1-based line where the problem was detected.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// Failure parsing a field into the column's type.
    Parse {
        /// 1-based CSV line (0 when not applicable).
        line: usize,
        /// Attribute being parsed.
        attribute: String,
        /// The raw text that failed to parse.
        text: String,
    },
    /// An I/O error, carried as a string to keep this type `Clone + Eq`.
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Error::DuplicateAttribute(name) => write!(f, "duplicate attribute `{name}`"),
            Error::ArityMismatch { expected, found } => {
                write!(f, "row has {found} fields, schema declares {expected}")
            }
            Error::TypeMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "attribute `{attribute}` stores {expected} values, got {found}"
            ),
            Error::RowOutOfBounds { index, len } => {
                write!(f, "row index {index} out of bounds for table of {len} rows")
            }
            Error::LengthMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "column `{attribute}` has {found} rows, expected {expected}"
            ),
            Error::Csv { line, message } => write!(f, "CSV error at line {line}: {message}"),
            Error::Parse {
                line,
                attribute,
                text,
            } => write!(
                f,
                "cannot parse `{text}` for attribute `{attribute}` (line {line})"
            ),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(err: std::io::Error) -> Self {
        Error::Io(err.to_string())
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::UnknownAttribute("Zip".into()), "unknown attribute"),
            (Error::DuplicateAttribute("Age".into()), "duplicate"),
            (
                Error::ArityMismatch {
                    expected: 3,
                    found: 2,
                },
                "2 fields",
            ),
            (
                Error::TypeMismatch {
                    attribute: "Age".into(),
                    expected: "integer",
                    found: "text",
                },
                "stores integer",
            ),
            (Error::RowOutOfBounds { index: 9, len: 3 }, "out of bounds"),
            (
                Error::LengthMismatch {
                    attribute: "Sex".into(),
                    expected: 4,
                    found: 2,
                },
                "expected 4",
            ),
            (
                Error::Csv {
                    line: 7,
                    message: "unterminated quote".into(),
                },
                "line 7",
            ),
            (
                Error::Parse {
                    line: 2,
                    attribute: "Age".into(),
                    text: "abc".into(),
                },
                "cannot parse",
            ),
            (Error::Io("disk".into()), "I/O"),
        ];
        for (err, needle) in cases {
            let shown = err.to_string();
            assert!(
                shown.contains(needle),
                "`{shown}` should contain `{needle}`"
            );
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.csv");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
        assert!(err.to_string().contains("missing.csv"));
    }
}
