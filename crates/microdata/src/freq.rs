//! Frequency sets (paper Definition 4) and their descending/cumulative forms.
//!
//! > *Given a microdata M (initial or masked), and a set of attributes SA of
//! > M, the frequency set of M with respect to SA is a mapping from each
//! > unique combination of values of SA to the total number of tuples in M
//! > with these values of SA.*
//!
//! Condition 2 of the paper consumes the *descending ordered frequency set*
//! `f_i^j` of each confidential attribute and its cumulative form `cf_i^j`
//! (Tables 5 and 6); both are provided here.

use crate::groupby::GroupBy;
use crate::table::Table;
use crate::value::Value;

/// The frequency set of a table with respect to an attribute subset.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencySet {
    keys: Vec<Vec<Value>>,
    counts: Vec<usize>,
    total: usize,
}

impl FrequencySet {
    /// Computes the frequency set of `table` w.r.t. the attributes at `by`.
    pub fn of(table: &Table, by: &[usize]) -> FrequencySet {
        let gb = GroupBy::compute(table, by);
        let keys = (0..gb.n_groups())
            .map(|g| gb.key_of_group(table, g))
            .collect();
        let counts: Vec<usize> = gb.sizes().iter().map(|&s| s as usize).collect();
        FrequencySet {
            keys,
            counts,
            total: table.n_rows(),
        }
    }

    /// Computes the frequency set of a single named attribute.
    pub fn of_attribute(table: &Table, name: &str) -> crate::error::Result<FrequencySet> {
        let idx = table.schema().index_of(name)?;
        Ok(FrequencySet::of(table, &[idx]))
    }

    /// Computes the frequency set of a [`ChunkedTable`] chunk-parallel on
    /// `threads` workers — identical to [`FrequencySet::of`] on the
    /// materialized table (the grouping is byte-identical, see
    /// [`GroupBy::compute_chunked`], so keys appear in the same
    /// first-appearance order with the same counts).
    pub fn of_chunked(
        chunked: &crate::chunked::ChunkedTable,
        by: &[usize],
        threads: usize,
    ) -> FrequencySet {
        let gb = GroupBy::compute_chunked(chunked, by, threads);
        let keys = gb
            .representatives()
            .iter()
            .map(|&rep| by.iter().map(|&c| chunked.value(rep as usize, c)).collect())
            .collect();
        let counts: Vec<usize> = gb.sizes().iter().map(|&s| s as usize).collect();
        FrequencySet {
            keys,
            counts,
            total: chunked.n_rows(),
        }
    }

    /// Number of distinct value combinations (the paper's `s_j` when the
    /// subset is a single confidential attribute).
    pub fn n_combinations(&self) -> usize {
        self.counts.len()
    }

    /// Total number of tuples counted (the paper's `n`).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Iterates `(combination, count)` pairs in first-appearance order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], usize)> {
        self.keys
            .iter()
            .map(Vec::as_slice)
            .zip(self.counts.iter().copied())
    }

    /// Count of a specific combination, or 0 when absent.
    pub fn count_of(&self, key: &[Value]) -> usize {
        self.keys
            .iter()
            .position(|k| k.as_slice() == key)
            .map_or(0, |i| self.counts[i])
    }

    /// Frequencies sorted descending: the paper's `f_1 >= f_2 >= ... >= f_s`.
    pub fn descending_counts(&self) -> Vec<usize> {
        let mut counts = self.counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }

    /// Cumulative descending frequencies: the paper's `cf_i = f_1 + .. + f_i`
    /// (Table 6). `cumulative[i-1]` is `cf_i`; the last entry equals `n`.
    pub fn cumulative_descending(&self) -> Vec<usize> {
        let mut cumulative = self.descending_counts();
        for i in 1..cumulative.len() {
            cumulative[i] += cumulative[i - 1];
        }
        cumulative
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::schema::{Attribute, Schema};

    fn illness_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["M", "Diabetes"],
                &["F", "Diabetes"],
                &["M", "Diabetes"],
                &["F", "HIV"],
                &["M", "AIDS"],
                &["M", "Diabetes"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_attribute_frequencies() {
        let t = illness_table();
        let fs = FrequencySet::of_attribute(&t, "Illness").unwrap();
        assert_eq!(fs.n_combinations(), 3);
        assert_eq!(fs.total(), 6);
        assert_eq!(fs.count_of(&[Value::Text("Diabetes".into())]), 4);
        assert_eq!(fs.count_of(&[Value::Text("HIV".into())]), 1);
        assert_eq!(fs.count_of(&[Value::Text("Leprosy".into())]), 0);
    }

    #[test]
    fn descending_and_cumulative() {
        let t = illness_table();
        let fs = FrequencySet::of_attribute(&t, "Illness").unwrap();
        assert_eq!(fs.descending_counts(), vec![4, 1, 1]);
        assert_eq!(fs.cumulative_descending(), vec![4, 5, 6]);
    }

    #[test]
    fn multi_attribute_combinations() {
        let t = illness_table();
        let fs = FrequencySet::of(&t, &[0, 1]);
        assert_eq!(fs.n_combinations(), 4); // (M,Diab) (F,Diab) (F,HIV) (M,AIDS)
        assert_eq!(
            fs.count_of(&[Value::Text("M".into()), Value::Text("Diabetes".into())]),
            3
        );
        let sum: usize = fs.iter().map(|(_, c)| c).sum();
        assert_eq!(sum, t.n_rows());
    }

    #[test]
    fn cumulative_last_entry_is_n() {
        let t = illness_table();
        for by in [vec![0usize], vec![1], vec![0, 1]] {
            let fs = FrequencySet::of(&t, &by);
            assert_eq!(*fs.cumulative_descending().last().unwrap(), t.n_rows());
        }
    }

    #[test]
    fn empty_table() {
        let t = illness_table().filter(|_| false);
        let fs = FrequencySet::of(&t, &[1]);
        assert_eq!(fs.n_combinations(), 0);
        assert_eq!(fs.total(), 0);
        assert!(fs.descending_counts().is_empty());
        assert!(fs.cumulative_descending().is_empty());
    }

    #[test]
    fn of_chunked_matches_serial() {
        let t = illness_table();
        for by in [vec![0usize], vec![1], vec![0, 1], vec![]] {
            let serial = FrequencySet::of(&t, &by);
            for chunk_rows in [1usize, 2, 4, 100] {
                let chunked = crate::chunked::ChunkedTable::from_table(&t, chunk_rows);
                for threads in [1usize, 2, 8] {
                    assert_eq!(
                        FrequencySet::of_chunked(&chunked, &by, threads),
                        serial,
                        "by={by:?} chunk_rows={chunk_rows} threads={threads}"
                    );
                }
            }
        }
    }
}
