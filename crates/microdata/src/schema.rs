//! Schemas: attribute names, storage kinds, and privacy roles.
//!
//! The paper classifies every microdata attribute into one of three privacy
//! roles (Section 2): *identifier* attributes `I1..Im` (Name, SSN — removed
//! before release), *key* attributes `K1..Kp` (quasi-identifiers an intruder
//! may know: ZipCode, Age), and *confidential* attributes `S1..Sq`
//! (Principal Diagnosis, Annual Income — assumed unknown to intruders). We add
//! a fourth catch-all role for attributes that play no part in masking.

use crate::error::{Error, Result};
use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Privacy role of an attribute (paper Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Directly identifies a record (Name, SSN). Present only in the initial
    /// microdata; stripped from any masked release.
    Identifier,
    /// Quasi-identifier / key attribute, possibly known to an intruder
    /// (ZipCode, Age, Sex). Masked by generalization.
    Key,
    /// Confidential attribute whose values must not be disclosed
    /// (Illness, Income). Released unmasked but protected by p-sensitivity.
    Confidential,
    /// Plays no role in the privacy model.
    Other,
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Role::Identifier => "identifier",
            Role::Key => "key",
            Role::Confidential => "confidential",
            Role::Other => "other",
        };
        f.write_str(s)
    }
}

/// Physical kind of an attribute's column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Kind {
    /// 64-bit integers (ages, incomes, numeric zip codes).
    Int,
    /// Dictionary-encoded categorical text.
    Cat,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::Int => "int",
            Kind::Cat => "cat",
        })
    }
}

/// One attribute: a name, a storage kind, and a privacy role.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    kind: Kind,
    role: Role,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, kind: Kind, role: Role) -> Self {
        Attribute {
            name: name.into(),
            kind,
            role,
        }
    }

    /// Shorthand for an integer key attribute.
    pub fn int_key(name: impl Into<String>) -> Self {
        Attribute::new(name, Kind::Int, Role::Key)
    }

    /// Shorthand for a categorical key attribute.
    pub fn cat_key(name: impl Into<String>) -> Self {
        Attribute::new(name, Kind::Cat, Role::Key)
    }

    /// Shorthand for an integer confidential attribute.
    pub fn int_confidential(name: impl Into<String>) -> Self {
        Attribute::new(name, Kind::Int, Role::Confidential)
    }

    /// Shorthand for a categorical confidential attribute.
    pub fn cat_confidential(name: impl Into<String>) -> Self {
        Attribute::new(name, Kind::Cat, Role::Confidential)
    }

    /// Shorthand for a categorical identifier attribute.
    pub fn cat_identifier(name: impl Into<String>) -> Self {
        Attribute::new(name, Kind::Cat, Role::Identifier)
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage kind.
    pub fn kind(&self) -> Kind {
        self.kind
    }

    /// Privacy role.
    pub fn role(&self) -> Role {
        self.role
    }
}

/// An ordered list of attributes with unique names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    by_name: FxHashMap<String, usize>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        let mut by_name = FxHashMap::default();
        for (i, attr) in attributes.iter().enumerate() {
            if by_name.insert(attr.name.clone(), i).is_some() {
                return Err(Error::DuplicateAttribute(attr.name.clone()));
            }
        }
        Ok(Schema {
            attributes,
            by_name,
        })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute at position `index`.
    pub fn attribute(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// Position of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| Error::UnknownAttribute(name.to_owned()))
    }

    /// Positions of several named attributes, in the order given.
    pub fn indices_of(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// Positions of all attributes with `role`, in declaration order.
    pub fn indices_with_role(&self, role: Role) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == role)
            .map(|(i, _)| i)
            .collect()
    }

    /// Positions of the key (quasi-identifier) attributes.
    pub fn key_indices(&self) -> Vec<usize> {
        self.indices_with_role(Role::Key)
    }

    /// Positions of the confidential attributes.
    pub fn confidential_indices(&self) -> Vec<usize> {
        self.indices_with_role(Role::Confidential)
    }

    /// Positions of the identifier attributes.
    pub fn identifier_indices(&self) -> Vec<usize> {
        self.indices_with_role(Role::Identifier)
    }

    /// Schema with a subset of attributes, preserving their order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let attrs = indices
            .iter()
            .map(|&i| {
                self.attributes
                    .get(i)
                    .cloned()
                    .ok_or(Error::RowOutOfBounds {
                        index: i,
                        len: self.attributes.len(),
                    })
            })
            .collect::<Result<Vec<_>>>()?;
        Schema::new(attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patient_schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_identifier("Name"),
            Attribute::int_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
            Attribute::int_confidential("Income"),
        ])
        .unwrap()
    }

    #[test]
    fn role_partitioning() {
        let schema = patient_schema();
        assert_eq!(schema.len(), 6);
        assert_eq!(schema.identifier_indices(), vec![0]);
        assert_eq!(schema.key_indices(), vec![1, 2, 3]);
        assert_eq!(schema.confidential_indices(), vec![4, 5]);
        assert!(schema.indices_with_role(Role::Other).is_empty());
    }

    #[test]
    fn name_lookup() {
        let schema = patient_schema();
        assert_eq!(schema.index_of("Sex").unwrap(), 3);
        assert_eq!(schema.indices_of(&["Illness", "Age"]).unwrap(), vec![4, 1]);
        assert!(matches!(
            schema.index_of("SSN"),
            Err(Error::UnknownAttribute(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let result = Schema::new(vec![Attribute::int_key("Age"), Attribute::cat_key("Age")]);
        assert!(matches!(result, Err(Error::DuplicateAttribute(_))));
    }

    #[test]
    fn projection() {
        let schema = patient_schema();
        let projected = schema.project(&[3, 1]).unwrap();
        assert_eq!(projected.len(), 2);
        assert_eq!(projected.attribute(0).name(), "Sex");
        assert_eq!(projected.attribute(1).name(), "Age");
        assert!(schema.project(&[99]).is_err());
    }

    #[test]
    fn display_impls() {
        assert_eq!(Role::Key.to_string(), "key");
        assert_eq!(Role::Confidential.to_string(), "confidential");
        assert_eq!(Kind::Int.to_string(), "int");
        assert_eq!(Kind::Cat.to_string(), "cat");
    }

    #[test]
    fn attribute_accessors() {
        let attr = Attribute::new("Pay", Kind::Cat, Role::Confidential);
        assert_eq!(attr.name(), "Pay");
        assert_eq!(attr.kind(), Kind::Cat);
        assert_eq!(attr.role(), Role::Confidential);
    }
}
