//! Group-by over attribute subsets: the engine behind every anonymity check.
//!
//! The paper tests k-anonymity with
//! `SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age`
//! and p-sensitivity with per-group `COUNT(DISTINCT S_j)`. [`GroupBy`]
//! implements exactly those two operators over columnar data.

use crate::chunked::ChunkedTable;
use crate::column::Column;
use crate::hash::FxHashMap;
use crate::morsel::{
    group_codes_timed, resolve_threads, ChunkedKeyKernel, PhaseTimings, DEFAULT_MORSEL_ROWS,
};
use crate::table::Table;
use crate::value::Value;

/// The result of grouping a table by a set of attributes.
///
/// Rows `r, s` belong to the same group iff their cells agree on every
/// grouping attribute (missing cells compare equal to each other). Group ids
/// are dense, assigned in order of first appearance.
#[derive(Debug, Clone)]
pub struct GroupBy {
    group_of_row: Vec<u32>,
    group_sizes: Vec<u32>,
    representatives: Vec<u32>,
    by: Vec<usize>,
}

/// Reusable scratch for the column-at-a-time partition refinement.
///
/// Each step maps the pair `(current group id, next column's code)` to a new
/// dense group id. When `n_groups * n_codes` fits [`CodeCombiner::RADIX_CAP`]
/// the pair is resolved through a dense remap table (`cur * n_codes + code`,
/// `u32::MAX` marking unassigned slots) — one indexed load per row instead of
/// a hash probe. Larger products fall back to an `FxHashMap`. Either way the
/// result is exact: no collision can merge distinct keys.
///
/// Keeping the combiner alive across refinements (a lattice search checks
/// hundreds of nodes over the same table) reuses the remap allocation; stale
/// slots are reset per call by walking the touched list, not the whole table.
#[derive(Debug, Default)]
pub struct CodeCombiner {
    radix: Vec<u32>,
    touched: Vec<u32>,
    hash: FxHashMap<(u32, u32), u32>,
}

impl CodeCombiner {
    /// Largest `n_groups * n_codes` product routed to the dense remap table
    /// (1M slots, 4 MiB — comfortably cache-friendly to reset via the
    /// touched list and small enough to allocate once per search).
    pub const RADIX_CAP: usize = 1 << 20;

    /// A combiner with no scratch allocated yet.
    pub fn new() -> CodeCombiner {
        CodeCombiner::default()
    }

    /// Refines the partition `current` (with `n_groups` dense ids) by `codes`
    /// (values `< n_codes`); returns the refined number of groups. New ids
    /// are dense, in order of first appearance.
    pub fn refine(
        &mut self,
        current: &mut [u32],
        n_groups: u32,
        codes: &[u32],
        n_codes: u32,
    ) -> u32 {
        self.refine_with(current, n_groups, n_codes, |row| codes[row])
    }

    /// Like [`CodeCombiner::refine`], but reads row `r`'s code as
    /// `map[base[r]]` — fusing a generalization code map into the combine so
    /// the mapped column is never materialized.
    pub fn refine_mapped(
        &mut self,
        current: &mut [u32],
        n_groups: u32,
        base: &[u32],
        map: &[u32],
        n_codes: u32,
    ) -> u32 {
        self.refine_with(current, n_groups, n_codes, |row| map[base[row] as usize])
    }

    /// Begins a refinement pass mapping `(current group, code)` pairs, with
    /// `n_groups` dense ids and codes `< n_codes`. Rows are then fed in
    /// row-order segments through [`RefinePass::segment`] — the streaming
    /// entry point letting chunked callers refine one global partition slice
    /// by slice without materializing a whole-table code vector.
    pub fn begin(&mut self, n_groups: u32, n_codes: u32) -> RefinePass<'_> {
        let product = n_groups as u64 * n_codes as u64;
        let dense = product <= Self::RADIX_CAP as u64;
        if dense {
            if self.radix.len() < product as usize {
                self.radix.resize(product as usize, u32::MAX);
            }
            for &slot in &self.touched {
                self.radix[slot as usize] = u32::MAX;
            }
            self.touched.clear();
        } else {
            self.hash.clear();
        }
        RefinePass {
            combiner: self,
            n_codes,
            next: 0,
            dense,
        }
    }

    fn refine_with(
        &mut self,
        current: &mut [u32],
        n_groups: u32,
        n_codes: u32,
        code_of_row: impl Fn(usize) -> u32,
    ) -> u32 {
        let mut pass = self.begin(n_groups, n_codes);
        pass.segment(current, code_of_row);
        pass.n_groups()
    }
}

/// An in-progress [`CodeCombiner`] refinement fed row segments in order —
/// see [`CodeCombiner::begin`].
#[derive(Debug)]
pub struct RefinePass<'a> {
    combiner: &'a mut CodeCombiner,
    n_codes: u32,
    next: u32,
    dense: bool,
}

impl RefinePass<'_> {
    /// Refines the next segment of rows in place: `current[i]` is row `i`'s
    /// group id before the call and `code_of(i)` its code (`< n_codes`).
    /// Refined ids are dense across all segments of the pass, assigned in
    /// first-appearance order.
    pub fn segment(&mut self, current: &mut [u32], code_of: impl Fn(usize) -> u32) {
        if self.dense {
            for (row, cur) in current.iter_mut().enumerate() {
                let key = *cur as usize * self.n_codes as usize + code_of(row) as usize;
                let id = self.combiner.radix[key];
                let id = if id == u32::MAX {
                    let id = self.next;
                    self.combiner.radix[key] = id;
                    self.combiner.touched.push(key as u32);
                    self.next += 1;
                    id
                } else {
                    id
                };
                *cur = id;
            }
        } else {
            let next = &mut self.next;
            for (row, cur) in current.iter_mut().enumerate() {
                let id = *self
                    .combiner
                    .hash
                    .entry((*cur, code_of(row)))
                    .or_insert_with(|| {
                        let id = *next;
                        *next += 1;
                        id
                    });
                *cur = id;
            }
        }
    }

    /// Number of refined groups assigned so far.
    pub fn n_groups(&self) -> u32 {
        self.next
    }
}

impl GroupBy {
    /// Groups `table` by the attributes at `by` (indices into the schema).
    ///
    /// Grouping by zero attributes yields a single group holding all rows
    /// (matching SQL's `GROUP BY ()` semantics); an empty table yields zero
    /// groups.
    pub fn compute(table: &Table, by: &[usize]) -> GroupBy {
        let n = table.n_rows();
        // Combine one column at a time: `current[r]` is the dense id of row
        // r's key prefix. Each step refines the partition with the next
        // column's dense codes. Exact (no hash collisions can merge groups).
        let mut current = vec![0u32; n];
        let mut n_groups: u32 = u32::from(n > 0);
        let mut combiner = CodeCombiner::new();
        for &col_idx in by {
            let (codes, n_codes) = table.column(col_idx).dense_codes();
            n_groups = combiner.refine(&mut current, n_groups, &codes, n_codes);
        }
        GroupBy::from_assignment(current, n_groups, by.to_vec())
    }

    /// Groups a [`ChunkedTable`] by the attributes at `by` on `threads`
    /// workers — byte-identical to running [`GroupBy::compute`] on
    /// `chunked.to_table()`. `threads == 0` means one worker per available
    /// core (see [`resolve_threads`]).
    ///
    /// With one (resolved) thread the work runs on the column-at-a-time
    /// streaming path: one global partition refined chunk slice by chunk
    /// slice (see [`CodeCombiner::begin`]), with per-chunk dictionaries
    /// unified upfront. That path runs the same row passes as the serial
    /// kernel — no local partitions, no merge keys, no scatter — so opting
    /// into chunked storage costs nothing when there is no parallelism to
    /// buy.
    ///
    /// Otherwise the morsel-driven, hash-partitioned executor runs (see
    /// [`crate::morsel`]): workers pull [`DEFAULT_MORSEL_ROWS`]-sized row
    /// ranges from a shared cursor, radix-partition rows by a multi-column
    /// key kernel, build each partition's group table locally, and a final
    /// canonical pass restores first-appearance group ids. Unlike the old
    /// chunk-per-thread design, parallelism no longer depends on the chunk
    /// layout: a single 10M-row chunk still fans out across all workers.
    pub fn compute_chunked(chunked: &ChunkedTable, by: &[usize], threads: usize) -> GroupBy {
        GroupBy::compute_chunked_morsels(chunked, by, threads, DEFAULT_MORSEL_ROWS)
    }

    /// [`GroupBy::compute_chunked`] with an explicit morsel size (rows per
    /// cursor pull; `0` means [`DEFAULT_MORSEL_ROWS`]). The result is
    /// independent of `morsel_rows` — the differential oracle pins this —
    /// so the knob only exists for benchmarks and tests.
    pub fn compute_chunked_morsels(
        chunked: &ChunkedTable,
        by: &[usize],
        threads: usize,
        morsel_rows: usize,
    ) -> GroupBy {
        GroupBy::compute_chunked_profiled(chunked, by, threads, morsel_rows).0
    }

    /// [`GroupBy::compute_chunked_morsels`], also returning the executor's
    /// per-phase wall-clock breakdown (all-zero on the streaming path,
    /// which has no phases).
    pub fn compute_chunked_profiled(
        chunked: &ChunkedTable,
        by: &[usize],
        threads: usize,
        morsel_rows: usize,
    ) -> (GroupBy, PhaseTimings) {
        let threads = resolve_threads(threads);
        if threads <= 1 {
            return (
                compute_chunked_streaming(chunked, by),
                PhaseTimings::default(),
            );
        }
        let kernel = ChunkedKeyKernel::new(chunked, by, threads);
        let ((current, n_groups), timings) = group_codes_timed(&kernel, threads, morsel_rows);
        (
            GroupBy::from_assignment(current, n_groups, by.to_vec()),
            timings,
        )
    }

    /// Builds a grouping directly from pre-combined dense group ids — the
    /// code-mapped fast path. `current[r]` is row `r`'s group id, dense in
    /// `0..n_groups` and assigned in order of first appearance (exactly what
    /// [`CodeCombiner`] produces). `by` records which attributes the ids were
    /// derived from, for [`GroupBy::key_of_group`]-style introspection.
    pub fn from_assignment(current: Vec<u32>, n_groups: u32, by: Vec<usize>) -> GroupBy {
        let mut group_sizes = vec![0u32; n_groups as usize];
        let mut representatives = vec![u32::MAX; n_groups as usize];
        for (row, &g) in current.iter().enumerate() {
            if group_sizes[g as usize] == 0 {
                representatives[g as usize] = row as u32;
            }
            group_sizes[g as usize] += 1;
        }
        GroupBy {
            group_of_row: current,
            group_sizes,
            representatives,
            by,
        }
    }

    /// Groups `n_rows` rows by a sequence of `(codes, n_codes)` slices —
    /// each one attribute's dense codes — without consulting a `Table`.
    ///
    /// Semantically identical to [`GroupBy::compute`] over columns whose
    /// `dense_codes` yield those slices.
    ///
    /// # Panics
    /// Panics when some slice's length differs from `n_rows`.
    pub fn from_code_slices<'a>(
        n_rows: usize,
        slices: impl IntoIterator<Item = (&'a [u32], u32)>,
        by: Vec<usize>,
    ) -> GroupBy {
        let mut current = vec![0u32; n_rows];
        let mut n_groups: u32 = u32::from(n_rows > 0);
        let mut combiner = CodeCombiner::new();
        for (codes, n_codes) in slices {
            assert_eq!(codes.len(), n_rows, "code slice length must match n_rows");
            n_groups = combiner.refine(&mut current, n_groups, codes, n_codes);
        }
        GroupBy::from_assignment(current, n_groups, by)
    }

    /// Number of groups (the paper's `noGroups`).
    pub fn n_groups(&self) -> usize {
        self.group_sizes.len()
    }

    /// Number of rows that were grouped.
    pub fn n_rows(&self) -> usize {
        self.group_of_row.len()
    }

    /// The attribute indices this grouping was computed over.
    pub fn by(&self) -> &[usize] {
        &self.by
    }

    /// Group id of `row`.
    pub fn group_of(&self, row: usize) -> u32 {
        self.group_of_row[row]
    }

    /// Group id of every row, indexed by row — ids are dense and numbered in
    /// first-appearance order, so two groupings agree iff these slices are
    /// equal.
    pub fn assignments(&self) -> &[u32] {
        &self.group_of_row
    }

    /// Sizes of all groups, indexed by group id.
    pub fn sizes(&self) -> &[u32] {
        &self.group_sizes
    }

    /// Smallest group size, or `None` for an empty table.
    pub fn min_group_size(&self) -> Option<u32> {
        self.group_sizes.iter().copied().min()
    }

    /// One row index per group (the first row seen in that group).
    pub fn representatives(&self) -> &[u32] {
        &self.representatives
    }

    /// Row indices of each group, indexed by group id.
    pub fn rows_by_group(&self) -> Vec<Vec<u32>> {
        let mut rows = vec![Vec::new(); self.n_groups()];
        for (row, &g) in self.group_of_row.iter().enumerate() {
            rows[g as usize].push(row as u32);
        }
        rows
    }

    /// Number of rows living in groups of size `< k` — the count of tuples
    /// that do *not* satisfy k-anonymity, annotated per lattice node in the
    /// paper's Figure 3 and compared against the suppression threshold TS.
    pub fn rows_in_small_groups(&self, k: u32) -> usize {
        self.group_sizes
            .iter()
            .filter(|&&size| size < k)
            .map(|&size| size as usize)
            .sum()
    }

    /// Row indices living in groups of size `< k`, in row order — the tuples
    /// suppression removes.
    pub fn small_group_rows(&self, k: u32) -> Vec<usize> {
        self.group_of_row
            .iter()
            .enumerate()
            .filter(|&(_, &g)| self.group_sizes[g as usize] < k)
            .map(|(row, _)| row)
            .collect()
    }

    /// Per-group `COUNT(DISTINCT column)`: entry `g` is the number of
    /// distinct values `column` takes among the rows of group `g`.
    ///
    /// Missing cells count as one shared distinct value.
    ///
    /// # Panics
    /// Panics when `column` has a different length than the grouped table.
    pub fn distinct_per_group(&self, column: &Column) -> Vec<u32> {
        assert_eq!(
            column.len(),
            self.group_of_row.len(),
            "column length must match grouped table"
        );
        let (codes, n_distinct) = column.dense_codes();
        self.distinct_codes_per_group(&codes, n_distinct)
    }

    /// [`GroupBy::distinct_per_group`] over pre-densified codes (values
    /// `< n_codes`) — lets callers that check many partitions of the same
    /// table densify each confidential column once.
    ///
    /// # Panics
    /// Panics when `codes` has a different length than the grouped table.
    pub fn distinct_codes_per_group(&self, codes: &[u32], n_codes: u32) -> Vec<u32> {
        assert_eq!(
            codes.len(),
            self.group_of_row.len(),
            "codes length must match grouped table"
        );
        // Visit rows group by group (counting sort by group id) so that
        // `stamp[code]` — the last group that observed `code` — is reliable:
        // each group is processed as one contiguous block, so a stamp equal
        // to the current group can only have been written within the block.
        let mut offsets = vec![0usize; self.n_groups() + 1];
        for &g in &self.group_of_row {
            offsets[g as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut ordered_rows = vec![0u32; self.group_of_row.len()];
        for (row, &g) in self.group_of_row.iter().enumerate() {
            ordered_rows[cursor[g as usize]] = row as u32;
            cursor[g as usize] += 1;
        }
        let mut stamp = vec![u32::MAX; n_codes as usize];
        let mut counts = vec![0u32; self.n_groups()];
        for &row in &ordered_rows {
            let g = self.group_of_row[row as usize];
            let code = codes[row as usize];
            if stamp[code as usize] != g {
                stamp[code as usize] = g;
                counts[g as usize] += 1;
            }
        }
        counts
    }

    /// Materializes group `g`'s key as values of the grouping attributes.
    pub fn key_of_group(&self, table: &Table, g: usize) -> Vec<Value> {
        let row = self.representatives[g] as usize;
        self.by.iter().map(|&c| table.value(row, c)).collect()
    }
}

/// Streaming path of [`GroupBy::compute_chunked`] for `threads <= 1`:
/// column-at-a-time refinement of one global partition, fed chunk slice by
/// chunk slice through a single [`RefinePass`] per column.
fn compute_chunked_streaming(chunked: &ChunkedTable, by: &[usize]) -> GroupBy {
    let mut current = vec![0u32; chunked.n_rows()];
    let mut n_groups: u32 = u32::from(chunked.n_rows() > 0);
    let mut combiner = CodeCombiner::new();
    for &col in by {
        n_groups = refine_chunks_by_column(chunked, col, &mut current, n_groups, &mut combiner);
    }
    GroupBy::from_assignment(current, n_groups, by.to_vec())
}

/// Refines the global partition `current` by one column of a chunked table.
///
/// Refined ids depend only on which rows share a cell value, never on how
/// the codes are numbered, so any injective, cross-chunk-consistent code
/// works. Categorical columns use global dictionary codes (per-chunk
/// dictionaries unified upfront — a pass over dictionary entries, not rows)
/// plus one reserved code for missing cells, fused into a single row pass.
/// Integer columns run the serial densify pass, read chunk by chunk with
/// one persistent value→code map, then one refine.
fn refine_chunks_by_column(
    chunked: &ChunkedTable,
    col: usize,
    current: &mut [u32],
    n_groups: u32,
    combiner: &mut CodeCombiner,
) -> u32 {
    match chunked.merge_column_dictionaries(col) {
        Some(remaps) => {
            // Every global code appears in some chunk's remap, so the global
            // dictionary size is the largest remap entry + 1; missing cells
            // take the next code up.
            let missing_code = remaps
                .iter()
                .flatten()
                .copied()
                .max()
                .map_or(0, |max| max + 1);
            let mut pass = combiner.begin(n_groups, missing_code + 1);
            let mut offset = 0usize;
            for (c, chunk) in chunked.chunks().iter().enumerate() {
                let Column::Cat(cat) = chunk.column(col) else {
                    unreachable!("chunk columns match the schema kind")
                };
                let remap = &remaps[c];
                let end = offset + chunk.n_rows();
                pass.segment(&mut current[offset..end], |row| {
                    cat.code_at(row)
                        .map_or(missing_code, |raw| remap[raw as usize])
                });
                offset = end;
            }
            pass.n_groups()
        }
        None => {
            let mut map: FxHashMap<i64, u32> = FxHashMap::default();
            let mut missing_code: Option<u32> = None;
            let mut next = 0u32;
            let mut codes = Vec::with_capacity(chunked.n_rows());
            for chunk in chunked.chunks() {
                let Column::Int(ints) = chunk.column(col) else {
                    unreachable!("chunk columns match the schema kind")
                };
                for row in 0..ints.len() {
                    let code = match ints.get(row) {
                        Some(v) => *map.entry(v).or_insert_with(|| {
                            let code = next;
                            next += 1;
                            code
                        }),
                        None => *missing_code.get_or_insert_with(|| {
                            let code = next;
                            next += 1;
                            code
                        }),
                    };
                    codes.push(code);
                }
            }
            combiner.refine(current, n_groups, &codes, next)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::schema::{Attribute, Schema};

    /// The paper's Table 1 (patient masked microdata satisfying 2-anonymity).
    fn patient_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["50", "43102", "M", "Colon Cancer"],
                &["30", "43102", "F", "Breast Cancer"],
                &["30", "43102", "F", "HIV"],
                &["20", "43102", "M", "Diabetes"],
                &["20", "43102", "M", "Diabetes"],
                &["50", "43102", "M", "Heart Disease"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn grouping_matches_table1() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        assert_eq!(gb.n_groups(), 3);
        let mut sizes = gb.sizes().to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 2]);
        assert_eq!(gb.min_group_size(), Some(2));
        assert_eq!(gb.rows_in_small_groups(2), 0);
        assert_eq!(gb.rows_in_small_groups(3), 6);
    }

    #[test]
    fn same_group_iff_equal_keys() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        // rows 0 and 5 share (50, 43102, M); rows 3 and 4 share (20, 43102, M)
        assert_eq!(gb.group_of(0), gb.group_of(5));
        assert_eq!(gb.group_of(3), gb.group_of(4));
        assert_ne!(gb.group_of(0), gb.group_of(3));
        assert_ne!(gb.group_of(1), gb.group_of(0));
    }

    #[test]
    fn distinct_per_group_counts_illness() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        let distinct = gb.distinct_per_group(t.column_by_name("Illness").unwrap());
        // (50,M): Colon Cancer + Heart Disease = 2 distinct
        // (30,F): Breast Cancer + HIV = 2 distinct
        // (20,M): Diabetes, Diabetes = 1 distinct  <-- the homogeneity attack
        let g_20m = gb.group_of(3) as usize;
        let g_50m = gb.group_of(0) as usize;
        let g_30f = gb.group_of(1) as usize;
        assert_eq!(distinct[g_20m], 1);
        assert_eq!(distinct[g_50m], 2);
        assert_eq!(distinct[g_30f], 2);
    }

    #[test]
    fn group_by_nothing_is_one_group() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[]);
        assert_eq!(gb.n_groups(), 1);
        assert_eq!(gb.sizes(), &[6]);
        let distinct = gb.distinct_per_group(t.column_by_name("Illness").unwrap());
        assert_eq!(distinct, vec![5]);
    }

    #[test]
    fn empty_table_yields_zero_groups() {
        let t = patient_table().filter(|_| false);
        let gb = GroupBy::compute(&t, &[0]);
        assert_eq!(gb.n_groups(), 0);
        assert_eq!(gb.min_group_size(), None);
        assert_eq!(gb.rows_in_small_groups(2), 0);
    }

    #[test]
    fn small_group_rows_lists_suppression_candidates() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        assert!(gb.small_group_rows(2).is_empty());
        assert_eq!(gb.small_group_rows(3), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rows_by_group_partitions_all_rows() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        let rows = gb.rows_by_group();
        let total: usize = rows.iter().map(Vec::len).sum();
        assert_eq!(total, t.n_rows());
        for (g, members) in rows.iter().enumerate() {
            assert_eq!(members.len() as u32, gb.sizes()[g]);
            for &r in members {
                assert_eq!(gb.group_of(r as usize), g as u32);
            }
        }
    }

    #[test]
    fn key_of_group_returns_grouping_values() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[2, 0]);
        let g = gb.group_of(3) as usize;
        let key = gb.key_of_group(&t, g);
        assert_eq!(key, vec![Value::Text("M".into()), Value::Int(20)]);
    }

    #[test]
    fn distinct_per_group_handles_interleaved_rows() {
        // Regression: rows of different groups interleave while sharing a
        // value. A stamp without group-contiguous traversal double-counts
        // the shared value for the revisited group.
        let schema = Schema::new(vec![
            Attribute::cat_key("G"),
            Attribute::cat_confidential("S"),
        ])
        .unwrap();
        let t = table_from_str_rows(
            schema,
            &[
                &["a", "x"], // group a sees x
                &["b", "x"], // group b sees x (stamps over a's mark)
                &["a", "x"], // group a sees x again: still 1 distinct
                &["b", "y"],
            ],
        )
        .unwrap();
        let gb = GroupBy::compute(&t, &[0]);
        let distinct = gb.distinct_per_group(t.column_by_name("S").unwrap());
        let ga = gb.group_of(0) as usize;
        let gbid = gb.group_of(1) as usize;
        assert_eq!(distinct[ga], 1, "group a is homogeneous in S");
        assert_eq!(distinct[gbid], 2);
    }

    #[test]
    fn from_code_slices_matches_compute() {
        let t = patient_table();
        let by = vec![0usize, 1, 2];
        let slices: Vec<(Vec<u32>, u32)> = by.iter().map(|&c| t.column(c).dense_codes()).collect();
        let fast = GroupBy::from_code_slices(
            t.n_rows(),
            slices.iter().map(|(codes, n)| (codes.as_slice(), *n)),
            by.clone(),
        );
        let slow = GroupBy::compute(&t, &by);
        assert_eq!(fast.group_of_row, slow.group_of_row);
        assert_eq!(fast.sizes(), slow.sizes());
        assert_eq!(fast.representatives(), slow.representatives());
        assert_eq!(fast.by(), slow.by());
    }

    #[test]
    fn combiner_hash_fallback_matches_radix() {
        // Same codes, two declared alphabet sizes: one routes through the
        // dense remap, the other (product above the cap) through the hash
        // fallback. The partition must be identical — it depends only on the
        // code values.
        let codes: Vec<u32> = vec![3, 1, 4, 1, 5, 9, 2, 6, 5, 3];
        let mut dense = vec![0u32; codes.len()];
        let mut hashed = vec![0u32; codes.len()];
        let mut combiner = CodeCombiner::new();
        let n_dense = combiner.refine(&mut dense, 1, &codes, 10);
        let n_hashed = combiner.refine(&mut hashed, 1, &codes, 1 + CodeCombiner::RADIX_CAP as u32);
        assert_eq!(n_dense, n_hashed);
        assert_eq!(dense, hashed);
    }

    #[test]
    fn combiner_reuse_resets_stale_slots() {
        let mut combiner = CodeCombiner::new();
        let mut current = vec![0u32; 4];
        let n = combiner.refine(&mut current, 1, &[0, 1, 0, 1], 2);
        assert_eq!(n, 2);
        // A second, unrelated refinement must not see the first one's ids.
        let mut current = vec![0u32; 3];
        let n = combiner.refine(&mut current, 1, &[1, 1, 1], 2);
        assert_eq!(n, 1);
        assert_eq!(current, vec![0, 0, 0]);
    }

    #[test]
    fn refine_mapped_equals_materialized_refine() {
        let base = vec![0u32, 1, 2, 3, 2, 1];
        let map = vec![0u32, 1, 0, 1]; // generalize 4 codes down to 2
        let mapped: Vec<u32> = base.iter().map(|&b| map[b as usize]).collect();
        let mut fused = vec![0u32; base.len()];
        let mut plain = vec![0u32; base.len()];
        let mut combiner = CodeCombiner::new();
        let n_fused = combiner.refine_mapped(&mut fused, 1, &base, &map, 2);
        let n_plain = combiner.refine(&mut plain, 1, &mapped, 2);
        assert_eq!(n_fused, n_plain);
        assert_eq!(fused, plain);
    }

    #[test]
    fn distinct_codes_per_group_matches_column_variant() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        let col = t.column_by_name("Illness").unwrap();
        let (codes, n_codes) = col.dense_codes();
        assert_eq!(
            gb.distinct_codes_per_group(&codes, n_codes),
            gb.distinct_per_group(col)
        );
    }

    #[test]
    fn compute_chunked_matches_serial_for_all_shapes() {
        let t = patient_table();
        let by_sets: &[&[usize]] = &[&[0, 1, 2], &[2, 0], &[3], &[]];
        for &by in by_sets {
            let serial = GroupBy::compute(&t, by);
            for chunk_rows in [1usize, 2, 3, 7, 100] {
                let chunked = ChunkedTable::from_table(&t, chunk_rows);
                for threads in [1usize, 2, 8] {
                    let par = GroupBy::compute_chunked(&chunked, by, threads);
                    assert_eq!(
                        par.group_of_row, serial.group_of_row,
                        "by={by:?} chunk_rows={chunk_rows} threads={threads}"
                    );
                    assert_eq!(par.sizes(), serial.sizes());
                    assert_eq!(par.representatives(), serial.representatives());
                    assert_eq!(par.by(), serial.by());
                }
            }
        }
    }

    #[test]
    fn compute_chunked_pins_empty_table_and_empty_by() {
        // Group-by semantics on the degenerate shapes are well-defined and
        // identical across the serial and chunked paths: an empty table
        // yields zero groups, an empty `by` yields SQL's `GROUP BY ()`
        // single all-rows group.
        let t = patient_table();
        let empty = t.filter(|_| false);
        let gb = GroupBy::compute_chunked(&ChunkedTable::from_table(&empty, 4), &[0], 2);
        assert_eq!(gb.n_groups(), 0);
        assert_eq!(gb.n_rows(), 0);
        assert_eq!(gb.min_group_size(), None);

        let gb = GroupBy::compute_chunked(&ChunkedTable::from_table(&t, 2), &[], 2);
        assert_eq!(gb.n_groups(), 1);
        assert_eq!(gb.sizes(), &[6]);
    }

    #[test]
    fn compute_chunked_unifies_independent_chunk_dictionaries() {
        // Chunks interned independently (as streaming ingest produces them)
        // must group identically to the serial pass over the concatenation.
        let schema = Schema::new(vec![
            Attribute::cat_key("City"),
            Attribute::cat_confidential("S"),
        ])
        .unwrap();
        let c1 = table_from_str_rows(schema.clone(), &[&["b", "x"], &["a", "y"]]).unwrap();
        let c2 =
            table_from_str_rows(schema.clone(), &[&["a", "x"], &["c", "y"], &["b", "x"]]).unwrap();
        let mut chunked = crate::chunked::ChunkedTable::new(schema, 3);
        chunked.push_chunk(c1);
        chunked.push_chunk(c2);
        let serial = GroupBy::compute(&chunked.to_table(), &[0]);
        let par = GroupBy::compute_chunked(&chunked, &[0], 2);
        assert_eq!(par.group_of_row, serial.group_of_row);
        assert_eq!(par.sizes(), serial.sizes());
        assert_eq!(par.representatives(), serial.representatives());
    }

    #[test]
    fn missing_cells_group_together() {
        let schema = Schema::new(vec![Attribute::int_key("Age")]).unwrap();
        let t = table_from_str_rows(schema, &[&["?"], &["?"], &["1"]]).unwrap();
        let gb = GroupBy::compute(&t, &[0]);
        assert_eq!(gb.n_groups(), 2);
        assert_eq!(gb.group_of(0), gb.group_of(1));
        assert_ne!(gb.group_of(0), gb.group_of(2));
    }
}
