//! Group-by over attribute subsets: the engine behind every anonymity check.
//!
//! The paper tests k-anonymity with
//! `SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age`
//! and p-sensitivity with per-group `COUNT(DISTINCT S_j)`. [`GroupBy`]
//! implements exactly those two operators over columnar data.

use crate::column::Column;
use crate::hash::FxHashMap;
use crate::table::Table;
use crate::value::Value;

/// The result of grouping a table by a set of attributes.
///
/// Rows `r, s` belong to the same group iff their cells agree on every
/// grouping attribute (missing cells compare equal to each other). Group ids
/// are dense, assigned in order of first appearance.
#[derive(Debug, Clone)]
pub struct GroupBy {
    group_of_row: Vec<u32>,
    group_sizes: Vec<u32>,
    representatives: Vec<u32>,
    by: Vec<usize>,
}

impl GroupBy {
    /// Groups `table` by the attributes at `by` (indices into the schema).
    ///
    /// Grouping by zero attributes yields a single group holding all rows
    /// (matching SQL's `GROUP BY ()` semantics); an empty table yields zero
    /// groups.
    pub fn compute(table: &Table, by: &[usize]) -> GroupBy {
        let n = table.n_rows();
        // Combine one column at a time: `current[r]` is the dense id of row
        // r's key prefix. Each step refines the partition with the next
        // column's dense codes. Exact (no hash collisions can merge groups).
        let mut current = vec![0u32; n];
        let mut n_groups: u32 = u32::from(n > 0);
        for &col_idx in by {
            let (codes, _) = table.column(col_idx).dense_codes();
            let mut remap: FxHashMap<(u32, u32), u32> = FxHashMap::default();
            let mut next = 0u32;
            for (cur, code) in current.iter_mut().zip(codes) {
                let id = *remap.entry((*cur, code)).or_insert_with(|| {
                    let id = next;
                    next += 1;
                    id
                });
                *cur = id;
            }
            n_groups = next;
        }
        let mut group_sizes = vec![0u32; n_groups as usize];
        let mut representatives = vec![u32::MAX; n_groups as usize];
        for (row, &g) in current.iter().enumerate() {
            if group_sizes[g as usize] == 0 {
                representatives[g as usize] = row as u32;
            }
            group_sizes[g as usize] += 1;
        }
        GroupBy {
            group_of_row: current,
            group_sizes,
            representatives,
            by: by.to_vec(),
        }
    }

    /// Number of groups (the paper's `noGroups`).
    pub fn n_groups(&self) -> usize {
        self.group_sizes.len()
    }

    /// Number of rows that were grouped.
    pub fn n_rows(&self) -> usize {
        self.group_of_row.len()
    }

    /// The attribute indices this grouping was computed over.
    pub fn by(&self) -> &[usize] {
        &self.by
    }

    /// Group id of `row`.
    pub fn group_of(&self, row: usize) -> u32 {
        self.group_of_row[row]
    }

    /// Sizes of all groups, indexed by group id.
    pub fn sizes(&self) -> &[u32] {
        &self.group_sizes
    }

    /// Smallest group size, or `None` for an empty table.
    pub fn min_group_size(&self) -> Option<u32> {
        self.group_sizes.iter().copied().min()
    }

    /// One row index per group (the first row seen in that group).
    pub fn representatives(&self) -> &[u32] {
        &self.representatives
    }

    /// Row indices of each group, indexed by group id.
    pub fn rows_by_group(&self) -> Vec<Vec<u32>> {
        let mut rows = vec![Vec::new(); self.n_groups()];
        for (row, &g) in self.group_of_row.iter().enumerate() {
            rows[g as usize].push(row as u32);
        }
        rows
    }

    /// Number of rows living in groups of size `< k` — the count of tuples
    /// that do *not* satisfy k-anonymity, annotated per lattice node in the
    /// paper's Figure 3 and compared against the suppression threshold TS.
    pub fn rows_in_small_groups(&self, k: u32) -> usize {
        self.group_sizes
            .iter()
            .filter(|&&size| size < k)
            .map(|&size| size as usize)
            .sum()
    }

    /// Row indices living in groups of size `< k`, in row order — the tuples
    /// suppression removes.
    pub fn small_group_rows(&self, k: u32) -> Vec<usize> {
        self.group_of_row
            .iter()
            .enumerate()
            .filter(|&(_, &g)| self.group_sizes[g as usize] < k)
            .map(|(row, _)| row)
            .collect()
    }

    /// Per-group `COUNT(DISTINCT column)`: entry `g` is the number of
    /// distinct values `column` takes among the rows of group `g`.
    ///
    /// Missing cells count as one shared distinct value.
    ///
    /// # Panics
    /// Panics when `column` has a different length than the grouped table.
    pub fn distinct_per_group(&self, column: &Column) -> Vec<u32> {
        assert_eq!(
            column.len(),
            self.group_of_row.len(),
            "column length must match grouped table"
        );
        let (codes, n_distinct) = column.dense_codes();
        // Visit rows group by group (counting sort by group id) so that
        // `stamp[code]` — the last group that observed `code` — is reliable:
        // each group is processed as one contiguous block, so a stamp equal
        // to the current group can only have been written within the block.
        let mut offsets = vec![0usize; self.n_groups() + 1];
        for &g in &self.group_of_row {
            offsets[g as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut ordered_rows = vec![0u32; self.group_of_row.len()];
        for (row, &g) in self.group_of_row.iter().enumerate() {
            ordered_rows[cursor[g as usize]] = row as u32;
            cursor[g as usize] += 1;
        }
        let mut stamp = vec![u32::MAX; n_distinct as usize];
        let mut counts = vec![0u32; self.n_groups()];
        for &row in &ordered_rows {
            let g = self.group_of_row[row as usize];
            let code = codes[row as usize];
            if stamp[code as usize] != g {
                stamp[code as usize] = g;
                counts[g as usize] += 1;
            }
        }
        counts
    }

    /// Materializes group `g`'s key as values of the grouping attributes.
    pub fn key_of_group(&self, table: &Table, g: usize) -> Vec<Value> {
        let row = self.representatives[g] as usize;
        self.by.iter().map(|&c| table.value(row, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::schema::{Attribute, Schema};

    /// The paper's Table 1 (patient masked microdata satisfying 2-anonymity).
    fn patient_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_key("Sex"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["50", "43102", "M", "Colon Cancer"],
                &["30", "43102", "F", "Breast Cancer"],
                &["30", "43102", "F", "HIV"],
                &["20", "43102", "M", "Diabetes"],
                &["20", "43102", "M", "Diabetes"],
                &["50", "43102", "M", "Heart Disease"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn grouping_matches_table1() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        assert_eq!(gb.n_groups(), 3);
        let mut sizes = gb.sizes().to_vec();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 2, 2]);
        assert_eq!(gb.min_group_size(), Some(2));
        assert_eq!(gb.rows_in_small_groups(2), 0);
        assert_eq!(gb.rows_in_small_groups(3), 6);
    }

    #[test]
    fn same_group_iff_equal_keys() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        // rows 0 and 5 share (50, 43102, M); rows 3 and 4 share (20, 43102, M)
        assert_eq!(gb.group_of(0), gb.group_of(5));
        assert_eq!(gb.group_of(3), gb.group_of(4));
        assert_ne!(gb.group_of(0), gb.group_of(3));
        assert_ne!(gb.group_of(1), gb.group_of(0));
    }

    #[test]
    fn distinct_per_group_counts_illness() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        let distinct = gb.distinct_per_group(t.column_by_name("Illness").unwrap());
        // (50,M): Colon Cancer + Heart Disease = 2 distinct
        // (30,F): Breast Cancer + HIV = 2 distinct
        // (20,M): Diabetes, Diabetes = 1 distinct  <-- the homogeneity attack
        let g_20m = gb.group_of(3) as usize;
        let g_50m = gb.group_of(0) as usize;
        let g_30f = gb.group_of(1) as usize;
        assert_eq!(distinct[g_20m], 1);
        assert_eq!(distinct[g_50m], 2);
        assert_eq!(distinct[g_30f], 2);
    }

    #[test]
    fn group_by_nothing_is_one_group() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[]);
        assert_eq!(gb.n_groups(), 1);
        assert_eq!(gb.sizes(), &[6]);
        let distinct = gb.distinct_per_group(t.column_by_name("Illness").unwrap());
        assert_eq!(distinct, vec![5]);
    }

    #[test]
    fn empty_table_yields_zero_groups() {
        let t = patient_table().filter(|_| false);
        let gb = GroupBy::compute(&t, &[0]);
        assert_eq!(gb.n_groups(), 0);
        assert_eq!(gb.min_group_size(), None);
        assert_eq!(gb.rows_in_small_groups(2), 0);
    }

    #[test]
    fn small_group_rows_lists_suppression_candidates() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        assert!(gb.small_group_rows(2).is_empty());
        assert_eq!(gb.small_group_rows(3), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn rows_by_group_partitions_all_rows() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[0, 1, 2]);
        let rows = gb.rows_by_group();
        let total: usize = rows.iter().map(Vec::len).sum();
        assert_eq!(total, t.n_rows());
        for (g, members) in rows.iter().enumerate() {
            assert_eq!(members.len() as u32, gb.sizes()[g]);
            for &r in members {
                assert_eq!(gb.group_of(r as usize), g as u32);
            }
        }
    }

    #[test]
    fn key_of_group_returns_grouping_values() {
        let t = patient_table();
        let gb = GroupBy::compute(&t, &[2, 0]);
        let g = gb.group_of(3) as usize;
        let key = gb.key_of_group(&t, g);
        assert_eq!(key, vec![Value::Text("M".into()), Value::Int(20)]);
    }

    #[test]
    fn distinct_per_group_handles_interleaved_rows() {
        // Regression: rows of different groups interleave while sharing a
        // value. A stamp without group-contiguous traversal double-counts
        // the shared value for the revisited group.
        let schema = Schema::new(vec![
            Attribute::cat_key("G"),
            Attribute::cat_confidential("S"),
        ])
        .unwrap();
        let t = table_from_str_rows(
            schema,
            &[
                &["a", "x"], // group a sees x
                &["b", "x"], // group b sees x (stamps over a's mark)
                &["a", "x"], // group a sees x again: still 1 distinct
                &["b", "y"],
            ],
        )
        .unwrap();
        let gb = GroupBy::compute(&t, &[0]);
        let distinct = gb.distinct_per_group(t.column_by_name("S").unwrap());
        let ga = gb.group_of(0) as usize;
        let gbid = gb.group_of(1) as usize;
        assert_eq!(distinct[ga], 1, "group a is homogeneous in S");
        assert_eq!(distinct[gbid], 2);
    }

    #[test]
    fn missing_cells_group_together() {
        let schema = Schema::new(vec![Attribute::int_key("Age")]).unwrap();
        let t = table_from_str_rows(schema, &[&["?"], &["?"], &["1"]]).unwrap();
        let gb = GroupBy::compute(&t, &[0]);
        assert_eq!(gb.n_groups(), 2);
        assert_eq!(gb.group_of(0), gb.group_of(1));
        assert_ne!(gb.group_of(0), gb.group_of(2));
    }
}
