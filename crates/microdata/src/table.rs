//! The `Table` type: a schema plus columnar data.

use crate::column::Column;
use crate::error::{Error, Result};
use crate::schema::{Kind, Role, Schema};
use crate::value::Value;

/// An immutable, in-memory microdata table.
///
/// A `Table` pairs a [`Schema`] with one [`Column`] per attribute; all columns
/// have equal length. Tables are cheap to project and gather (dictionaries are
/// shared by clone), which is how the masking pipeline derives masked
/// microdata from initial microdata without mutating it.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Table {
    /// Builds a table from a schema and matching columns.
    ///
    /// Validates that the column count, each column's kind, and all lengths
    /// agree with the schema.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::ArityMismatch {
                expected: schema.len(),
                found: columns.len(),
            });
        }
        for (attr, col) in schema.attributes().iter().zip(&columns) {
            let matches = matches!(
                (attr.kind(), col),
                (Kind::Int, Column::Int(_)) | (Kind::Cat, Column::Cat(_))
            );
            if !matches {
                let found = match col {
                    Column::Int(_) => "integer",
                    Column::Cat(_) => "text",
                };
                return Err(Error::TypeMismatch {
                    attribute: attr.name().to_owned(),
                    expected: match attr.kind() {
                        Kind::Int => "integer",
                        Kind::Cat => "text",
                    },
                    found,
                });
            }
        }
        let n_rows = columns.first().map_or(0, Column::len);
        for (attr, col) in schema.attributes().iter().zip(&columns) {
            if col.len() != n_rows {
                return Err(Error::LengthMismatch {
                    attribute: attr.name().to_owned(),
                    expected: n_rows,
                    found: col.len(),
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            n_rows,
        })
    }

    /// Builds an empty table (zero rows) over `schema`.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema
            .attributes()
            .iter()
            .map(|a| match a.kind() {
                Kind::Int => Column::Int(Default::default()),
                Kind::Cat => Column::Cat(Default::default()),
            })
            .collect();
        Table {
            n_rows: 0,
            columns,
            schema,
        }
    }

    /// Number of rows (the paper's `n`).
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Column at position `index`.
    pub fn column(&self, index: usize) -> &Column {
        &self.columns[index]
    }

    /// Column of the attribute named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Reads one cell.
    ///
    /// # Panics
    /// Panics when `row` or `col` is out of bounds.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// Materializes one row as values in schema order.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(Error::RowOutOfBounds {
                index: row,
                len: self.n_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Table with only the attributes at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Table> {
        let schema = self.schema.project(indices)?;
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        Table::new(schema, columns)
    }

    /// Table with only the named attributes, in that order.
    pub fn project_names(&self, names: &[&str]) -> Result<Table> {
        let indices = self.schema.indices_of(names)?;
        self.project(&indices)
    }

    /// Table with the rows at `indices`, in that order (duplicates allowed).
    ///
    /// # Panics
    /// Panics when an index is out of bounds.
    pub fn take(&self, indices: &[usize]) -> Table {
        for &i in indices {
            assert!(i < self.n_rows, "row {i} out of bounds ({})", self.n_rows);
        }
        let columns = self.columns.iter().map(|c| c.gather(indices)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
            n_rows: indices.len(),
        }
    }

    /// Table with the rows for which `keep` returns true.
    pub fn filter(&self, mut keep: impl FnMut(usize) -> bool) -> Table {
        let indices: Vec<usize> = (0..self.n_rows).filter(|&i| keep(i)).collect();
        self.take(&indices)
    }

    /// Table with identifier attributes removed — the first masking step the
    /// paper prescribes ("the identifier attributes are completely removed").
    pub fn drop_identifiers(&self) -> Table {
        let keep: Vec<usize> = (0..self.schema.len())
            .filter(|&i| self.schema.attribute(i).role() != Role::Identifier)
            .collect();
        self.project(&keep).expect("indices are in range")
    }

    /// Table with column `index` replaced by `column`.
    ///
    /// The replacement must have the same length and a kind matching the
    /// schema. Used by generalization to swap a key column for its recoded
    /// version.
    pub fn with_column_replaced(&self, index: usize, column: Column) -> Result<Table> {
        let mut columns = self.columns.clone();
        if index >= columns.len() {
            return Err(Error::RowOutOfBounds {
                index,
                len: columns.len(),
            });
        }
        columns[index] = column;
        Table::new(self.schema.clone(), columns)
    }

    /// Concatenates two tables with identical schemas.
    pub fn concat(&self, other: &Table) -> Result<Table> {
        if self.schema != other.schema {
            return Err(Error::ArityMismatch {
                expected: self.schema.len(),
                found: other.schema.len(),
            });
        }
        // Gather is the only columnar append primitive we expose; build via
        // row indices into a virtual concatenation.
        let mut indices: Vec<usize> = (0..self.n_rows).collect();
        let mut tail: Vec<usize> = (0..other.n_rows).collect();
        let head = self.take(&indices.split_off(0));
        let tail = other.take(&tail.split_off(0));
        let mut columns = Vec::with_capacity(self.schema.len());
        for (a, b) in head.columns.into_iter().zip(tail.columns) {
            columns.push(append_columns(a, b));
        }
        Table::new(self.schema.clone(), columns)
    }
}

fn append_columns(a: Column, b: Column) -> Column {
    use crate::column::{CatColumn, IntColumn};
    match (a, b) {
        (Column::Int(x), Column::Int(y)) => {
            let mut out = IntColumn::new();
            for v in x.iter().chain(y.iter()) {
                match v {
                    Some(v) => out.push(v),
                    None => out.push_missing(),
                }
            }
            Column::Int(out)
        }
        (Column::Cat(x), Column::Cat(y)) => {
            let mut out = CatColumn::new();
            for v in x.iter() {
                match v {
                    Some(v) => out.push(v),
                    None => out.push_missing(),
                }
            }
            for v in y.iter() {
                match v {
                    Some(v) => out.push(v),
                    None => out.push_missing(),
                }
            }
            Column::Cat(out)
        }
        _ => unreachable!("schemas already validated equal"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{CatColumn, IntColumn};
    use crate::schema::Attribute;

    fn small_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_identifier("Name"),
            Attribute::int_key("Age"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::Cat(CatColumn::from_values(["Sam", "Gloria", "Adam"])),
                Column::Int(IntColumn::from_values([29, 38, 51])),
                Column::Cat(CatColumn::from_values(["Diabetes", "HIV", "Diabetes"])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_access() {
        let t = small_table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(1, 1), Value::Int(38));
        assert_eq!(
            t.row(2).unwrap(),
            vec![
                Value::Text("Adam".into()),
                Value::Int(51),
                Value::Text("Diabetes".into())
            ]
        );
        assert!(t.row(3).is_err());
    }

    #[test]
    fn kind_validation() {
        let schema = Schema::new(vec![Attribute::int_key("Age")]).unwrap();
        let result = Table::new(schema, vec![Column::Cat(CatColumn::from_values(["x"]))]);
        assert!(matches!(result, Err(Error::TypeMismatch { .. })));
    }

    #[test]
    fn length_validation() {
        let schema = Schema::new(vec![Attribute::int_key("A"), Attribute::int_key("B")]).unwrap();
        let result = Table::new(
            schema,
            vec![
                Column::Int(IntColumn::from_values([1, 2])),
                Column::Int(IntColumn::from_values([1])),
            ],
        );
        assert!(matches!(result, Err(Error::LengthMismatch { .. })));
    }

    #[test]
    fn arity_validation() {
        let schema = Schema::new(vec![Attribute::int_key("A")]).unwrap();
        let result = Table::new(schema, vec![]);
        assert!(matches!(result, Err(Error::ArityMismatch { .. })));
    }

    #[test]
    fn projection_by_name() {
        let t = small_table();
        let p = t.project_names(&["Illness", "Age"]).unwrap();
        assert_eq!(p.schema().attribute(0).name(), "Illness");
        assert_eq!(p.value(0, 1), Value::Int(29));
    }

    #[test]
    fn take_and_filter() {
        let t = small_table();
        let picked = t.take(&[2, 0]);
        assert_eq!(picked.n_rows(), 2);
        assert_eq!(picked.value(0, 0), Value::Text("Adam".into()));
        let filtered = t.filter(|i| t.value(i, 1).as_int().unwrap() > 30);
        assert_eq!(filtered.n_rows(), 2);
    }

    #[test]
    fn drop_identifiers_removes_names() {
        let t = small_table().drop_identifiers();
        assert_eq!(t.schema().len(), 2);
        assert!(t.schema().index_of("Name").is_err());
        assert_eq!(t.n_rows(), 3);
    }

    #[test]
    fn replace_column() {
        let t = small_table();
        let replaced = t
            .with_column_replaced(1, Column::Int(IntColumn::from_values([20, 30, 50])))
            .unwrap();
        assert_eq!(replaced.value(0, 1), Value::Int(20));
        // wrong kind rejected
        assert!(t
            .with_column_replaced(1, Column::Cat(CatColumn::from_values(["a", "b", "c"])))
            .is_err());
        // out of bounds rejected
        assert!(t
            .with_column_replaced(9, Column::Int(IntColumn::from_values([1, 2, 3])))
            .is_err());
    }

    #[test]
    fn concat_tables() {
        let t = small_table();
        let joined = t.concat(&t).unwrap();
        assert_eq!(joined.n_rows(), 6);
        assert_eq!(joined.value(5, 1), Value::Int(51));
        assert_eq!(joined.value(3, 0), Value::Text("Sam".into()));
    }

    #[test]
    fn empty_table() {
        let t = Table::empty(small_table().schema().clone());
        assert!(t.is_empty());
        assert_eq!(t.columns().len(), 3);
    }
}
