//! # psens-microdata
//!
//! In-memory columnar microdata tables — the relational substrate under the
//! `psens` p-sensitive k-anonymity library.
//!
//! The paper (Truta & Vinay, ICDE 2006) expresses its checks as SQL:
//! `GROUP BY` over the key attributes, `COUNT(*)` per group for k-anonymity,
//! `COUNT(DISTINCT S_j)` per group for p-sensitivity, and frequency sets
//! (Definition 4) for the necessary conditions. This crate implements that
//! engine from scratch:
//!
//! - [`Value`], [`Column`], [`Table`]: typed cells, dictionary-encoded
//!   categorical columns with validity bitmaps, immutable tables with cheap
//!   projection and row gathering.
//! - [`Schema`]/[`Attribute`]/[`Role`]: the paper's identifier / key /
//!   confidential attribute classification.
//! - [`GroupBy`]: exact (collision-free) grouping with per-group sizes and
//!   distinct counts.
//! - [`FrequencySet`]: Definition 4, plus descending and cumulative forms
//!   used by the paper's Condition 2.
//! - [`csv`]: RFC-4180 reader/writer, no external dependencies.
//!
//! ## Example
//!
//! ```
//! use psens_microdata::{Attribute, GroupBy, Schema, table_from_str_rows};
//!
//! // The paper's Table 1: patient microdata satisfying 2-anonymity.
//! let schema = Schema::new(vec![
//!     Attribute::int_key("Age"),
//!     Attribute::cat_key("ZipCode"),
//!     Attribute::cat_key("Sex"),
//!     Attribute::cat_confidential("Illness"),
//! ]).unwrap();
//! let table = table_from_str_rows(schema, &[
//!     &["50", "43102", "M", "Colon Cancer"],
//!     &["30", "43102", "F", "Breast Cancer"],
//!     &["30", "43102", "F", "HIV"],
//!     &["20", "43102", "M", "Diabetes"],
//!     &["20", "43102", "M", "Diabetes"],
//!     &["50", "43102", "M", "Heart Disease"],
//! ]).unwrap();
//!
//! let groups = GroupBy::compute(&table, &table.schema().key_indices());
//! assert_eq!(groups.min_group_size(), Some(2)); // 2-anonymous
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod builder;
mod chunked;
mod column;
pub mod csv;
mod delta;
mod describe;
mod dictionary;
mod display;
mod error;
mod freq;
mod groupby;
pub mod hash;
pub mod json;
pub mod morsel;
mod schema;
mod table;
mod value;

pub use bitmap::Bitmap;
pub use builder::{table_from_str_rows, TableBuilder};
pub use chunked::{
    assign_global_ids, chunk_parallel_map, first_appearances, scatter_global, ChunkedTable,
    DictionaryMerger, LocalCodes,
};
pub use column::{CatColumn, Column, IntColumn};
pub use delta::{DeltaBatch, IncrementalFrequency, RowMultiset};
pub use describe::{describe, describe_column, ColumnSummary};
pub use dictionary::Dictionary;
pub use display::render;
pub use error::{Error, Result};
pub use freq::FrequencySet;
pub use groupby::{CodeCombiner, GroupBy, RefinePass};
pub use json::{JsonError, JsonResult, JsonValue};
pub use morsel::{
    group_codes, group_codes_timed, resolve_threads, ChunkedKeyKernel, KeyKernel, PhaseTimings,
    DEFAULT_MORSEL_ROWS, DENSE_CAP,
};
pub use schema::{Attribute, Kind, Role, Schema};
pub use table::Table;
pub use value::Value;
