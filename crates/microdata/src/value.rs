//! Scalar values held by microdata cells.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// A single microdata cell.
///
/// Microdata attributes are either integral (ages, incomes, zip codes stored
/// numerically) or categorical text (diagnoses, marital status). Missing
/// values — Adult's `?` fields, or cells blanked by local suppression — are
/// first-class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Value {
    /// Absent / suppressed cell. Sorts before every present value.
    Missing,
    /// 64-bit signed integer.
    Int(i64),
    /// Categorical text.
    Text(String),
}

impl Value {
    /// Human-readable name of the value's kind, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Missing => "missing",
            Value::Int(_) => "integer",
            Value::Text(_) => "text",
        }
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the text payload, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True when the cell is [`Value::Missing`].
    pub fn is_missing(&self) -> bool {
        matches!(self, Value::Missing)
    }

    /// Renders the value the way the CSV writer emits it: integers in
    /// decimal, text verbatim, missing as the empty string.
    pub fn render(&self) -> Cow<'_, str> {
        match self {
            Value::Missing => Cow::Borrowed(""),
            Value::Int(v) => Cow::Owned(v.to_string()),
            Value::Text(s) => Cow::Borrowed(s),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Missing => f.write_str("·"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Missing, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from("HIV"), Value::Text("HIV".into()));
        assert_eq!(Value::from(String::from("x")), Value::Text("x".into()));
        assert_eq!(Value::from(None::<i64>), Value::Missing);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Text("a".into()).as_int(), None);
        assert_eq!(Value::Text("a".into()).as_text(), Some("a"));
        assert_eq!(Value::Int(5).as_text(), None);
        assert!(Value::Missing.is_missing());
        assert!(!Value::Int(0).is_missing());
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Missing.kind_name(), "missing");
        assert_eq!(Value::Int(1).kind_name(), "integer");
        assert_eq!(Value::Text(String::new()).kind_name(), "text");
    }

    #[test]
    fn rendering() {
        assert_eq!(Value::Missing.render(), "");
        assert_eq!(Value::Int(-3).render(), "-3");
        assert_eq!(Value::Text("Colon Cancer".into()).render(), "Colon Cancer");
        assert_eq!(Value::Missing.to_string(), "·");
    }

    #[test]
    fn ordering_puts_missing_first() {
        let mut values = vec![
            Value::Text("b".into()),
            Value::Int(2),
            Value::Missing,
            Value::Int(1),
            Value::Text("a".into()),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Missing,
                Value::Int(1),
                Value::Int(2),
                Value::Text("a".into()),
                Value::Text("b".into()),
            ]
        );
    }
}
