//! A small, dependency-free JSON reader/writer.
//!
//! The toolkit's file formats (dataset specs, run reports) are JSON; like
//! [`crate::csv`], the implementation is hand-rolled so the whole pipeline
//! builds and runs hermetically. The parser is a strict recursive-descent
//! reader over UTF-8 text (no trailing garbage, no comments, no NaN/Inf);
//! the writer escapes control characters and emits objects in insertion
//! order.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part or exponent, within `i64` range.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep insertion order (duplicates are rejected by the
    /// parser, last-write-wins when built programmatically via [`Self::set`]).
    Object(Vec<(String, JsonValue)>),
}

/// A JSON syntax or shape error, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input (parse errors only).
    pub offset: Option<usize>,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A shape error (no position): a value exists but has the wrong type or
    /// a required key is missing.
    pub fn shape(message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

/// Result alias for JSON operations.
pub type JsonResult<T> = std::result::Result<T, JsonError>;

impl JsonValue {
    /// Parses a complete JSON document (rejecting trailing content).
    pub fn parse(text: &str) -> JsonResult<JsonValue> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing content after JSON value"));
        }
        Ok(value)
    }

    /// The value under `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value under `key`, or a shape error naming the key.
    pub fn require(&self, key: &str) -> JsonResult<&JsonValue> {
        self.get(key)
            .ok_or_else(|| JsonError::shape(format!("missing key `{key}`")))
    }

    /// Inserts or replaces `key` (builder-style; objects only).
    ///
    /// # Panics
    /// Panics when called on a non-object.
    pub fn set(&mut self, key: impl Into<String>, value: JsonValue) -> &mut JsonValue {
        let JsonValue::Object(entries) = self else {
            panic!("JsonValue::set on a non-object");
        };
        let key = key.into();
        match entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => entries.push((key, value)),
        }
        self
    }

    /// An empty object, for builder-style construction.
    pub fn object() -> JsonValue {
        JsonValue::Object(Vec::new())
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> JsonResult<&str> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(JsonError::shape(format!("expected string, got {other:?}"))),
        }
    }

    /// The integer content, when this is an integral number.
    pub fn as_i64(&self) -> JsonResult<i64> {
        match self {
            JsonValue::Int(v) => Ok(*v),
            other => Err(JsonError::shape(format!("expected integer, got {other:?}"))),
        }
    }

    /// The integer content as `u64` (rejecting negatives).
    pub fn as_u64(&self) -> JsonResult<u64> {
        let v = self.as_i64()?;
        u64::try_from(v).map_err(|_| JsonError::shape(format!("expected non-negative, got {v}")))
    }

    /// The integer content as `usize` (rejecting negatives).
    pub fn as_usize(&self) -> JsonResult<usize> {
        let v = self.as_i64()?;
        usize::try_from(v).map_err(|_| JsonError::shape(format!("expected non-negative, got {v}")))
    }

    /// The boolean content, when this is a boolean.
    pub fn as_bool(&self) -> JsonResult<bool> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(JsonError::shape(format!("expected boolean, got {other:?}"))),
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> JsonResult<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(JsonError::shape(format!("expected array, got {other:?}"))),
        }
    }

    /// The entries, when this is an object.
    pub fn as_object(&self) -> JsonResult<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Ok(entries),
            other => Err(JsonError::shape(format!("expected object, got {other:?}"))),
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Int(v) => out.push_str(&v.to_string()),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // `{:?}` keeps a trailing `.0` so the value re-parses as
                    // a float, not an integer.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: Some(self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> JsonResult<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> JsonResult<JsonValue> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> JsonResult<JsonValue> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> JsonResult<JsonValue> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> JsonResult<JsonValue> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> JsonResult<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a maximal run of plain bytes in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> JsonResult<u32> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> JsonResult<JsonValue> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        self.digits()?;
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::Int(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn digits(&mut self) -> JsonResult<usize> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(JsonValue::parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(JsonValue::parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(
            JsonValue::parse("\"hi\"").unwrap(),
            JsonValue::Str("hi".into())
        );
    }

    #[test]
    fn parses_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.require("c").unwrap().as_str().unwrap(), "x");
        let a = v.require("a").unwrap().as_array().unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[0].as_i64().unwrap(), 1);
        assert_eq!(a[2].get("b"), Some(&JsonValue::Null));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\ back \u{1} unicode \u{1F600}";
        let mut v = JsonValue::object();
        v.set("s", JsonValue::Str(original.into()));
        let text = v.to_json_pretty();
        let back = JsonValue::parse(&text).unwrap();
        assert_eq!(back.require("s").unwrap().as_str().unwrap(), original);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{1F600}");
        assert!(JsonValue::parse(r#""\ud83d""#).is_err());
        assert!(JsonValue::parse(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "nul",
            "01x",
            "\"abc",
            "[1] trailing",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn pretty_output_reparses() {
        let mut report = JsonValue::object();
        report.set("name", JsonValue::Str("search".into()));
        report.set(
            "counts",
            JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(2)]),
        );
        report.set("nested", {
            let mut o = JsonValue::object();
            o.set("pi", JsonValue::Float(3.5));
            o.set("none", JsonValue::Null);
            o
        });
        let text = report.to_json_pretty();
        assert_eq!(JsonValue::parse(&text).unwrap(), report);
        // Compact form too.
        assert_eq!(JsonValue::parse(&report.to_json()).unwrap(), report);
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut v = JsonValue::object();
        v.set("k", JsonValue::Int(1));
        v.set("k", JsonValue::Int(2));
        assert_eq!(v.as_object().unwrap().len(), 1);
        assert_eq!(v.require("k").unwrap().as_i64().unwrap(), 2);
    }

    #[test]
    fn integer_boundaries() {
        assert_eq!(
            JsonValue::parse("9223372036854775807").unwrap(),
            JsonValue::Int(i64::MAX)
        );
        // Beyond i64: falls back to float rather than erroring.
        assert!(matches!(
            JsonValue::parse("9223372036854775808").unwrap(),
            JsonValue::Float(_)
        ));
        assert!(JsonValue::parse("18")
            .unwrap()
            .as_usize()
            .is_ok_and(|v| v == 18));
        assert!(JsonValue::parse("-1").unwrap().as_usize().is_err());
    }
}
