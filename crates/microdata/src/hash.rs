//! A fast, non-cryptographic hasher for internal hash maps.
//!
//! Group-by and dictionary lookups hash short fixed-width keys (interned
//! `u32` codes, `i64` values) millions of times, where SipHash's HashDoS
//! resistance costs real throughput. This module implements the same
//! multiply-xor scheme popularized by `rustc-hash` ("FxHash"): it folds each
//! input word into the state with a rotate, xor, and multiplication by a
//! constant derived from the golden ratio.
//!
//! All maps built on [`FxBuildHasher`] are private to this workspace and never
//! keyed by attacker-controlled data, so the weaker collision resistance is
//! acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit golden-ratio constant used to mix each word into the state.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Initial state for the multi-column key hashes of the morsel executor
/// (see [`crate::morsel`]). Any fixed odd-ish constant works; what matters
/// is that every caller seeds identically, so equal keys hash equal across
/// workers, morsel sizes, and runs.
pub const KEY_HASH_SEED: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

/// Folds one 64-bit key component into `state` — the seeded multiply-shift
/// scheme of [`FxHasher`], exposed as a free function so the morsel
/// executor's multi-column kernel can hash one column at a time over whole
/// row ranges without constructing a `Hasher` per row.
#[inline]
pub fn mix64(state: u64, word: u64) -> u64 {
    (state.rotate_left(5) ^ word).wrapping_mul(SEED)
}

/// Final avalanche (the splitmix64 finalizer): multiply-shift states have
/// weak high/low bits, and the morsel executor derives radix *partitions*
/// from bits of the hash, so every state is finished through this before
/// bits are extracted. Bijective — it cannot introduce collisions.
#[inline]
pub fn fmix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf_58_47_6d_1c_e4_e5_b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94_d0_49_bb_13_31_11_eb);
    x ^= x >> 31;
    x
}

/// Multiply-xor hasher compatible with `std::hash::Hasher`.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume full 8-byte words, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, b) in tail.iter().enumerate() {
                word |= u64::from(*b) << (8 * i);
            }
            // Mix in the tail length so "ab" and "ab\0" differ.
            self.add_to_hash(word ^ ((tail.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn different_inputs_hash_differently() {
        // Not guaranteed in general, but these simple cases must not collide.
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"ab"), hash_of(&"ba"));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&[1u32, 2][..]), hash_of(&[2u32, 1][..]));
    }

    #[test]
    fn tail_bytes_participate() {
        // Byte strings shorter than a word must still disperse.
        let a = hash_of(&b"abc".as_slice());
        let b = hash_of(&b"abd".as_slice());
        assert_ne!(a, b);
    }

    #[test]
    fn map_smoke_test() {
        let mut map: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert(vec![i, i * 2], i as usize);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&vec![10, 20]), Some(&10));
    }

    #[test]
    fn fmix64_is_deterministic_and_disperses_high_bits() {
        assert_eq!(fmix64(42), fmix64(42));
        // Partition selection reads high-ish bits (>> 32); consecutive
        // small keys — the worst case for multiply-shift states — must
        // spread across 8 buckets instead of piling into one.
        let mut buckets = [0usize; 8];
        for key in 0u64..4096 {
            buckets[((fmix64(mix64(KEY_HASH_SEED, key)) >> 32) & 7) as usize] += 1;
        }
        let expected = 4096 / 8;
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                count > expected / 4 && count < expected * 4,
                "bucket {i} got {count} of expected {expected}"
            );
        }
    }

    #[test]
    fn mix64_order_sensitive() {
        let ab = mix64(mix64(KEY_HASH_SEED, 1), 2);
        let ba = mix64(mix64(KEY_HASH_SEED, 2), 1);
        assert_ne!(ab, ba);
    }

    #[test]
    fn distribution_is_not_degenerate() {
        // Hash 4096 consecutive integers and check bucket spread over 64
        // buckets: no bucket should hold more than 4x the expected share.
        let mut buckets = [0usize; 64];
        for i in 0..4096u64 {
            buckets[(hash_of(&i) % 64) as usize] += 1;
        }
        let expected = 4096 / 64;
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                count < expected * 4,
                "bucket {i} got {count} of expected {expected}"
            );
        }
    }
}
