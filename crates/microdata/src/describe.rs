//! Per-column summary statistics — the quick profile a data holder inspects
//! before deciding roles, hierarchies, and thresholds.

use crate::column::Column;
use crate::table::Table;
use serde::Serialize;

/// Summary of one column.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ColumnSummary {
    /// Attribute name.
    pub name: String,
    /// Privacy role, rendered (`identifier`/`key`/`confidential`/`other`).
    pub role: String,
    /// Number of rows.
    pub rows: usize,
    /// Number of missing cells.
    pub missing: usize,
    /// Number of distinct values (missing counts once when present).
    pub distinct: usize,
    /// Minimum value (integers only).
    pub min: Option<i64>,
    /// Maximum value (integers only).
    pub max: Option<i64>,
    /// Mean of present values (integers only).
    pub mean: Option<f64>,
    /// Most frequent value and its count.
    pub top: Option<(String, usize)>,
}

/// Computes a [`ColumnSummary`] for every attribute of `table`.
pub fn describe(table: &Table) -> Vec<ColumnSummary> {
    (0..table.schema().len())
        .map(|idx| describe_column(table, idx))
        .collect()
}

/// Computes the summary of one attribute.
pub fn describe_column(table: &Table, index: usize) -> ColumnSummary {
    let attr = table.schema().attribute(index);
    let column = table.column(index);
    let rows = column.len();
    let missing = column.missing_count();
    let distinct = column.n_distinct();

    let (min, max, mean) = match column {
        Column::Int(ints) => {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            let mut sum = 0i128;
            let mut present = 0usize;
            for value in ints.iter().flatten() {
                lo = lo.min(value);
                hi = hi.max(value);
                sum += i128::from(value);
                present += 1;
            }
            if present == 0 {
                (None, None, None)
            } else {
                (Some(lo), Some(hi), Some(sum as f64 / present as f64))
            }
        }
        Column::Cat(_) => (None, None, None),
    };

    // Mode over dense codes (missing excluded from the mode).
    let top = {
        let (codes, n_distinct) = column.dense_codes();
        let mut counts = vec![0usize; n_distinct as usize];
        for (row, &code) in codes.iter().enumerate() {
            if !column.value(row).is_missing() {
                counts[code as usize] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &count)| count)
            .filter(|&(_, &count)| count > 0)
            .map(|(code, &count)| {
                let row = codes
                    .iter()
                    .position(|&c| c as usize == code)
                    .expect("code occurs");
                (column.value(row).to_string(), count)
            })
    };

    ColumnSummary {
        name: attr.name().to_owned(),
        role: attr.role().to_string(),
        rows,
        missing,
        distinct,
        min,
        max,
        mean,
        top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::schema::{Attribute, Schema};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["50", "Flu"],
                &["30", "Flu"],
                &["?", "HIV"],
                &["20", "?"],
                &["30", "Flu"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn int_summary() {
        let summary = describe_column(&table(), 0);
        assert_eq!(summary.name, "Age");
        assert_eq!(summary.role, "key");
        assert_eq!(summary.rows, 5);
        assert_eq!(summary.missing, 1);
        assert_eq!(summary.distinct, 4); // 50, 30, 20, missing
        assert_eq!(summary.min, Some(20));
        assert_eq!(summary.max, Some(50));
        assert!((summary.mean.unwrap() - 32.5).abs() < 1e-12);
        assert_eq!(summary.top, Some(("30".into(), 2)));
    }

    #[test]
    fn cat_summary() {
        let summary = describe_column(&table(), 1);
        assert_eq!(summary.role, "confidential");
        assert_eq!(summary.missing, 1);
        assert_eq!(summary.distinct, 3); // Flu, HIV, missing
        assert_eq!(summary.min, None);
        assert_eq!(summary.top, Some(("Flu".into(), 3)));
    }

    #[test]
    fn describe_covers_all_columns() {
        let summaries = describe(&table());
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].name, "Age");
        assert_eq!(summaries[1].name, "Illness");
    }

    #[test]
    fn empty_table_summary() {
        let t = table().filter(|_| false);
        let summary = describe_column(&t, 0);
        assert_eq!(summary.rows, 0);
        assert_eq!(summary.distinct, 0);
        assert_eq!(summary.min, None);
        assert_eq!(summary.top, None);
    }

    #[test]
    fn all_missing_column() {
        let schema = Schema::new(vec![Attribute::int_key("A")]).unwrap();
        let t = table_from_str_rows(schema, &[&["?"], &["?"]]).unwrap();
        let summary = describe_column(&t, 0);
        assert_eq!(summary.missing, 2);
        assert_eq!(summary.distinct, 1);
        assert_eq!(summary.mean, None);
        assert_eq!(summary.top, None);
    }
}
