//! RFC-4180 CSV reading and writing, implemented from scratch.
//!
//! The reader handles quoted fields, embedded quotes (`""`), embedded commas
//! and newlines, and both LF and CRLF line endings. Empty fields and the
//! Adult dataset's `?` marker parse as [`Value::Missing`].

use crate::builder::TableBuilder;
use crate::error::{Error, Result};
use crate::schema::{Kind, Schema};
use crate::table::Table;
use crate::value::Value;
use std::io::{BufRead, Write};

/// Splits raw CSV text into records of fields.
///
/// Returns one `Vec<String>` per record. Blank trailing lines are ignored.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    // `started` distinguishes "no record in progress" from "record with one
    // empty field" so trailing newlines do not emit phantom records.
    let mut started = false;

    while let Some(c) = chars.next() {
        match c {
            '"' => {
                started = true;
                if !field.is_empty() {
                    return Err(Error::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                // Quoted field: consume until the closing quote.
                let mut closed = false;
                while let Some(qc) = chars.next() {
                    match qc {
                        '"' => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                closed = true;
                                break;
                            }
                        }
                        '\n' => {
                            line += 1;
                            field.push('\n');
                        }
                        other => field.push(other),
                    }
                }
                if !closed {
                    return Err(Error::Csv {
                        line,
                        message: "unterminated quoted field".into(),
                    });
                }
                // Only a separator or end-of-record may follow a closing quote.
                match chars.peek() {
                    None | Some(',') | Some('\n') | Some('\r') => {}
                    Some(_) => {
                        return Err(Error::Csv {
                            line,
                            message: "data after closing quote".into(),
                        })
                    }
                }
            }
            ',' => {
                started = true;
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Only valid as part of CRLF.
                if chars.peek() == Some(&'\n') {
                    continue;
                }
                return Err(Error::Csv {
                    line,
                    message: "bare carriage return".into(),
                });
            }
            '\n' => {
                if started || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                started = false;
                line += 1;
            }
            other => {
                started = true;
                field.push(other);
            }
        }
    }
    if started || !field.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Reads a table with a known schema from CSV text.
///
/// When `has_header` is true the first record must list the schema's
/// attribute names in order. Integer columns parse their fields as `i64`;
/// empty fields and `?` become missing in either kind of column.
pub fn read_table_str(input: &str, schema: Schema, has_header: bool) -> Result<Table> {
    let records = parse_records(input)?;
    let mut iter = records.into_iter().enumerate();
    if has_header {
        let (_, header) = iter.next().ok_or(Error::Csv {
            line: 1,
            message: "missing header".into(),
        })?;
        if header.len() != schema.len() {
            return Err(Error::ArityMismatch {
                expected: schema.len(),
                found: header.len(),
            });
        }
        for (attr, name) in schema.attributes().iter().zip(&header) {
            if attr.name() != name.trim() {
                return Err(Error::Csv {
                    line: 1,
                    message: format!(
                        "header field `{}` does not match attribute `{}`",
                        name,
                        attr.name()
                    ),
                });
            }
        }
    }
    let mut builder = TableBuilder::new(schema.clone());
    for (record_idx, record) in iter {
        let line = record_idx + 1;
        if record.len() != schema.len() {
            return Err(Error::ArityMismatch {
                expected: schema.len(),
                found: record.len(),
            });
        }
        let mut row = Vec::with_capacity(record.len());
        for (i, raw) in record.iter().enumerate() {
            let attr = schema.attribute(i);
            let trimmed = raw.trim();
            let value = if trimmed.is_empty() || trimmed == "?" {
                Value::Missing
            } else {
                match attr.kind() {
                    Kind::Int => Value::Int(trimmed.parse::<i64>().map_err(|_| Error::Parse {
                        line,
                        attribute: attr.name().to_owned(),
                        text: raw.clone(),
                    })?),
                    Kind::Cat => Value::Text(trimmed.to_owned()),
                }
            };
            row.push(value);
        }
        builder.push_row(row)?;
    }
    Ok(builder.finish())
}

/// Reads a table from any buffered reader; see [`read_table_str`].
pub fn read_table<R: BufRead>(mut reader: R, schema: Schema, has_header: bool) -> Result<Table> {
    let mut input = String::new();
    reader.read_to_string(&mut input)?;
    read_table_str(&input, schema, has_header)
}

/// Reads a table with an *inferred* schema from headered CSV text.
///
/// Column kinds are inferred from the data: a column whose every present
/// field parses as `i64` becomes [`Kind::Int`], anything else [`Kind::Cat`].
/// All attributes get [`Role::Other`] — assign roles afterwards (e.g. via a
/// spec file) before running privacy checks.
pub fn read_table_infer(input: &str) -> Result<Table> {
    use crate::schema::{Attribute, Role};

    let records = parse_records(input)?;
    let mut iter = records.iter();
    let header = iter.next().ok_or(Error::Csv {
        line: 1,
        message: "missing header".into(),
    })?;
    let n_cols = header.len();
    let mut is_int = vec![true; n_cols];
    let mut any_present = vec![false; n_cols];
    for record in records.iter().skip(1) {
        if record.len() != n_cols {
            return Err(Error::ArityMismatch {
                expected: n_cols,
                found: record.len(),
            });
        }
        for (i, raw) in record.iter().enumerate() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed == "?" {
                continue;
            }
            any_present[i] = true;
            if trimmed.parse::<i64>().is_err() {
                is_int[i] = false;
            }
        }
    }
    let attributes: Vec<Attribute> = header
        .iter()
        .enumerate()
        .map(|(i, name)| {
            // Columns with no present value at all default to categorical.
            let kind = if is_int[i] && any_present[i] {
                Kind::Int
            } else {
                Kind::Cat
            };
            Attribute::new(name.trim(), kind, Role::Other)
        })
        .collect();
    read_table_str(input, Schema::new(attributes)?, true)
}

fn needs_quoting(field: &str) -> bool {
    field.chars().any(|c| matches!(c, ',' | '"' | '\n' | '\r'))
}

fn write_field<W: Write>(out: &mut W, field: &str) -> std::io::Result<()> {
    if needs_quoting(field) {
        out.write_all(b"\"")?;
        for c in field.chars() {
            if c == '"' {
                out.write_all(b"\"\"")?;
            } else {
                let mut buf = [0u8; 4];
                out.write_all(c.encode_utf8(&mut buf).as_bytes())?;
            }
        }
        out.write_all(b"\"")
    } else {
        out.write_all(field.as_bytes())
    }
}

/// Writes a table as CSV; missing cells become empty fields.
pub fn write_table<W: Write>(out: &mut W, table: &Table, with_header: bool) -> Result<()> {
    if with_header {
        for (i, attr) in table.schema().attributes().iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write_field(out, attr.name())?;
        }
        out.write_all(b"\n")?;
    }
    let single_column = table.schema().len() == 1;
    for row in 0..table.n_rows() {
        for col in 0..table.schema().len() {
            if col > 0 {
                out.write_all(b",")?;
            }
            let value = table.value(row, col);
            let rendered = value.render();
            // A single empty field would serialize to a blank line, which
            // readers (ours included) skip as no record at all; quote it so
            // the row survives the round trip.
            if single_column && rendered.is_empty() {
                out.write_all(b"\"\"")?;
            } else {
                write_field(out, &rendered)?;
            }
        }
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Renders a table to a CSV string; see [`write_table`].
pub fn to_csv_string(table: &Table, with_header: bool) -> String {
    let mut buf = Vec::new();
    write_table(&mut buf, table, with_header).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("City"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap()
    }

    #[test]
    fn parse_simple_records() {
        let records = parse_records("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(records, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parse_quoted_fields() {
        let records =
            parse_records("\"hello, world\",\"say \"\"hi\"\"\",\"multi\nline\"\n").unwrap();
        assert_eq!(
            records,
            vec![vec!["hello, world", "say \"hi\"", "multi\nline"]]
        );
    }

    #[test]
    fn parse_crlf_and_no_trailing_newline() {
        let records = parse_records("a,b\r\nc,d").unwrap();
        assert_eq!(records, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_empty_fields() {
        let records = parse_records(",\na,\n,b\n").unwrap();
        assert_eq!(records, vec![vec!["", ""], vec!["a", ""], vec!["", "b"]]);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_records("\"unterminated"),
            Err(Error::Csv { .. })
        ));
        assert!(matches!(parse_records("\"x\"y,z"), Err(Error::Csv { .. })));
        assert!(matches!(parse_records("a\rb"), Err(Error::Csv { .. })));
        assert!(matches!(parse_records("ab\"cd"), Err(Error::Csv { .. })));
    }

    #[test]
    fn read_with_header() {
        let input = "Age,City,Illness\n50,Newport,Colon Cancer\n?,Dayton,\n";
        let t = read_table_str(input, schema(), true).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(0, 0), Value::Int(50));
        assert_eq!(t.value(1, 0), Value::Missing);
        assert_eq!(t.value(1, 2), Value::Missing);
    }

    #[test]
    fn header_mismatch_rejected() {
        let input = "Age,Town,Illness\n50,Newport,X\n";
        assert!(matches!(
            read_table_str(input, schema(), true),
            Err(Error::Csv { .. })
        ));
    }

    #[test]
    fn bad_int_reports_line() {
        let input = "Age,City,Illness\n50,Newport,X\nold,Dayton,Y\n";
        match read_table_str(input, schema(), true) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_with_quoting_and_missing() {
        let input = "Age,City,Illness\n50,\"Newport, KY\",\"He said \"\"no\"\"\"\n,Dayton,HIV\n";
        let t = read_table_str(input, schema(), true).unwrap();
        let written = to_csv_string(&t, true);
        let t2 = read_table_str(&written, schema(), true).unwrap();
        assert_eq!(t, t2);
        assert!(written.contains("\"Newport, KY\""));
    }

    #[test]
    fn single_column_missing_rows_roundtrip() {
        // Regression: a lone empty field must not serialize to a blank line.
        let schema = Schema::new(vec![Attribute::cat_key("Only")]).unwrap();
        let t = read_table_str("Only\n\"\"\nx\n\"\"\n", schema.clone(), true).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(0, 0), Value::Missing);
        let written = to_csv_string(&t, true);
        let back = read_table_str(&written, schema, true).unwrap();
        assert_eq!(back, t);
        assert!(written.contains("\"\"\n"));
    }

    #[test]
    fn arity_mismatch_detected() {
        let input = "50,Newport\n";
        assert!(matches!(
            read_table_str(input, schema(), false),
            Err(Error::ArityMismatch { .. })
        ));
    }

    #[test]
    fn infer_schema_kinds() {
        let input = "Age,City,Note\n50,Newport,ok\n?,Dayton,\n30,Cold Spring,7\n";
        let t = read_table_infer(input).unwrap();
        assert_eq!(t.schema().attribute(0).kind(), crate::Kind::Int);
        assert_eq!(t.schema().attribute(1).kind(), crate::Kind::Cat);
        // "Note" mixes text and numbers: categorical.
        assert_eq!(t.schema().attribute(2).kind(), crate::Kind::Cat);
        assert_eq!(t.value(1, 0), Value::Missing);
        assert_eq!(t.value(2, 2), Value::Text("7".into()));
        // All roles default to Other.
        assert!(t.schema().key_indices().is_empty());
    }

    #[test]
    fn infer_all_missing_column_is_categorical() {
        let input = "A,B\n?,1\n,2\n";
        let t = read_table_infer(input).unwrap();
        assert_eq!(t.schema().attribute(0).kind(), crate::Kind::Cat);
        assert_eq!(t.schema().attribute(1).kind(), crate::Kind::Int);
    }

    #[test]
    fn infer_rejects_empty_input() {
        assert!(matches!(read_table_infer(""), Err(Error::Csv { .. })));
        assert!(matches!(
            read_table_infer("A,B\n1\n"),
            Err(Error::ArityMismatch { .. })
        ));
    }

    #[test]
    fn read_from_bufread() {
        let input = b"50,Newport,HIV\n" as &[u8];
        let t = read_table(input, schema(), false).unwrap();
        assert_eq!(t.n_rows(), 1);
    }
}
