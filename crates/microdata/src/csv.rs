//! RFC-4180 CSV reading and writing, implemented from scratch.
//!
//! The reader handles quoted fields, embedded quotes (`""`), embedded commas
//! and newlines, and both LF and CRLF line endings. Empty fields and the
//! Adult dataset's `?` marker parse as [`Value::Missing`].

use crate::builder::TableBuilder;
use crate::chunked::ChunkedTable;
use crate::error::{Error, Result};
use crate::schema::{Kind, Schema};
use crate::table::Table;
use crate::value::Value;
use std::io::{BufRead, Write};

/// Splits raw CSV text into records of fields.
///
/// Returns one `Vec<String>` per record. Blank trailing lines are ignored.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut line = 1usize;
    let mut chars = input.chars().peekable();
    // `started` distinguishes "no record in progress" from "record with one
    // empty field" so trailing newlines do not emit phantom records.
    let mut started = false;

    while let Some(c) = chars.next() {
        match c {
            '"' => {
                started = true;
                if !field.is_empty() {
                    return Err(Error::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                // Quoted field: consume until the closing quote.
                let mut closed = false;
                while let Some(qc) = chars.next() {
                    match qc {
                        '"' => {
                            if chars.peek() == Some(&'"') {
                                chars.next();
                                field.push('"');
                            } else {
                                closed = true;
                                break;
                            }
                        }
                        '\n' => {
                            line += 1;
                            field.push('\n');
                        }
                        other => field.push(other),
                    }
                }
                if !closed {
                    return Err(Error::Csv {
                        line,
                        message: "unterminated quoted field".into(),
                    });
                }
                // Only a separator or end-of-record may follow a closing quote.
                match chars.peek() {
                    None | Some(',') | Some('\n') | Some('\r') => {}
                    Some(_) => {
                        return Err(Error::Csv {
                            line,
                            message: "data after closing quote".into(),
                        })
                    }
                }
            }
            ',' => {
                started = true;
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Only valid as part of CRLF.
                if chars.peek() == Some(&'\n') {
                    continue;
                }
                return Err(Error::Csv {
                    line,
                    message: "bare carriage return".into(),
                });
            }
            '\n' => {
                if started || !field.is_empty() {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                started = false;
                line += 1;
            }
            other => {
                started = true;
                field.push(other);
            }
        }
    }
    if started || !field.is_empty() {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Reads a table with a known schema from CSV text.
///
/// When `has_header` is true the first record must list the schema's
/// attribute names in order. Integer columns parse their fields as `i64`;
/// empty fields and `?` become missing in either kind of column.
pub fn read_table_str(input: &str, schema: Schema, has_header: bool) -> Result<Table> {
    let records = parse_records(input)?;
    let mut iter = records.into_iter().enumerate();
    if has_header {
        let (_, header) = iter.next().ok_or(Error::Csv {
            line: 1,
            message: "missing header".into(),
        })?;
        validate_header(&header, &schema)?;
    }
    let mut builder = TableBuilder::new(schema.clone());
    for (record_idx, record) in iter {
        builder.push_row(parse_record_values(&record, &schema, record_idx + 1)?)?;
    }
    Ok(builder.finish())
}

/// Checks a header record against the schema's attribute names in order.
fn validate_header(header: &[String], schema: &Schema) -> Result<()> {
    if header.len() != schema.len() {
        return Err(Error::ArityMismatch {
            expected: schema.len(),
            found: header.len(),
        });
    }
    for (attr, name) in schema.attributes().iter().zip(header) {
        if attr.name() != name.trim() {
            return Err(Error::Csv {
                line: 1,
                message: format!(
                    "header field `{}` does not match attribute `{}`",
                    name,
                    attr.name()
                ),
            });
        }
    }
    Ok(())
}

/// Converts one data record's raw fields into typed row values; `line` is the
/// 1-based record number reported on parse failures.
fn parse_record_values(record: &[String], schema: &Schema, line: usize) -> Result<Vec<Value>> {
    if record.len() != schema.len() {
        return Err(Error::ArityMismatch {
            expected: schema.len(),
            found: record.len(),
        });
    }
    let mut row = Vec::with_capacity(record.len());
    for (i, raw) in record.iter().enumerate() {
        let attr = schema.attribute(i);
        let trimmed = raw.trim();
        let value = if trimmed.is_empty() || trimmed == "?" {
            Value::Missing
        } else {
            match attr.kind() {
                Kind::Int => Value::Int(trimmed.parse::<i64>().map_err(|_| Error::Parse {
                    line,
                    attribute: attr.name().to_owned(),
                    text: raw.clone(),
                })?),
                Kind::Cat => Value::Text(trimmed.to_owned()),
            }
        };
        row.push(value);
    }
    Ok(row)
}

/// Reads a table from any buffered reader; see [`read_table_str`].
pub fn read_table<R: BufRead>(mut reader: R, schema: Schema, has_header: bool) -> Result<Table> {
    let mut input = String::new();
    reader.read_to_string(&mut input)?;
    read_table_str(&input, schema, has_header)
}

/// Streaming CSV ingest: reads a [`ChunkedTable`] in bounded memory.
///
/// Semantically identical to `read_table` followed by
/// [`ChunkedTable::from_table`] — same records, same values, same per-chunk
/// dictionaries as a chunk-at-a-time build, and an error exactly when the
/// buffered reader errors (the *variant* may differ when a file holds several
/// errors: the stream reports the first one in document order, while the
/// buffered path surfaces all CSV syntax errors before any value error).
///
/// Unlike `read_table` it never buffers the whole input: the working set is
/// one 64 KiB read buffer, the record under construction, and the current
/// chunk of at most `chunk_rows` rows (clamped to at least 1). That bounds
/// ingest memory by the chunk size regardless of file size — the property the
/// CI `ulimit` smoke pins down.
pub fn read_chunked<R: BufRead>(
    mut reader: R,
    schema: Schema,
    has_header: bool,
    chunk_rows: usize,
) -> Result<ChunkedTable> {
    let mut out = ChunkedTable::new(schema.clone(), chunk_rows);
    let mut splitter = StreamSplitter::new();
    let mut sink = RecordSink::new(schema, has_header, out.chunk_rows());
    let mut buf = [0u8; 64 * 1024];
    // Up to 3 trailing bytes of a UTF-8 sequence split across reads.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let n = reader.read(&mut buf)?;
        if n == 0 {
            break;
        }
        if carry.is_empty() {
            feed_bytes(&buf[..n], &mut carry, &mut splitter, &mut sink, &mut out)?;
        } else {
            let mut joined = std::mem::take(&mut carry);
            joined.extend_from_slice(&buf[..n]);
            feed_bytes(&joined, &mut carry, &mut splitter, &mut sink, &mut out)?;
        }
    }
    if !carry.is_empty() {
        return Err(invalid_utf8());
    }
    if let Some(record) = splitter.finish()? {
        sink.consume(record, &mut out)?;
    }
    sink.finish(&mut out)?;
    Ok(out)
}

/// The error `BufRead::read_to_string` reports on malformed UTF-8, so the
/// streaming and buffered readers fail identically.
fn invalid_utf8() -> Error {
    Error::from(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        "stream did not contain valid UTF-8",
    ))
}

/// Decodes `bytes` as UTF-8 and feeds the characters through the splitter
/// into the sink. A trailing incomplete sequence is stashed in `carry`; an
/// invalid sequence is an error.
fn feed_bytes(
    bytes: &[u8],
    carry: &mut Vec<u8>,
    splitter: &mut StreamSplitter,
    sink: &mut RecordSink,
    out: &mut ChunkedTable,
) -> Result<()> {
    let text = match std::str::from_utf8(bytes) {
        Ok(text) => text,
        Err(e) => {
            if e.error_len().is_some() {
                return Err(invalid_utf8());
            }
            let (valid, rest) = bytes.split_at(e.valid_up_to());
            *carry = rest.to_vec();
            std::str::from_utf8(valid).expect("valid_up_to prefix is UTF-8")
        }
    };
    for c in text.chars() {
        if let Some(record) = splitter.feed(c)? {
            sink.consume(record, out)?;
        }
    }
    Ok(())
}

/// Where the incremental splitter is within the CSV grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SplitState {
    /// In an unquoted field (possibly empty, possibly at record start).
    Unquoted,
    /// Inside a quoted field.
    InQuotes,
    /// Inside a quoted field, one `"` seen: either the start of an escaped
    /// `""` or the field's closing quote.
    QuoteSeen,
    /// A `\r` seen outside quotes: only `\n` may follow.
    CrSeen,
}

/// Incremental record splitter — the streaming twin of [`parse_records`].
///
/// Feeding a document character by character yields exactly the records (and
/// exactly the errors, with the same line numbers) `parse_records` produces
/// on the whole text; the `csv_streaming` proptest suite pins this.
struct StreamSplitter {
    state: SplitState,
    field: String,
    record: Vec<String>,
    line: usize,
    /// Distinguishes "no record in progress" from "record with one empty
    /// field" so trailing newlines do not emit phantom records.
    started: bool,
}

impl StreamSplitter {
    fn new() -> StreamSplitter {
        StreamSplitter {
            state: SplitState::Unquoted,
            field: String::new(),
            record: Vec::new(),
            line: 1,
            started: false,
        }
    }

    fn err(&self, message: &str) -> Error {
        Error::Csv {
            line: self.line,
            message: message.into(),
        }
    }

    /// Ends the current record (on a newline or at end of input).
    fn end_record(&mut self) -> Option<Vec<String>> {
        if self.started || !self.field.is_empty() {
            self.record.push(std::mem::take(&mut self.field));
            self.started = false;
            Some(std::mem::take(&mut self.record))
        } else {
            None
        }
    }

    /// Consumes one character; returns a record when one just completed.
    fn feed(&mut self, c: char) -> Result<Option<Vec<String>>> {
        match self.state {
            SplitState::Unquoted => match c {
                '"' => {
                    self.started = true;
                    if !self.field.is_empty() {
                        return Err(self.err("quote inside unquoted field"));
                    }
                    self.state = SplitState::InQuotes;
                }
                ',' => {
                    self.started = true;
                    self.record.push(std::mem::take(&mut self.field));
                }
                '\r' => self.state = SplitState::CrSeen,
                '\n' => {
                    let record = self.end_record();
                    self.line += 1;
                    return Ok(record);
                }
                other => {
                    self.started = true;
                    self.field.push(other);
                }
            },
            SplitState::InQuotes => match c {
                '"' => self.state = SplitState::QuoteSeen,
                '\n' => {
                    self.line += 1;
                    self.field.push('\n');
                }
                other => self.field.push(other),
            },
            // The quote seen was either the first half of an escaped `""` or
            // the closing quote; only a separator may follow a closing quote.
            SplitState::QuoteSeen => match c {
                '"' => {
                    self.field.push('"');
                    self.state = SplitState::InQuotes;
                }
                ',' => {
                    self.record.push(std::mem::take(&mut self.field));
                    self.state = SplitState::Unquoted;
                }
                '\n' => {
                    self.state = SplitState::Unquoted;
                    let record = self.end_record();
                    self.line += 1;
                    return Ok(record);
                }
                '\r' => self.state = SplitState::CrSeen,
                _ => return Err(self.err("data after closing quote")),
            },
            SplitState::CrSeen => match c {
                '\n' => {
                    self.state = SplitState::Unquoted;
                    let record = self.end_record();
                    self.line += 1;
                    return Ok(record);
                }
                _ => return Err(self.err("bare carriage return")),
            },
        }
        Ok(None)
    }

    /// Signals end of input; returns the final unterminated record, if any.
    fn finish(&mut self) -> Result<Option<Vec<String>>> {
        match self.state {
            SplitState::InQuotes => Err(self.err("unterminated quoted field")),
            SplitState::CrSeen => Err(self.err("bare carriage return")),
            // A quote followed by end of input closed its field cleanly.
            SplitState::Unquoted | SplitState::QuoteSeen => Ok(self.end_record()),
        }
    }
}

/// Turns a stream of records into chunks: validates the header, parses rows
/// into a [`TableBuilder`], and flushes a chunk every `chunk_rows` rows.
struct RecordSink {
    schema: Schema,
    has_header: bool,
    chunk_rows: usize,
    builder: TableBuilder,
    record_idx: usize,
}

impl RecordSink {
    fn new(schema: Schema, has_header: bool, chunk_rows: usize) -> RecordSink {
        RecordSink {
            builder: TableBuilder::new(schema.clone()),
            schema,
            has_header,
            chunk_rows,
            record_idx: 0,
        }
    }

    fn consume(&mut self, record: Vec<String>, out: &mut ChunkedTable) -> Result<()> {
        let record_idx = self.record_idx;
        self.record_idx += 1;
        if record_idx == 0 && self.has_header {
            return validate_header(&record, &self.schema);
        }
        self.builder
            .push_row(parse_record_values(&record, &self.schema, record_idx + 1)?)?;
        if self.builder.n_rows() == self.chunk_rows {
            let full = std::mem::replace(&mut self.builder, TableBuilder::new(self.schema.clone()));
            out.push_chunk(full.finish());
        }
        Ok(())
    }

    fn finish(self, out: &mut ChunkedTable) -> Result<()> {
        if self.has_header && self.record_idx == 0 {
            return Err(Error::Csv {
                line: 1,
                message: "missing header".into(),
            });
        }
        if self.builder.n_rows() > 0 {
            out.push_chunk(self.builder.finish());
        }
        Ok(())
    }
}

/// Reads a table with an *inferred* schema from headered CSV text.
///
/// Column kinds are inferred from the data: a column whose every present
/// field parses as `i64` becomes [`Kind::Int`], anything else [`Kind::Cat`].
/// All attributes get [`Role::Other`] — assign roles afterwards (e.g. via a
/// spec file) before running privacy checks.
pub fn read_table_infer(input: &str) -> Result<Table> {
    use crate::schema::{Attribute, Role};

    let records = parse_records(input)?;
    let mut iter = records.iter();
    let header = iter.next().ok_or(Error::Csv {
        line: 1,
        message: "missing header".into(),
    })?;
    let n_cols = header.len();
    let mut is_int = vec![true; n_cols];
    let mut any_present = vec![false; n_cols];
    for record in records.iter().skip(1) {
        if record.len() != n_cols {
            return Err(Error::ArityMismatch {
                expected: n_cols,
                found: record.len(),
            });
        }
        for (i, raw) in record.iter().enumerate() {
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed == "?" {
                continue;
            }
            any_present[i] = true;
            if trimmed.parse::<i64>().is_err() {
                is_int[i] = false;
            }
        }
    }
    let attributes: Vec<Attribute> = header
        .iter()
        .enumerate()
        .map(|(i, name)| {
            // Columns with no present value at all default to categorical.
            let kind = if is_int[i] && any_present[i] {
                Kind::Int
            } else {
                Kind::Cat
            };
            Attribute::new(name.trim(), kind, Role::Other)
        })
        .collect();
    read_table_str(input, Schema::new(attributes)?, true)
}

fn needs_quoting(field: &str) -> bool {
    field.chars().any(|c| matches!(c, ',' | '"' | '\n' | '\r'))
}

fn write_field<W: Write>(out: &mut W, field: &str) -> std::io::Result<()> {
    if needs_quoting(field) {
        out.write_all(b"\"")?;
        for c in field.chars() {
            if c == '"' {
                out.write_all(b"\"\"")?;
            } else {
                let mut buf = [0u8; 4];
                out.write_all(c.encode_utf8(&mut buf).as_bytes())?;
            }
        }
        out.write_all(b"\"")
    } else {
        out.write_all(field.as_bytes())
    }
}

/// Writes a table as CSV; missing cells become empty fields.
pub fn write_table<W: Write>(out: &mut W, table: &Table, with_header: bool) -> Result<()> {
    if with_header {
        for (i, attr) in table.schema().attributes().iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write_field(out, attr.name())?;
        }
        out.write_all(b"\n")?;
    }
    let single_column = table.schema().len() == 1;
    for row in 0..table.n_rows() {
        for col in 0..table.schema().len() {
            if col > 0 {
                out.write_all(b",")?;
            }
            let value = table.value(row, col);
            let rendered = value.render();
            // A single empty field would serialize to a blank line, which
            // readers (ours included) skip as no record at all; quote it so
            // the row survives the round trip.
            if single_column && rendered.is_empty() {
                out.write_all(b"\"\"")?;
            } else {
                write_field(out, &rendered)?;
            }
        }
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Renders a table to a CSV string; see [`write_table`].
pub fn to_csv_string(table: &Table, with_header: bool) -> String {
    let mut buf = Vec::new();
    write_table(&mut buf, table, with_header).expect("writing to a Vec cannot fail");
    String::from_utf8(buf).expect("CSV output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("City"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap()
    }

    #[test]
    fn parse_simple_records() {
        let records = parse_records("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(records, vec![vec!["a", "b", "c"], vec!["1", "2", "3"]]);
    }

    #[test]
    fn parse_quoted_fields() {
        let records =
            parse_records("\"hello, world\",\"say \"\"hi\"\"\",\"multi\nline\"\n").unwrap();
        assert_eq!(
            records,
            vec![vec!["hello, world", "say \"hi\"", "multi\nline"]]
        );
    }

    #[test]
    fn parse_crlf_and_no_trailing_newline() {
        let records = parse_records("a,b\r\nc,d").unwrap();
        assert_eq!(records, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_empty_fields() {
        let records = parse_records(",\na,\n,b\n").unwrap();
        assert_eq!(records, vec![vec!["", ""], vec!["a", ""], vec!["", "b"]]);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_records("\"unterminated"),
            Err(Error::Csv { .. })
        ));
        assert!(matches!(parse_records("\"x\"y,z"), Err(Error::Csv { .. })));
        assert!(matches!(parse_records("a\rb"), Err(Error::Csv { .. })));
        assert!(matches!(parse_records("ab\"cd"), Err(Error::Csv { .. })));
    }

    #[test]
    fn read_with_header() {
        let input = "Age,City,Illness\n50,Newport,Colon Cancer\n?,Dayton,\n";
        let t = read_table_str(input, schema(), true).unwrap();
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.value(0, 0), Value::Int(50));
        assert_eq!(t.value(1, 0), Value::Missing);
        assert_eq!(t.value(1, 2), Value::Missing);
    }

    #[test]
    fn header_mismatch_rejected() {
        let input = "Age,Town,Illness\n50,Newport,X\n";
        assert!(matches!(
            read_table_str(input, schema(), true),
            Err(Error::Csv { .. })
        ));
    }

    #[test]
    fn bad_int_reports_line() {
        let input = "Age,City,Illness\n50,Newport,X\nold,Dayton,Y\n";
        match read_table_str(input, schema(), true) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_with_quoting_and_missing() {
        let input = "Age,City,Illness\n50,\"Newport, KY\",\"He said \"\"no\"\"\"\n,Dayton,HIV\n";
        let t = read_table_str(input, schema(), true).unwrap();
        let written = to_csv_string(&t, true);
        let t2 = read_table_str(&written, schema(), true).unwrap();
        assert_eq!(t, t2);
        assert!(written.contains("\"Newport, KY\""));
    }

    #[test]
    fn single_column_missing_rows_roundtrip() {
        // Regression: a lone empty field must not serialize to a blank line.
        let schema = Schema::new(vec![Attribute::cat_key("Only")]).unwrap();
        let t = read_table_str("Only\n\"\"\nx\n\"\"\n", schema.clone(), true).unwrap();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(0, 0), Value::Missing);
        let written = to_csv_string(&t, true);
        let back = read_table_str(&written, schema, true).unwrap();
        assert_eq!(back, t);
        assert!(written.contains("\"\"\n"));
    }

    #[test]
    fn arity_mismatch_detected() {
        let input = "50,Newport\n";
        assert!(matches!(
            read_table_str(input, schema(), false),
            Err(Error::ArityMismatch { .. })
        ));
    }

    #[test]
    fn infer_schema_kinds() {
        let input = "Age,City,Note\n50,Newport,ok\n?,Dayton,\n30,Cold Spring,7\n";
        let t = read_table_infer(input).unwrap();
        assert_eq!(t.schema().attribute(0).kind(), crate::Kind::Int);
        assert_eq!(t.schema().attribute(1).kind(), crate::Kind::Cat);
        // "Note" mixes text and numbers: categorical.
        assert_eq!(t.schema().attribute(2).kind(), crate::Kind::Cat);
        assert_eq!(t.value(1, 0), Value::Missing);
        assert_eq!(t.value(2, 2), Value::Text("7".into()));
        // All roles default to Other.
        assert!(t.schema().key_indices().is_empty());
    }

    #[test]
    fn infer_all_missing_column_is_categorical() {
        let input = "A,B\n?,1\n,2\n";
        let t = read_table_infer(input).unwrap();
        assert_eq!(t.schema().attribute(0).kind(), crate::Kind::Cat);
        assert_eq!(t.schema().attribute(1).kind(), crate::Kind::Int);
    }

    #[test]
    fn infer_rejects_empty_input() {
        assert!(matches!(read_table_infer(""), Err(Error::Csv { .. })));
        assert!(matches!(
            read_table_infer("A,B\n1\n"),
            Err(Error::ArityMismatch { .. })
        ));
    }

    #[test]
    fn read_from_bufread() {
        let input = b"50,Newport,HIV\n" as &[u8];
        let t = read_table(input, schema(), false).unwrap();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn read_chunked_matches_buffered_reader() {
        let input = "Age,City,Illness\n50,\"Newport, KY\",\"multi\nline\"\n?,Dayton,\n30,\"say \"\"hi\"\"\",Flu\n";
        let buffered = read_table_str(input, schema(), true).unwrap();
        for chunk_rows in [1usize, 2, 3, 100] {
            let chunked = read_chunked(input.as_bytes(), schema(), true, chunk_rows).unwrap();
            assert_eq!(chunked.to_table(), buffered, "chunk_rows={chunk_rows}");
            assert_eq!(
                chunked.n_chunks(),
                buffered.n_rows().div_ceil(chunk_rows),
                "chunk_rows={chunk_rows}"
            );
        }
    }

    #[test]
    fn read_chunked_without_header() {
        let chunked =
            read_chunked(&b"50,Newport,HIV\n20,Dayton,Flu\n"[..], schema(), false, 1).unwrap();
        assert_eq!(chunked.n_rows(), 2);
        assert_eq!(chunked.n_chunks(), 2);
    }

    #[test]
    fn read_chunked_errors_match_buffered_reader() {
        let bad_inputs = [
            "Age,City,Illness\n\"unterminated",
            "Age,City,Illness\n\"x\"y,a,b\n",
            "Age,City,Illness\na\rb,c,d\n",
            "Age,City,Illness\nab\"cd,e,f\n",
            "Age,Town,Illness\n50,Newport,X\n",
            "Age,City,Illness\nold,Dayton,Y\n",
            "Age,City\n50,Newport\n",
            "Age,City,Illness\n50,Newport\n",
            "",
        ];
        for input in bad_inputs {
            let buffered = read_table_str(input, schema(), true);
            let streamed = read_chunked(input.as_bytes(), schema(), true, 4);
            assert!(buffered.is_err(), "buffered accepted {input:?}");
            assert!(streamed.is_err(), "streamed accepted {input:?}");
        }
    }

    #[test]
    fn read_chunked_reports_bad_int_record_number() {
        let input = "Age,City,Illness\n50,Newport,X\nold,Dayton,Y\n";
        match read_chunked(input.as_bytes(), schema(), true, 4) {
            Err(Error::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn read_chunked_rejects_invalid_utf8() {
        let bytes: &[u8] = b"Age,City,Illness\n50,New\xffport,X\n";
        assert!(matches!(
            read_chunked(bytes, schema(), true, 4),
            Err(Error::Io(_))
        ));
        // A sequence truncated by end of input is also invalid.
        let truncated: &[u8] = b"Age,City,Illness\n50,Newport,X\n\xe2\x82";
        assert!(matches!(
            read_chunked(truncated, schema(), true, 4),
            Err(Error::Io(_))
        ));
    }

    #[test]
    fn read_chunked_handles_multibyte_split_across_reads() {
        // A 1-byte BufRead forces every multi-byte sequence to straddle a
        // read boundary, exercising the UTF-8 carry.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.0.len().min(1).min(buf.len());
                buf[..n].copy_from_slice(&self.0[..n]);
                self.0 = &self.0[n..];
                Ok(n)
            }
        }
        impl std::io::BufRead for OneByte<'_> {
            fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
                Ok(self.0)
            }
            fn consume(&mut self, amt: usize) {
                self.0 = &self.0[amt..];
            }
        }
        let input = "Age,City,Illness\n50,Zürich,Grippe\n";
        let chunked = read_chunked(OneByte(input.as_bytes()), schema(), true, 4).unwrap();
        assert_eq!(
            chunked.to_table(),
            read_table_str(input, schema(), true).unwrap()
        );
    }
}
