//! ASCII rendering of tables, for examples, the CLI, and the experiment
//! harness that regenerates the paper's tables.

use crate::table::Table;

/// Renders a table as an aligned ASCII grid with a header rule.
///
/// At most `max_rows` rows are shown; a `... (N more rows)` marker follows
/// when the table is longer.
pub fn render(table: &Table, max_rows: usize) -> String {
    let n_cols = table.schema().len();
    let shown = table.n_rows().min(max_rows);

    let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown + 1);
    cells.push(
        table
            .schema()
            .attributes()
            .iter()
            .map(|a| a.name().to_owned())
            .collect(),
    );
    for row in 0..shown {
        cells.push(
            (0..n_cols)
                .map(|col| table.value(row, col).to_string())
                .collect(),
        );
    }

    let mut widths = vec![0usize; n_cols];
    for row in &cells {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    for (r, row) in cells.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            // Right-pad all but the last column.
            if i + 1 < n_cols {
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1));
            for _ in 0..total {
                out.push('-');
            }
            out.push('\n');
        }
    }
    if table.n_rows() > shown {
        out.push_str(&format!("... ({} more rows)\n", table.n_rows() - shown));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::schema::{Attribute, Schema};

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[&["50", "Colon Cancer"], &["30", "HIV"], &["20", "Diabetes"]],
        )
        .unwrap()
    }

    #[test]
    fn renders_header_and_rows() {
        let out = render(&sample(), 10);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5); // header, rule, 3 rows
        assert!(lines[0].starts_with("Age"));
        assert!(lines[0].contains("Illness"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("Colon Cancer"));
    }

    #[test]
    fn truncates_long_tables() {
        let out = render(&sample(), 2);
        assert!(out.contains("(1 more rows)"));
        assert!(!out.contains("Diabetes"));
    }

    #[test]
    fn columns_align() {
        let out = render(&sample(), 10);
        let lines: Vec<&str> = out.lines().collect();
        // "Illness" column starts at the same byte offset in every data line.
        let offset = lines[0].find("Illness").unwrap();
        assert_eq!(lines[2].find("Colon Cancer").unwrap(), offset);
        assert_eq!(lines[3].find("HIV").unwrap(), offset);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = sample().filter(|_| false);
        let out = render(&t, 10);
        assert_eq!(out.lines().count(), 2);
    }
}
