//! Columnar storage: integer and dictionary-encoded categorical columns.

use crate::bitmap::Bitmap;
use crate::dictionary::Dictionary;
use crate::hash::FxHashMap;
use crate::value::Value;

/// An integer column with a validity bitmap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntColumn {
    values: Vec<i64>,
    validity: Bitmap,
}

impl IntColumn {
    /// Creates an empty integer column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a column from present values.
    pub fn from_values<I: IntoIterator<Item = i64>>(values: I) -> Self {
        let values: Vec<i64> = values.into_iter().collect();
        let validity = Bitmap::filled(values.len(), true);
        IntColumn { values, validity }
    }

    /// Builds a column from raw parts: values (missing rows hold the
    /// canonical `0` placeholder) and a validity bitmap of the same length.
    pub(crate) fn from_parts(values: Vec<i64>, validity: Bitmap) -> Self {
        assert_eq!(
            values.len(),
            validity.len(),
            "values and validity must have equal length"
        );
        IntColumn { values, validity }
    }

    /// Appends a present value.
    pub fn push(&mut self, value: i64) {
        self.values.push(value);
        self.validity.push(true);
    }

    /// Appends a missing cell.
    pub fn push_missing(&mut self) {
        self.values.push(0);
        self.validity.push(false);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads row `row`, `None` for missing.
    pub fn get(&self, row: usize) -> Option<i64> {
        self.validity.get(row).then(|| self.values[row])
    }

    /// Iterates rows as `Option<i64>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<i64>> + '_ {
        (0..self.len()).map(move |row| self.get(row))
    }

    /// Raw value slice; missing rows hold an unspecified placeholder.
    pub fn raw_values(&self) -> &[i64] {
        &self.values
    }

    /// Validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }
}

/// A categorical column: `u32` codes into a per-column [`Dictionary`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CatColumn {
    dict: Dictionary,
    codes: Vec<u32>,
    validity: Bitmap,
}

impl CatColumn {
    /// Creates an empty categorical column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a column from present string values.
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut col = CatColumn::new();
        for v in values {
            col.push(v.as_ref());
        }
        col
    }

    /// Creates a column reusing an existing dictionary and raw codes.
    ///
    /// Used by generalization, which recodes leaf codes into ancestor codes.
    ///
    /// # Panics
    /// Panics when any code is out of range for `dict`.
    pub fn from_codes(dict: Dictionary, codes: Vec<u32>) -> Self {
        for &code in &codes {
            assert!(
                (code as usize) < dict.len(),
                "code {code} out of range for dictionary of {}",
                dict.len()
            );
        }
        let validity = Bitmap::filled(codes.len(), true);
        CatColumn {
            dict,
            codes,
            validity,
        }
    }

    /// Builds a column from raw parts. Unlike [`CatColumn::from_codes`],
    /// missing rows are allowed: they hold the canonical `0` placeholder and
    /// a cleared validity bit. Only the codes of *valid* rows are checked
    /// against the dictionary.
    pub(crate) fn from_parts(dict: Dictionary, codes: Vec<u32>, validity: Bitmap) -> Self {
        assert_eq!(
            codes.len(),
            validity.len(),
            "codes and validity must have equal length"
        );
        for (row, &code) in codes.iter().enumerate() {
            assert!(
                !validity.get(row) || (code as usize) < dict.len(),
                "code {code} out of range for dictionary of {}",
                dict.len()
            );
        }
        CatColumn {
            dict,
            codes,
            validity,
        }
    }

    /// Appends a present value, interning it.
    pub fn push(&mut self, text: &str) {
        let code = self.dict.intern(text);
        self.codes.push(code);
        self.validity.push(true);
    }

    /// Appends a missing cell.
    pub fn push_missing(&mut self) {
        self.codes.push(0);
        self.validity.push(false);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Reads row `row` as text, `None` for missing.
    pub fn get(&self, row: usize) -> Option<&str> {
        self.validity
            .get(row)
            .then(|| self.dict.text(self.codes[row]).expect("valid code"))
    }

    /// Reads the raw dictionary code at `row`, `None` for missing.
    pub fn code_at(&self, row: usize) -> Option<u32> {
        self.validity.get(row).then(|| self.codes[row])
    }

    /// The column's dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Raw code slice; missing rows hold an unspecified placeholder.
    pub fn raw_codes(&self) -> &[u32] {
        &self.codes
    }

    /// Validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Iterates rows as `Option<&str>`.
    pub fn iter(&self) -> impl Iterator<Item = Option<&str>> + '_ {
        (0..self.len()).map(move |row| self.get(row))
    }
}

/// A column of either kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Column {
    /// Integer data.
    Int(IntColumn),
    /// Categorical data.
    Cat(CatColumn),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(c) => c.len(),
            Column::Cat(c) => c.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads a cell as a [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(c) => c.get(row).map_or(Value::Missing, Value::Int),
            Column::Cat(c) => c
                .get(row)
                .map_or(Value::Missing, |s| Value::Text(s.to_owned())),
        }
    }

    /// Number of rows with missing cells.
    pub fn missing_count(&self) -> usize {
        let validity = match self {
            Column::Int(c) => c.validity(),
            Column::Cat(c) => c.validity(),
        };
        validity.len() - validity.count_ones()
    }

    /// Computes dense group codes for this column.
    ///
    /// Returns `(codes, n_distinct)` where each present value maps to a dense
    /// code in `0..n_distinct` assigned in first-occurrence order and, when
    /// missing cells exist, they share the final code `n_distinct - 1`.
    /// Two rows receive equal codes iff their cells are equal (missing cells
    /// compare equal to each other).
    pub fn dense_codes(&self) -> (Vec<u32>, u32) {
        match self {
            Column::Int(c) => {
                let mut map: FxHashMap<i64, u32> = FxHashMap::default();
                let mut codes = Vec::with_capacity(c.len());
                let mut missing_code: Option<u32> = None;
                let mut next = 0u32;
                for row in 0..c.len() {
                    let code = match c.get(row) {
                        Some(v) => *map.entry(v).or_insert_with(|| {
                            let code = next;
                            next += 1;
                            code
                        }),
                        None => *missing_code.get_or_insert_with(|| {
                            let code = next;
                            next += 1;
                            code
                        }),
                    };
                    codes.push(code);
                }
                (codes, next)
            }
            Column::Cat(c) => {
                // Dictionary codes are already dense over interned entries but
                // may include entries with zero occurrences after recoding, so
                // re-densify to keep `n_distinct` exact.
                let mut map: FxHashMap<u32, u32> = FxHashMap::default();
                let mut codes = Vec::with_capacity(c.len());
                let mut missing_code: Option<u32> = None;
                let mut next = 0u32;
                for row in 0..c.len() {
                    let code = match c.code_at(row) {
                        Some(raw) => *map.entry(raw).or_insert_with(|| {
                            let code = next;
                            next += 1;
                            code
                        }),
                        None => *missing_code.get_or_insert_with(|| {
                            let code = next;
                            next += 1;
                            code
                        }),
                    };
                    codes.push(code);
                }
                (codes, next)
            }
        }
    }

    /// Number of distinct values in the column; missing cells count as one
    /// shared value when present.
    pub fn n_distinct(&self) -> usize {
        self.dense_codes().1 as usize
    }

    /// Builds a copy of the column with the cells at `rows` blanked to
    /// missing — the primitive under cell-level (local) suppression.
    ///
    /// # Panics
    /// Panics when a row index is out of bounds.
    pub fn with_missing(&self, rows: &[usize]) -> Column {
        let mut out = self.clone();
        match &mut out {
            Column::Int(c) => {
                for &row in rows {
                    c.validity.set(row, false);
                }
            }
            Column::Cat(c) => {
                for &row in rows {
                    c.validity.set(row, false);
                }
            }
        }
        out
    }

    /// Builds a new column selecting `indices` rows, in order.
    pub fn gather(&self, indices: &[usize]) -> Column {
        match self {
            Column::Int(c) => {
                let mut out = IntColumn::new();
                for &i in indices {
                    match c.get(i) {
                        Some(v) => out.push(v),
                        None => out.push_missing(),
                    }
                }
                Column::Int(out)
            }
            Column::Cat(c) => {
                // Reuse the dictionary; only codes are gathered.
                let mut codes = Vec::with_capacity(indices.len());
                let mut validity = Bitmap::new();
                for &i in indices {
                    codes.push(c.codes[i]);
                    validity.push(c.validity.get(i));
                }
                Column::Cat(CatColumn {
                    dict: c.dict.clone(),
                    codes,
                    validity,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_column_roundtrip() {
        let mut col = IntColumn::new();
        col.push(10);
        col.push_missing();
        col.push(-5);
        assert_eq!(col.len(), 3);
        assert_eq!(col.get(0), Some(10));
        assert_eq!(col.get(1), None);
        assert_eq!(col.get(2), Some(-5));
        let collected: Vec<_> = col.iter().collect();
        assert_eq!(collected, vec![Some(10), None, Some(-5)]);
    }

    #[test]
    fn cat_column_roundtrip() {
        let mut col = CatColumn::new();
        col.push("HIV");
        col.push("Diabetes");
        col.push_missing();
        col.push("HIV");
        assert_eq!(col.len(), 4);
        assert_eq!(col.get(0), Some("HIV"));
        assert_eq!(col.get(2), None);
        assert_eq!(col.code_at(0), col.code_at(3));
        assert_eq!(col.dictionary().len(), 2);
    }

    #[test]
    fn column_value_accessor() {
        let col = Column::Cat(CatColumn::from_values(["a", "b"]));
        assert_eq!(col.value(1), Value::Text("b".into()));
        let col = Column::Int(IntColumn::from_values([1, 2]));
        assert_eq!(col.value(0), Value::Int(1));
    }

    #[test]
    fn dense_codes_int() {
        let mut col = IntColumn::new();
        for v in [30, 20, 30, 50] {
            col.push(v);
        }
        col.push_missing();
        col.push_missing();
        let (codes, n) = Column::Int(col).dense_codes();
        assert_eq!(codes, vec![0, 1, 0, 2, 3, 3]);
        assert_eq!(n, 4);
    }

    #[test]
    fn dense_codes_cat_redensifies() {
        // Dictionary has 3 entries but only 2 occur in the data.
        let mut dict = Dictionary::new();
        dict.intern("a");
        dict.intern("b");
        dict.intern("c");
        let col = CatColumn::from_codes(dict, vec![2, 0, 2]);
        let (codes, n) = Column::Cat(col).dense_codes();
        assert_eq!(codes, vec![0, 1, 0]);
        assert_eq!(n, 2);
    }

    #[test]
    fn n_distinct_counts_missing_once() {
        let mut col = IntColumn::new();
        col.push(1);
        col.push_missing();
        col.push_missing();
        assert_eq!(Column::Int(col).n_distinct(), 2);
    }

    #[test]
    fn missing_count() {
        let mut col = CatColumn::new();
        col.push("x");
        col.push_missing();
        assert_eq!(Column::Cat(col).missing_count(), 1);
    }

    #[test]
    fn gather_preserves_values_and_missing() {
        let mut int = IntColumn::new();
        int.push(1);
        int.push_missing();
        int.push(3);
        let col = Column::Int(int);
        let picked = col.gather(&[2, 1, 0, 2]);
        assert_eq!(picked.value(0), Value::Int(3));
        assert_eq!(picked.value(1), Value::Missing);
        assert_eq!(picked.value(3), Value::Int(3));
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn with_missing_blanks_cells() {
        let col = Column::Int(IntColumn::from_values([1, 2, 3]));
        let blanked = col.with_missing(&[0, 2]);
        assert_eq!(blanked.value(0), Value::Missing);
        assert_eq!(blanked.value(1), Value::Int(2));
        assert_eq!(blanked.value(2), Value::Missing);
        assert_eq!(blanked.missing_count(), 2);
        // Original untouched; empty row list is a plain copy.
        assert_eq!(col.missing_count(), 0);
        assert_eq!(col.with_missing(&[]), col);
        let cat = Column::Cat(CatColumn::from_values(["a", "b"]));
        assert_eq!(cat.with_missing(&[1]).value(1), Value::Missing);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_codes_validates() {
        let dict = Dictionary::from_entries(["only"]);
        CatColumn::from_codes(dict, vec![0, 1]);
    }
}
