//! Morsel-driven, hash-partitioned parallel group-by executor.
//!
//! The PR 5 chunked group-by assigned one table chunk per scoped thread and
//! merged the per-chunk group tables on the calling thread. BENCH_5 showed
//! the merge dominating: every thread's output is re-keyed and re-scattered
//! serially, so adding threads made 1M–10M row group-bys *slower*. This
//! module replaces that design with the two-phase scheme used by
//! morsel-driven engines:
//!
//! 1. **Partition.** Workers pull fixed-size row-range *morsels* from a
//!    shared atomic cursor — no static chunk-per-thread assignment, so a
//!    slow worker never strands work. Each row's key is reduced to either a
//!    dense fused code (when the product of per-column domains fits
//!    [`DENSE_CAP`]) or a seeded multiply-shift hash, and the row is written
//!    into a per-worker, per-partition buffer. With `P =
//!    next_pow2(threads)` partitions chosen by high hash bits, no two
//!    workers ever touch the same buffer: zero cross-thread contention.
//! 2. **Build.** Each partition now holds *all* rows of every group that
//!    hashes into it, scattered across the per-worker buffers. Workers each
//!    claim a disjoint set of partitions and build that partition's group
//!    table locally (a dense radix table or a hash map with exact-key
//!    verification). The "merge" is a trivial concatenation of per-partition
//!    group counts.
//!
//! A final serial pass restores the *canonical* ids: every group records the
//! minimum global row index among its members, and groups are ranked by that
//! first appearance. Because group membership depends only on exact key
//! equality and a minimum is order-independent, the output is byte-identical
//! to the serial single-pass group-by for **any** thread count and morsel
//! size — the differential oracle in `tests/chunked_equivalence.rs` pins
//! this.
//!
//! Fault isolation keeps the PR 4 contract: each morsel runs under
//! `catch_unwind`; a panicking morsel's partial buffer writes are rolled
//! back and the morsel re-runs serially after the parallel phase (a second
//! panic propagates). Phases 2 and 3 inherit the same contract from
//! [`chunk_parallel_map`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::bitmap::Bitmap;
use crate::chunked::{chunk_parallel_map, ChunkedTable};
use crate::column::Column;
use crate::hash::{fmix64, mix64, FxHashMap, KEY_HASH_SEED};

/// Upper bound on the product of per-column key domains for the dense radix
/// path. Below this, every distinct key fuses injectively into one `u32` and
/// the per-partition group table is a flat array; above it, keys are hashed
/// and verified by exact comparison. 2^20 entries × 4 bytes = 4 MiB per
/// in-flight partition table.
pub const DENSE_CAP: u64 = 1 << 20;

/// Default number of rows per morsel. Small enough that 8 workers get
/// hundreds of steal opportunities on a 10M-row table, large enough that the
/// atomic cursor `fetch_add` is noise (one per 16Ki rows).
pub const DEFAULT_MORSEL_ROWS: usize = 16_384;

/// Resolves a requested thread count: `0` means "one worker per available
/// core" via [`std::thread::available_parallelism`] (1 if the parallelism
/// cannot be queried); any other value is clamped to the available
/// parallelism. Every `threads` parameter in the workspace — CLI
/// `--threads`, `Tuning::threads`, the chunked operators — is resolved
/// through this function so `0` and oversubscribed requests behave
/// identically everywhere.
///
/// The clamp exists because oversubscription is a measured regression, not a
/// no-op: BENCH_6 recorded `--threads 8` on a 1-core host running group-by
/// at 0.60–0.74x of `threads=1` (eight workers time-slicing one core pay
/// for partitioning and merge without any parallel build). Requests beyond
/// the hardware degrade gracefully to the widest useful worker count; the
/// requested figure is still reported alongside the effective one in
/// `SearchStats`, so a clamped run is visible in reports rather than
/// silent.
pub fn resolve_threads(requested: usize) -> usize {
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    match requested {
        0 => available,
        n => n.min(available),
    }
}

/// Wall-clock time spent in each phase of one executor run, for the
/// BENCH_6 per-phase breakdown.
#[derive(Debug, Default, Clone, Copy)]
pub struct PhaseTimings {
    /// Phase 1: morsel pull, key materialization, radix partition write.
    pub partition: Duration,
    /// Phase 2: per-partition local group-table build.
    pub build: Duration,
    /// Canonical re-ordering plus the final id scatter.
    pub reorder: Duration,
}

/// A source of per-row grouping keys for the morsel executor.
///
/// The executor is generic over *where* keys come from — chunked tables
/// ([`ChunkedKeyKernel`]), the evaluator's mapped per-node code columns, or
/// test harnesses that inject faults. Implementations must be deterministic:
/// the same row must always produce the same key, and `rows_equal` must be
/// the exact key-equality relation (hash collisions across unequal rows are
/// handled by the executor; disagreement between `fill_*` on equal rows is
/// not).
pub trait KeyKernel: Sync {
    /// Total number of rows.
    fn n_rows(&self) -> usize;

    /// When every distinct key fuses injectively into a `u32` below
    /// [`DENSE_CAP`], the (exclusive) bound on fused codes; `None` selects
    /// the hashed path.
    fn dense_product(&self) -> Option<u32>;

    /// Writes the fused dense code of rows `start..start + out.len()` into
    /// `out`. Only called when [`Self::dense_product`] is `Some`.
    fn fill_dense(&self, start: usize, out: &mut [u32]);

    /// Writes a well-mixed 64-bit key hash of rows `start..start +
    /// out.len()` into `out`. Equal rows must hash equal; unequal rows may
    /// collide (the executor verifies with [`Self::rows_equal`]).
    fn fill_hashed(&self, start: usize, out: &mut [u64]);

    /// Exact key equality between two rows. Only called on the hashed path.
    fn rows_equal(&self, a: usize, b: usize) -> bool;
}

/// One partitioned row: its global index and its key (dense code or hash).
type Entry<K> = (u32, K);

/// One worker's output: a buffer of entries per partition.
type Bufs<K> = Vec<Vec<Entry<K>>>;

/// Computes the canonical group assignment of every row under `kernel`'s
/// key relation: `(assignment, n_groups)` where ids are dense and ordered
/// by first appearance, exactly as the serial group-by numbers them.
///
/// `threads` is resolved through [`resolve_threads`]; `morsel_rows == 0`
/// selects [`DEFAULT_MORSEL_ROWS`].
pub fn group_codes<K: KeyKernel + ?Sized>(
    kernel: &K,
    threads: usize,
    morsel_rows: usize,
) -> (Vec<u32>, u32) {
    group_codes_timed(kernel, threads, morsel_rows).0
}

/// [`group_codes`], also returning the per-phase wall-clock breakdown.
pub fn group_codes_timed<K: KeyKernel + ?Sized>(
    kernel: &K,
    threads: usize,
    morsel_rows: usize,
) -> ((Vec<u32>, u32), PhaseTimings) {
    let n = kernel.n_rows();
    let mut timings = PhaseTimings::default();
    if n == 0 {
        return ((Vec::new(), 0), timings);
    }
    let threads = resolve_threads(threads).max(1);
    let morsel_rows = if morsel_rows == 0 {
        DEFAULT_MORSEL_ROWS
    } else {
        morsel_rows
    };
    let p_count = threads.next_power_of_two();
    let result = match kernel.dense_product() {
        Some(product) => execute(
            n,
            threads,
            p_count,
            morsel_rows,
            &mut timings,
            |start, out: &mut [u32]| kernel.fill_dense(start, out),
            |key| ((fmix64(u64::from(key)) >> 32) as usize) & (p_count - 1),
            |entries| build_dense(product, entries),
        ),
        None => execute(
            n,
            threads,
            p_count,
            morsel_rows,
            &mut timings,
            |start, out: &mut [u64]| kernel.fill_hashed(start, out),
            |hash| ((hash >> 32) as usize) & (p_count - 1),
            |entries| build_hashed(kernel, entries),
        ),
    };
    (result, timings)
}

/// One partition's local group table: per-entry group ids (aligned with the
/// concatenation of the partition's buffers) and each group's minimum global
/// row index.
struct LocalGroups {
    gids: Vec<u32>,
    first_rows: Vec<u32>,
}

/// The three-phase executor, generic over key type and build strategy.
#[allow(clippy::too_many_arguments)]
fn execute<K, F, P, B>(
    n: usize,
    threads: usize,
    p_count: usize,
    morsel_rows: usize,
    timings: &mut PhaseTimings,
    fill: F,
    part_of: P,
    build: B,
) -> (Vec<u32>, u32)
where
    K: Copy + Default + Send + Sync,
    F: Fn(usize, &mut [K]) + Sync,
    P: Fn(K) -> usize + Sync,
    B: Fn(&[Vec<Entry<K>>]) -> LocalGroups + Sync,
{
    // Phase 1: morsel-driven radix partition.
    let clock = Instant::now();
    let worker_sets = partition_phase(n, threads, p_count, morsel_rows, &fill, &part_of);
    // Transpose worker-major buffers to partition-major without copying.
    let mut parts: Vec<Vec<Vec<Entry<K>>>> = (0..p_count).map(|_| Vec::new()).collect();
    for set in worker_sets {
        for (p, buf) in set.into_iter().enumerate() {
            if !buf.is_empty() {
                parts[p].push(buf);
            }
        }
    }
    timings.partition = clock.elapsed();

    // Phase 2: per-partition local group tables, partitions spread across
    // workers with the same fault-isolation contract as the chunk layer.
    let clock = Instant::now();
    let locals = chunk_parallel_map(p_count, threads, |p| build(&parts[p]));
    timings.build = clock.elapsed();

    // Canonical re-ordering: concatenate per-partition groups, rank them by
    // first appearance, then scatter the canonical ids. Ranking is serial
    // (O(G log G) in the number of groups, not rows); the scatter is
    // parallel over partitions — each row belongs to exactly one partition,
    // so the writes are disjoint.
    let clock = Instant::now();
    let mut offsets = Vec::with_capacity(p_count + 1);
    offsets.push(0usize);
    for local in &locals {
        offsets.push(offsets.last().expect("seeded") + local.first_rows.len());
    }
    let n_groups = *offsets.last().expect("seeded");
    let mut first_all: Vec<u32> = Vec::with_capacity(n_groups);
    for local in &locals {
        first_all.extend_from_slice(&local.first_rows);
    }
    let mut order: Vec<u32> = (0..n_groups as u32).collect();
    // Two distinct groups can never share a first row, so the unstable sort
    // is deterministic.
    order.sort_unstable_by_key(|&g| first_all[g as usize]);
    let mut canon = vec![0u32; n_groups];
    for (rank, &g) in order.iter().enumerate() {
        canon[g as usize] = rank as u32;
    }
    let out: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    chunk_parallel_map(p_count, threads, |p| {
        let base = offsets[p];
        let mut i = 0usize;
        for buf in &parts[p] {
            for &(row, _) in buf {
                let gid = locals[p].gids[i] as usize;
                // Disjoint rows; Relaxed stores compile to plain stores.
                out[row as usize].store(canon[base + gid], Ordering::Relaxed);
                i += 1;
            }
        }
    });
    let assignment: Vec<u32> = out.into_iter().map(AtomicU32::into_inner).collect();
    timings.reorder = clock.elapsed();
    (assignment, n_groups as u32)
}

/// Phase 1: workers pull morsels from a shared cursor and scatter each row
/// into the per-worker buffer of its key's partition. Returns one buffer
/// set per worker (plus one extra set if any morsel panicked and was
/// re-run serially).
fn partition_phase<K, F, P>(
    n: usize,
    threads: usize,
    p_count: usize,
    morsel_rows: usize,
    fill: &F,
    part_of: &P,
) -> Vec<Bufs<K>>
where
    K: Copy + Default + Send,
    F: Fn(usize, &mut [K]) + Sync,
    P: Fn(K) -> usize + Sync,
{
    let n_morsels = n.div_ceil(morsel_rows);
    let workers = threads.min(n_morsels).max(1);
    let cursor = AtomicUsize::new(0);
    let poisoned: Mutex<Vec<usize>> = Mutex::new(Vec::new());

    let run_worker = |bufs: &mut Bufs<K>, keys: &mut Vec<K>, saved: &mut Vec<usize>| loop {
        let m = cursor.fetch_add(1, Ordering::Relaxed);
        if m >= n_morsels {
            break;
        }
        let start = m * morsel_rows;
        let len = morsel_rows.min(n - start);
        saved.clear();
        saved.extend(bufs.iter().map(Vec::len));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            keys.resize(len, K::default());
            fill(start, &mut keys[..len]);
            for (i, &key) in keys[..len].iter().enumerate() {
                bufs[part_of(key)].push(((start + i) as u32, key));
            }
        }));
        if outcome.is_err() {
            roll_back(bufs, saved);
            poisoned
                .lock()
                .expect("partition workers never panic while holding the poison list")
                .push(m);
        }
    };

    let mut sets: Vec<Bufs<K>> = if workers <= 1 {
        let mut bufs: Bufs<K> = (0..p_count).map(|_| Vec::new()).collect();
        run_worker(&mut bufs, &mut Vec::new(), &mut Vec::new());
        vec![bufs]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut bufs: Bufs<K> = (0..p_count).map(|_| Vec::new()).collect();
                        run_worker(&mut bufs, &mut Vec::new(), &mut Vec::new());
                        bufs
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panics are caught per morsel"))
                .collect()
        })
    };

    let mut poisoned = poisoned
        .into_inner()
        .expect("all workers joined before draining the poison list");
    if !poisoned.is_empty() {
        sets.push(rerun_poisoned(
            n,
            p_count,
            morsel_rows,
            &mut poisoned,
            fill,
            part_of,
        ));
    }
    sets
}

/// Discards a panicked morsel's partial buffer writes by truncating each
/// partition buffer back to its length before the morsel started.
#[cold]
fn roll_back<K>(bufs: &mut Bufs<K>, saved: &[usize]) {
    for (buf, &len) in bufs.iter_mut().zip(saved) {
        buf.truncate(len);
    }
}

/// Serial second attempt at every poisoned morsel, in ascending order, into
/// a fresh buffer set. A panic here propagates: the fault-isolation
/// contract retries once, it does not mask deterministic failures.
#[cold]
fn rerun_poisoned<K, F, P>(
    n: usize,
    p_count: usize,
    morsel_rows: usize,
    poisoned: &mut [usize],
    fill: &F,
    part_of: &P,
) -> Bufs<K>
where
    K: Copy + Default,
    F: Fn(usize, &mut [K]),
    P: Fn(K) -> usize,
{
    poisoned.sort_unstable();
    let mut bufs: Bufs<K> = (0..p_count).map(|_| Vec::new()).collect();
    let mut keys: Vec<K> = Vec::new();
    for &m in poisoned.iter() {
        let start = m * morsel_rows;
        let len = morsel_rows.min(n - start);
        keys.resize(len, K::default());
        fill(start, &mut keys[..len]);
        for (i, &key) in keys[..len].iter().enumerate() {
            bufs[part_of(key)].push(((start + i) as u32, key));
        }
    }
    bufs
}

/// Dense build: the partition's group table is a flat `product`-sized radix
/// array mapping fused code → local group id.
fn build_dense(product: u32, entries: &[Vec<Entry<u32>>]) -> LocalGroups {
    let mut table = vec![u32::MAX; product as usize];
    let mut first_rows: Vec<u32> = Vec::new();
    let total: usize = entries.iter().map(Vec::len).sum();
    let mut gids = Vec::with_capacity(total);
    for buf in entries {
        for &(row, key) in buf {
            let slot = &mut table[key as usize];
            let gid = if *slot == u32::MAX {
                let g = first_rows.len() as u32;
                *slot = g;
                first_rows.push(row);
                g
            } else {
                let g = *slot;
                let first = &mut first_rows[g as usize];
                if row < *first {
                    *first = row;
                }
                g
            };
            gids.push(gid);
        }
    }
    LocalGroups { gids, first_rows }
}

/// Hashed build: candidate group ids per 64-bit hash, exactness restored by
/// comparing against each candidate group's recorded member row. Collisions
/// between unequal keys cost an extra `rows_equal`, never correctness.
fn build_hashed<K: KeyKernel + ?Sized>(kernel: &K, entries: &[Vec<Entry<u64>>]) -> LocalGroups {
    let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    let mut first_rows: Vec<u32> = Vec::new();
    let total: usize = entries.iter().map(Vec::len).sum();
    let mut gids = Vec::with_capacity(total);
    for buf in entries {
        for &(row, hash) in buf {
            let candidates = map.entry(hash).or_default();
            let known = candidates
                .iter()
                .copied()
                .find(|&g| kernel.rows_equal(first_rows[g as usize] as usize, row as usize));
            let gid = match known {
                Some(g) => {
                    let first = &mut first_rows[g as usize];
                    if row < *first {
                        *first = row;
                    }
                    g
                }
                None => {
                    let g = first_rows.len() as u32;
                    first_rows.push(row);
                    candidates.push(g);
                    g
                }
            };
            gids.push(gid);
        }
    }
    LocalGroups { gids, first_rows }
}

/// Hash component for a missing integer cell: any fixed word distinct from
/// the "present" encoding in expectation; collisions are resolved exactly.
const INT_MISSING_SENTINEL: u64 = 0xc0ff_ee00_d15a_b1ed;

/// Per-chunk view of one categorical key column with its chunk-local →
/// global dictionary remap.
struct CatChunk<'a> {
    codes: &'a [u32],
    validity: &'a Bitmap,
    remap: Vec<u32>,
}

/// Per-chunk view of one integer key column.
struct IntChunk<'a> {
    values: &'a [i64],
    validity: &'a Bitmap,
}

/// One key column of a [`ChunkedKeyKernel`]. `domain` is the exclusive
/// bound on the column's dense component (`u64::MAX` marks an integer
/// column whose span was not measured because the product was already
/// hopeless).
enum KernelCol<'a> {
    Cat {
        chunks: Vec<CatChunk<'a>>,
        domain: u64,
    },
    Int {
        chunks: Vec<IntChunk<'a>>,
        min: i64,
        domain: u64,
    },
}

/// [`KeyKernel`] over the key columns of a [`ChunkedTable`]: categorical
/// codes are remapped through the merged global dictionaries, integer
/// columns are keyed by value, and missing compares equal to missing.
pub struct ChunkedKeyKernel<'a> {
    n_rows: usize,
    /// Global start row of each chunk (ascending; empty chunks repeat).
    starts: Vec<usize>,
    lens: Vec<usize>,
    cols: Vec<KernelCol<'a>>,
    product: Option<u32>,
}

impl<'a> ChunkedKeyKernel<'a> {
    /// Builds the kernel for `chunked` grouped by the columns in `by`.
    /// Dictionary merging is serial (it already is in the chunk layer);
    /// the integer min/max domain scan parallelizes over chunks with
    /// `threads` workers.
    pub fn new(chunked: &'a ChunkedTable, by: &[usize], threads: usize) -> ChunkedKeyKernel<'a> {
        let mut starts = Vec::with_capacity(chunked.n_chunks());
        let mut lens = Vec::with_capacity(chunked.n_chunks());
        let mut offset = 0usize;
        for chunk in chunked.chunks() {
            starts.push(offset);
            lens.push(chunk.n_rows());
            offset += chunk.n_rows();
        }
        let mut running: u64 = 1;
        let mut cols = Vec::with_capacity(by.len());
        for &col in by {
            match chunked.merge_column_dictionaries(col) {
                Some(remaps) => {
                    let global_len = remaps
                        .iter()
                        .flat_map(|remap| remap.iter().copied())
                        .max()
                        .map_or(0, |m| u64::from(m) + 1);
                    // Component 0 is reserved for missing cells.
                    let domain = global_len + 1;
                    let chunks = chunked
                        .chunks()
                        .iter()
                        .zip(remaps)
                        .map(|(chunk, remap)| {
                            let Column::Cat(c) = chunk.column(col) else {
                                unreachable!("dictionary merge only succeeds on cat columns");
                            };
                            CatChunk {
                                codes: c.raw_codes(),
                                validity: c.validity(),
                                remap,
                            }
                        })
                        .collect();
                    running = running.saturating_mul(domain);
                    cols.push(KernelCol::Cat { chunks, domain });
                }
                None => {
                    let chunks: Vec<IntChunk<'a>> = chunked
                        .chunks()
                        .iter()
                        .map(|chunk| {
                            let Column::Int(c) = chunk.column(col) else {
                                unreachable!("non-cat key columns are integers");
                            };
                            IntChunk {
                                values: c.raw_values(),
                                validity: c.validity(),
                            }
                        })
                        .collect();
                    let (min, domain) = if running <= DENSE_CAP {
                        int_domain(&chunks, threads)
                    } else {
                        (0, u64::MAX)
                    };
                    running = running.saturating_mul(domain);
                    cols.push(KernelCol::Int {
                        chunks,
                        min,
                        domain,
                    });
                }
            }
        }
        let product = (running <= DENSE_CAP).then_some(running.max(1) as u32);
        ChunkedKeyKernel {
            n_rows: chunked.n_rows(),
            starts,
            lens,
            cols,
            product,
        }
    }

    /// Invokes `segment(chunk, local_lo, local_hi, out_offset)` for each
    /// chunk-aligned segment of the global row range `start..start + len`.
    fn for_segments(
        &self,
        start: usize,
        len: usize,
        mut segment: impl FnMut(usize, usize, usize, usize),
    ) {
        let end = start + len;
        let mut row = start;
        let mut out_offset = 0usize;
        // Last chunk whose start is <= `row`; empty chunks are skipped by
        // the length check in the loop.
        let mut c = self.starts.partition_point(|&s| s <= row).saturating_sub(1);
        while row < end {
            let lo = row - self.starts[c];
            if lo >= self.lens[c] {
                c += 1;
                continue;
            }
            let hi = self.lens[c].min(end - self.starts[c]);
            segment(c, lo, hi, out_offset);
            out_offset += hi - lo;
            row = self.starts[c] + hi;
            c += 1;
        }
    }

    /// Chunk index and chunk-local row of a global row index.
    fn locate(&self, row: usize) -> (usize, usize) {
        let c = self.starts.partition_point(|&s| s <= row) - 1;
        (c, row - self.starts[c])
    }
}

/// Parallel min/max scan of the present values of one integer column,
/// returning `(min, domain)` where `domain = span + 2` reserves component 0
/// for missing cells. An all-missing column gets domain 1.
fn int_domain(chunks: &[IntChunk<'_>], threads: usize) -> (i64, u64) {
    let ranges = chunk_parallel_map(chunks.len(), threads, |c| {
        let chunk = &chunks[c];
        let mut bounds: Option<(i64, i64)> = None;
        for (i, &v) in chunk.values.iter().enumerate() {
            if chunk.validity.get(i) {
                bounds = Some(match bounds {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                });
            }
        }
        bounds
    });
    match ranges
        .into_iter()
        .flatten()
        .reduce(|a, b| (a.0.min(b.0), a.1.max(b.1)))
    {
        None => (0, 1),
        Some((lo, hi)) => {
            // hi - lo fits u64 even across the full i64 range.
            let span = hi.wrapping_sub(lo) as u64;
            (lo, span.saturating_add(2))
        }
    }
}

impl KeyKernel for ChunkedKeyKernel<'_> {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn dense_product(&self) -> Option<u32> {
        self.product
    }

    fn fill_dense(&self, start: usize, out: &mut [u32]) {
        out.fill(0);
        let len = out.len();
        for col in &self.cols {
            match col {
                KernelCol::Cat { chunks, domain } => {
                    let d = *domain as u32;
                    self.for_segments(start, len, |c, lo, hi, off| {
                        let chunk = &chunks[c];
                        for (slot, r) in out[off..off + (hi - lo)].iter_mut().zip(lo..hi) {
                            let comp = if chunk.validity.get(r) {
                                chunk.remap[chunk.codes[r] as usize] + 1
                            } else {
                                0
                            };
                            *slot = *slot * d + comp;
                        }
                    });
                }
                KernelCol::Int {
                    chunks,
                    min,
                    domain,
                } => {
                    let d = *domain as u32;
                    self.for_segments(start, len, |c, lo, hi, off| {
                        let chunk = &chunks[c];
                        for (slot, r) in out[off..off + (hi - lo)].iter_mut().zip(lo..hi) {
                            let comp = if chunk.validity.get(r) {
                                chunk.values[r].wrapping_sub(*min) as u32 + 1
                            } else {
                                0
                            };
                            *slot = *slot * d + comp;
                        }
                    });
                }
            }
        }
    }

    fn fill_hashed(&self, start: usize, out: &mut [u64]) {
        out.fill(KEY_HASH_SEED);
        let len = out.len();
        for col in &self.cols {
            match col {
                KernelCol::Cat { chunks, .. } => {
                    self.for_segments(start, len, |c, lo, hi, off| {
                        let chunk = &chunks[c];
                        for (slot, r) in out[off..off + (hi - lo)].iter_mut().zip(lo..hi) {
                            let comp = if chunk.validity.get(r) {
                                u64::from(chunk.remap[chunk.codes[r] as usize]) + 1
                            } else {
                                0
                            };
                            *slot = mix64(*slot, comp);
                        }
                    });
                }
                KernelCol::Int { chunks, .. } => {
                    self.for_segments(start, len, |c, lo, hi, off| {
                        let chunk = &chunks[c];
                        for (slot, r) in out[off..off + (hi - lo)].iter_mut().zip(lo..hi) {
                            let comp = if chunk.validity.get(r) {
                                chunk.values[r] as u64
                            } else {
                                INT_MISSING_SENTINEL
                            };
                            *slot = mix64(*slot, comp);
                        }
                    });
                }
            }
        }
        for slot in out.iter_mut() {
            *slot = fmix64(*slot);
        }
    }

    fn rows_equal(&self, a: usize, b: usize) -> bool {
        let (ca, ra) = self.locate(a);
        let (cb, rb) = self.locate(b);
        self.cols.iter().all(|col| match col {
            KernelCol::Cat { chunks, .. } => {
                let (x, y) = (&chunks[ca], &chunks[cb]);
                match (x.validity.get(ra), y.validity.get(rb)) {
                    (true, true) => x.remap[x.codes[ra] as usize] == y.remap[y.codes[rb] as usize],
                    (false, false) => true,
                    _ => false,
                }
            }
            KernelCol::Int { chunks, .. } => {
                let (x, y) = (&chunks[ca], &chunks[cb]);
                match (x.validity.get(ra), y.validity.get(rb)) {
                    (true, true) => x.values[ra] == y.values[rb],
                    (false, false) => true,
                    _ => false,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::groupby::GroupBy;
    use crate::schema::{Attribute, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::cat_key("X"),
            Attribute::int_key("A"),
            Attribute::cat_confidential("S"),
        ])
        .unwrap()
    }

    fn sample() -> crate::table::Table {
        table_from_str_rows(
            schema(),
            &[
                &["x0", "5", "s0"],
                &["x1", "", "s1"],
                &["x0", "5", "s0"],
                &["x2", "7", ""],
                &["x1", "5", "s2"],
                &["x0", "", "s1"],
                &["x2", "7", "s0"],
                &["x0", "5", "s1"],
                &["x3", "9", "s0"],
                &["x1", "5", "s2"],
                &["x2", "8", "s1"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn chunked_kernel_matches_serial_for_all_morsels_and_threads() {
        let t = sample();
        let serial = GroupBy::compute(&t, &[0, 1]);
        for chunk_rows in [1, 3, 4096] {
            let chunked = ChunkedTable::from_table(&t, chunk_rows);
            let kernel = ChunkedKeyKernel::new(&chunked, &[0, 1], 2);
            for threads in [1, 2, 8] {
                for morsel_rows in [1, 2, 7, 4096] {
                    let (assignment, n_groups) = group_codes(&kernel, threads, morsel_rows);
                    assert_eq!(assignment.as_slice(), serial.assignments());
                    assert_eq!(n_groups as usize, serial.n_groups());
                }
            }
        }
    }

    /// Forcing the hashed path (via a kernel whose dense product is hidden)
    /// must produce the same canonical assignment as the dense path.
    struct HashOnly<'a>(ChunkedKeyKernel<'a>);

    impl KeyKernel for HashOnly<'_> {
        fn n_rows(&self) -> usize {
            self.0.n_rows()
        }
        fn dense_product(&self) -> Option<u32> {
            None
        }
        fn fill_dense(&self, start: usize, out: &mut [u32]) {
            self.0.fill_dense(start, out);
        }
        fn fill_hashed(&self, start: usize, out: &mut [u64]) {
            self.0.fill_hashed(start, out);
        }
        fn rows_equal(&self, a: usize, b: usize) -> bool {
            self.0.rows_equal(a, b)
        }
    }

    #[test]
    fn hashed_path_matches_dense_path() {
        let t = sample();
        let serial = GroupBy::compute(&t, &[0, 1]);
        let chunked = ChunkedTable::from_table(&t, 3);
        let kernel = HashOnly(ChunkedKeyKernel::new(&chunked, &[0, 1], 2));
        for threads in [1, 2, 8] {
            for morsel_rows in [1, 3, 4096] {
                let (assignment, n_groups) = group_codes(&kernel, threads, morsel_rows);
                assert_eq!(assignment.as_slice(), serial.assignments());
                assert_eq!(n_groups as usize, serial.n_groups());
            }
        }
    }

    #[test]
    fn empty_by_produces_one_group() {
        let t = sample();
        let chunked = ChunkedTable::from_table(&t, 4);
        let kernel = ChunkedKeyKernel::new(&chunked, &[], 2);
        let (assignment, n_groups) = group_codes(&kernel, 4, 3);
        assert_eq!(n_groups, 1);
        assert!(assignment.iter().all(|&g| g == 0));
    }

    #[test]
    fn empty_table_produces_no_groups() {
        let t = table_from_str_rows(schema(), &[]).unwrap();
        let chunked = ChunkedTable::from_table(&t, 4);
        let kernel = ChunkedKeyKernel::new(&chunked, &[0, 1], 2);
        let (assignment, n_groups) = group_codes(&kernel, 4, 3);
        assert!(assignment.is_empty());
        assert_eq!(n_groups, 0);
    }

    #[test]
    fn resolve_threads_zero_means_available_parallelism() {
        let available = std::thread::available_parallelism().map_or(1, usize::from);
        let resolved = resolve_threads(0);
        assert!(resolved >= 1);
        assert_eq!(resolved, available);
        assert_eq!(resolve_threads(3), 3.min(available));
    }

    #[test]
    fn resolve_threads_clamps_oversubscription_to_available_cores() {
        let available = std::thread::available_parallelism().map_or(1, usize::from);
        // Requests within the hardware are taken literally; requests beyond
        // it degrade to the widest useful worker count instead of
        // oversubscribing (the BENCH_6 `--threads 8` on 1 core regression).
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(available), available);
        assert_eq!(resolve_threads(available + 1), available);
        assert_eq!(resolve_threads(usize::MAX), available);
        // Clamping is idempotent: re-resolving an already-resolved count
        // (the CLI resolves before Tuning resolves again) changes nothing.
        assert_eq!(
            resolve_threads(resolve_threads(1024)),
            resolve_threads(1024)
        );
    }
}
