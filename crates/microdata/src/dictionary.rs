//! String interning for categorical columns.
//!
//! Categorical columns store `u32` codes into a per-column [`Dictionary`].
//! This keeps group-by keys fixed-width (see `groupby`) and makes full-domain
//! generalization a cheap code-to-code remapping (see `psens-hierarchy`).

use crate::hash::FxHashMap;

/// An append-only mapping between strings and dense `u32` codes.
///
/// Codes are assigned in first-insertion order starting at zero, so a
/// dictionary of `n` entries uses exactly the codes `0..n`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    entries: Vec<String>,
    index: FxHashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a dictionary pre-populated with `entries` in order.
    ///
    /// Duplicate entries collapse to the first occurrence's code.
    pub fn from_entries<I, S>(entries: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut dict = Self::new();
        for entry in entries {
            dict.intern(entry.as_ref());
        }
        dict
    }

    /// Returns the code for `text`, inserting it if new.
    pub fn intern(&mut self, text: &str) -> u32 {
        if let Some(&code) = self.index.get(text) {
            return code;
        }
        let code = u32::try_from(self.entries.len()).expect("dictionary exceeds u32 codes");
        self.entries.push(text.to_owned());
        self.index.insert(text.to_owned(), code);
        code
    }

    /// Returns the code for `text` if it is already interned.
    pub fn code(&self, text: &str) -> Option<u32> {
        self.index.get(text).copied()
    }

    /// Returns the string for `code`, if valid.
    pub fn text(&self, code: u32) -> Option<&str> {
        self.entries.get(code as usize).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut dict = Dictionary::new();
        let a = dict.intern("White");
        let b = dict.intern("Black");
        let a2 = dict.intern("White");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn codes_are_dense_and_ordered() {
        let dict = Dictionary::from_entries(["M", "F", "M", "F"]);
        assert_eq!(dict.len(), 2);
        assert_eq!(dict.code("M"), Some(0));
        assert_eq!(dict.code("F"), Some(1));
        assert_eq!(dict.text(0), Some("M"));
        assert_eq!(dict.text(1), Some("F"));
        assert_eq!(dict.text(2), None);
        assert_eq!(dict.code("X"), None);
    }

    #[test]
    fn iter_in_code_order() {
        let dict = Dictionary::from_entries(["c", "a", "b"]);
        let collected: Vec<(u32, &str)> = dict.iter().collect();
        assert_eq!(collected, vec![(0, "c"), (1, "a"), (2, "b")]);
    }

    #[test]
    fn empty_dictionary() {
        let dict = Dictionary::new();
        assert!(dict.is_empty());
        assert_eq!(dict.len(), 0);
        assert_eq!(dict.code(""), None);
    }

    #[test]
    fn empty_string_is_a_valid_entry() {
        let mut dict = Dictionary::new();
        let code = dict.intern("");
        assert_eq!(dict.text(code), Some(""));
        assert!(!dict.is_empty());
    }
}
