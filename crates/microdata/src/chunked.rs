//! Chunked columnar tables: the substrate for bounded-memory ingest and
//! chunk-parallel group-by.
//!
//! A [`ChunkedTable`] is a schema plus a sequence of fixed-capacity row
//! chunks, each an ordinary [`Table`] whose categorical columns own
//! *per-chunk* dictionaries. Chunks are therefore self-contained — a worker
//! thread can scan one without touching shared interning state — and a
//! [`DictionaryMerger`] unifies the per-chunk dictionaries whenever a global
//! view is needed ([`ChunkedTable::to_table`],
//! [`ChunkedTable::dense_codes`], `GroupBy::compute_chunked`).
//!
//! Determinism is the design invariant: merging chunks **in chunk order**,
//! and each chunk's local codes **in local-code order**, reproduces exactly
//! the global first-appearance order a serial row-by-row pass would produce.
//! Every chunked operation in this crate is therefore byte-identical to its
//! serial counterpart — see the `chunked_equivalence` differential suite.

use crate::bitmap::Bitmap;
use crate::column::{CatColumn, Column, IntColumn};
use crate::dictionary::Dictionary;
use crate::hash::FxHashMap;
use crate::schema::{Kind, Schema};
use crate::table::Table;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Unifies per-chunk [`Dictionary`]s into one global dictionary.
///
/// Merging a dictionary returns the local-code → global-code remap. Because
/// [`Dictionary::intern`] assigns dense codes in first-insertion order,
/// merging chunk dictionaries in chunk order reproduces exactly the
/// dictionary a serial row-by-row interning pass would have built — the fact
/// that makes [`ChunkedTable::to_table`] equal (under `Table: PartialEq`,
/// which compares dictionaries) to the buffered reader's table.
#[derive(Debug, Clone, Default)]
pub struct DictionaryMerger {
    global: Dictionary,
}

impl DictionaryMerger {
    /// A merger with an empty global dictionary.
    pub fn new() -> DictionaryMerger {
        DictionaryMerger::default()
    }

    /// Merges `dict` into the global dictionary; entry `i` of the returned
    /// vec is the global code of local code `i`.
    pub fn merge(&mut self, dict: &Dictionary) -> Vec<u32> {
        dict.iter()
            .map(|(_, text)| self.global.intern(text))
            .collect()
    }

    /// The unified dictionary built so far.
    pub fn global(&self) -> &Dictionary {
        &self.global
    }

    /// Consumes the merger, returning the unified dictionary.
    pub fn into_global(self) -> Dictionary {
        self.global
    }
}

/// A table stored as fixed-capacity row chunks sharing one schema.
///
/// Each chunk is a plain [`Table`]; categorical columns carry per-chunk
/// dictionaries (see [`DictionaryMerger`]). All chunks except the last hold
/// at most `chunk_rows` rows. The chunked form bounds the working set of
/// streaming ingest ([`crate::csv::read_chunked`]) and gives parallel
/// operators natural work units.
#[derive(Debug, Clone)]
pub struct ChunkedTable {
    schema: Schema,
    chunks: Vec<Table>,
    chunk_rows: usize,
    n_rows: usize,
    /// `offsets[i]` is the global row index where chunk `i` starts.
    offsets: Vec<usize>,
}

impl ChunkedTable {
    /// An empty chunked table with the given schema and chunk capacity
    /// (clamped to at least 1).
    pub fn new(schema: Schema, chunk_rows: usize) -> ChunkedTable {
        ChunkedTable {
            schema,
            chunks: Vec::new(),
            chunk_rows: chunk_rows.max(1),
            n_rows: 0,
            offsets: Vec::new(),
        }
    }

    /// Slices `table` into chunks of `chunk_rows` rows (the last chunk may be
    /// shorter). Categorical chunk columns share `table`'s dictionaries, so
    /// this is cheap relative to re-interning.
    pub fn from_table(table: &Table, chunk_rows: usize) -> ChunkedTable {
        let mut out = ChunkedTable::new(table.schema().clone(), chunk_rows);
        let n = table.n_rows();
        let mut start = 0usize;
        while start < n {
            let end = (start + out.chunk_rows).min(n);
            let indices: Vec<usize> = (start..end).collect();
            out.push_chunk(table.take(&indices));
            start = end;
        }
        out
    }

    /// Appends a chunk.
    ///
    /// # Panics
    /// Panics when the chunk's schema differs from the table's, or when the
    /// chunk exceeds the chunk capacity.
    pub fn push_chunk(&mut self, chunk: Table) {
        assert!(
            chunk.schema() == &self.schema,
            "chunk schema must match the chunked table's schema"
        );
        assert!(
            chunk.n_rows() <= self.chunk_rows,
            "chunk of {} rows exceeds capacity {}",
            chunk.n_rows(),
            self.chunk_rows
        );
        self.offsets.push(self.n_rows);
        self.n_rows += chunk.n_rows();
        self.chunks.push(chunk);
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total number of rows across all chunks.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk capacity rows are packed into.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Chunk `i`.
    pub fn chunk(&self, i: usize) -> &Table {
        &self.chunks[i]
    }

    /// All chunks, in row order.
    pub fn chunks(&self) -> &[Table] {
        &self.chunks
    }

    /// The cell at global row `row`, column `col` — located by binary search
    /// over the chunk offsets.
    ///
    /// # Panics
    /// Panics when `row` is out of bounds.
    pub fn value(&self, row: usize, col: usize) -> crate::value::Value {
        assert!(row < self.n_rows, "row {row} out of {} rows", self.n_rows);
        let c = self.offsets.partition_point(|&start| start <= row) - 1;
        self.chunks[c].value(row - self.offsets[c], col)
    }

    /// Concatenates the chunks into one contiguous [`Table`].
    ///
    /// Categorical columns are unified through a [`DictionaryMerger`] in
    /// chunk order, so for tables whose missing cells hold the canonical
    /// placeholder (everything built through [`crate::TableBuilder`] or the
    /// CSV readers) the result is equal — dictionaries included — to the
    /// table a serial row-by-row build would produce.
    pub fn to_table(&self) -> Table {
        let columns = (0..self.schema.len())
            .map(|i| match self.schema.attribute(i).kind() {
                Kind::Int => {
                    let mut values = Vec::with_capacity(self.n_rows);
                    let mut validity = Bitmap::new();
                    for chunk in &self.chunks {
                        let Column::Int(c) = chunk.column(i) else {
                            unreachable!("chunk columns match the schema kind")
                        };
                        values.extend_from_slice(c.raw_values());
                        for row in 0..c.len() {
                            validity.push(c.validity().get(row));
                        }
                    }
                    Column::Int(IntColumn::from_parts(values, validity))
                }
                Kind::Cat => {
                    let mut merger = DictionaryMerger::new();
                    let mut codes = Vec::with_capacity(self.n_rows);
                    let mut validity = Bitmap::new();
                    for chunk in &self.chunks {
                        let Column::Cat(c) = chunk.column(i) else {
                            unreachable!("chunk columns match the schema kind")
                        };
                        let remap = merger.merge(c.dictionary());
                        for row in 0..c.len() {
                            match c.code_at(row) {
                                Some(raw) => {
                                    codes.push(remap[raw as usize]);
                                    validity.push(true);
                                }
                                None => {
                                    codes.push(0);
                                    validity.push(false);
                                }
                            }
                        }
                    }
                    Column::Cat(CatColumn::from_parts(merger.into_global(), codes, validity))
                }
            })
            .collect();
        Table::new(self.schema.clone(), columns).expect("chunks share the schema")
    }

    /// Dense group codes of column `col` across all chunks, computed
    /// chunk-parallel on `threads` workers — byte-identical to
    /// `self.to_table().column(col).dense_codes()`.
    ///
    /// Per chunk (in parallel) the column is densified locally; the serial
    /// merge then walks chunks in order and local codes in local-code order,
    /// which is exactly global first-appearance order. With `threads <= 1`
    /// (or a single chunk) one persistent value→code map streams through the
    /// chunks in row order instead — the serial densify pass reading chunked
    /// storage, with no local densify, merge, or scatter. `threads == 0`
    /// means one worker per available core
    /// (see [`crate::morsel::resolve_threads`]).
    pub fn dense_codes(&self, col: usize, threads: usize) -> (Vec<u32>, u32) {
        let threads = crate::morsel::resolve_threads(threads);
        if threads <= 1 || self.chunks.len() <= 1 {
            return self.dense_codes_streaming(col);
        }
        let parts = chunk_parallel_map(self.chunks.len(), threads, |c| {
            local_codes(self.chunks[c].column(col))
        });
        // Unify per-chunk dictionaries (categorical columns only) so local
        // representatives can be keyed on global codes instead of strings.
        let remaps = self.merge_column_dictionaries(col);
        let n_locals: Vec<u32> = parts.iter().map(|p| p.n_local).collect();
        let (id_remaps, n_global) = assign_global_ids(&n_locals, |c, lc| {
            let rep = parts[c].reps[lc as usize] as usize;
            merge_key(
                self.chunks[c].column(col),
                rep,
                remaps.as_ref().map(|r| &r[c]),
            )
        });
        (scatter_global(self.n_rows, parts, &id_remaps), n_global)
    }

    /// Single-threaded streaming variant of [`ChunkedTable::dense_codes`]:
    /// densifies in one walk over the chunks in row order, so codes come out
    /// in global first-appearance order exactly as the serial pass assigns
    /// them. Categorical cells are keyed on their global dictionary code
    /// (per-chunk dictionaries unified upfront), integer cells on their
    /// value; missing cells share one code.
    fn dense_codes_streaming(&self, col: usize) -> (Vec<u32>, u32) {
        let mut codes = Vec::with_capacity(self.n_rows);
        let mut next = 0u32;
        let mut missing_code: Option<u32> = None;
        match self.merge_column_dictionaries(col) {
            Some(remaps) => {
                let mut map: FxHashMap<u32, u32> = FxHashMap::default();
                for (c, chunk) in self.chunks.iter().enumerate() {
                    let Column::Cat(cat) = chunk.column(col) else {
                        unreachable!("chunk columns match the schema kind")
                    };
                    let remap = &remaps[c];
                    for row in 0..cat.len() {
                        let code = match cat.code_at(row) {
                            Some(raw) => *map.entry(remap[raw as usize]).or_insert_with(|| {
                                let code = next;
                                next += 1;
                                code
                            }),
                            None => *missing_code.get_or_insert_with(|| {
                                let code = next;
                                next += 1;
                                code
                            }),
                        };
                        codes.push(code);
                    }
                }
            }
            None => {
                let mut map: FxHashMap<i64, u32> = FxHashMap::default();
                for chunk in &self.chunks {
                    let Column::Int(ints) = chunk.column(col) else {
                        unreachable!("chunk columns match the schema kind")
                    };
                    for row in 0..ints.len() {
                        let code = match ints.get(row) {
                            Some(v) => *map.entry(v).or_insert_with(|| {
                                let code = next;
                                next += 1;
                                code
                            }),
                            None => *missing_code.get_or_insert_with(|| {
                                let code = next;
                                next += 1;
                                code
                            }),
                        };
                        codes.push(code);
                    }
                }
            }
        }
        (codes, next)
    }

    /// Per-chunk local→global dictionary remaps for a categorical column
    /// (`None` for integer columns).
    pub(crate) fn merge_column_dictionaries(&self, col: usize) -> Option<Vec<Vec<u32>>> {
        match self.schema.attribute(col).kind() {
            Kind::Int => None,
            Kind::Cat => {
                let mut merger = DictionaryMerger::new();
                Some(
                    self.chunks
                        .iter()
                        .map(|chunk| {
                            let Column::Cat(c) = chunk.column(col) else {
                                unreachable!("chunk columns match the schema kind")
                            };
                            merger.merge(c.dictionary())
                        })
                        .collect(),
                )
            }
        }
    }
}

/// One chunk's locally-densified codes: `local[r]` is row `r`'s dense local
/// code, `reps[c]` the first row holding local code `c`. The building block
/// chunk-parallel operators hand from their per-chunk pass to the serial
/// merge ([`assign_global_ids`] + [`scatter_global`]).
#[derive(Debug)]
pub struct LocalCodes {
    /// Dense local code per row, in within-chunk first-appearance order.
    pub local: Vec<u32>,
    /// Number of distinct local codes.
    pub n_local: u32,
    /// First row (chunk-relative unless the producer chose otherwise)
    /// holding each local code.
    pub reps: Vec<u32>,
}

/// Densifies one chunk column and records first-appearance representatives.
pub(crate) fn local_codes(column: &Column) -> LocalCodes {
    let (local, n_local) = column.dense_codes();
    LocalCodes {
        reps: first_appearances(&local, n_local),
        local,
        n_local,
    }
}

/// `out[c]` is the first index of `codes` holding code `c`; codes are dense
/// and assigned in first-appearance order, so every entry is filled.
pub fn first_appearances(codes: &[u32], n_codes: u32) -> Vec<u32> {
    let mut reps = vec![u32::MAX; n_codes as usize];
    for (row, &code) in codes.iter().enumerate() {
        if reps[code as usize] == u32::MAX {
            reps[code as usize] = row as u32;
        }
    }
    reps
}

/// A chunk-merge key for one cell: integer value, *global* dictionary code,
/// or the shared missing marker. Two rows of different chunks agree on a
/// grouping cell iff their `MergeKey`s are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum MergeKey {
    /// A missing cell (missing compares equal to missing).
    Missing,
    /// A present integer value.
    Int(i64),
    /// A present categorical value as its global dictionary code.
    Code(u32),
}

/// The merge key of `column[row]`; `remap` is the chunk's local→global
/// dictionary remap (required for categorical columns).
pub(crate) fn merge_key(column: &Column, row: usize, remap: Option<&Vec<u32>>) -> MergeKey {
    match column {
        Column::Int(c) => c.get(row).map_or(MergeKey::Missing, MergeKey::Int),
        Column::Cat(c) => c.code_at(row).map_or(MergeKey::Missing, |raw| {
            MergeKey::Code(remap.expect("categorical columns carry a remap")[raw as usize])
        }),
    }
}

/// Assigns global ids to per-chunk local ids, walking chunks in order and
/// local ids in local-id order; `key_of(c, lc)` identifies local group `lc`
/// of chunk `c`. Returns per-chunk `local id → global id` remaps and the
/// global id count.
///
/// Local ids are dense in first-appearance order within their chunk, so this
/// traversal assigns global ids in whole-table first-appearance order — the
/// exact order a serial pass produces. Chunk 0's remap is always the
/// identity.
pub fn assign_global_ids<K: Hash + Eq>(
    n_locals: &[u32],
    mut key_of: impl FnMut(usize, u32) -> K,
) -> (Vec<Vec<u32>>, u32) {
    let mut global: FxHashMap<K, u32> = FxHashMap::default();
    let mut next = 0u32;
    let remaps = n_locals
        .iter()
        .enumerate()
        .map(|(c, &n_local)| {
            (0..n_local)
                .map(|lc| {
                    *global.entry(key_of(c, lc)).or_insert_with(|| {
                        let id = next;
                        next += 1;
                        id
                    })
                })
                .collect()
        })
        .collect();
    (remaps, next)
}

/// Rewrites per-chunk local codes into one global vector using the
/// [`assign_global_ids`] remaps. A single chunk's codes are moved through
/// unchanged (its remap is the identity), so the one-chunk path adds no
/// extra pass over the serial computation.
pub fn scatter_global(n_rows: usize, parts: Vec<LocalCodes>, remaps: &[Vec<u32>]) -> Vec<u32> {
    if parts.len() == 1 {
        return parts.into_iter().next().expect("one part").local;
    }
    let mut out = vec![0u32; n_rows];
    let mut offset = 0usize;
    for (c, part) in parts.iter().enumerate() {
        let slice = &mut out[offset..offset + part.local.len()];
        if c == 0 {
            slice.copy_from_slice(&part.local);
        } else {
            let remap = &remaps[c];
            for (cell, &lc) in slice.iter_mut().zip(&part.local) {
                *cell = remap[lc as usize];
            }
        }
        offset += part.local.len();
    }
    out
}

/// Runs `job(0..n_chunks)` across `threads` scoped workers and returns the
/// results in chunk order.
///
/// Workers are fault-isolated: each chunk's job runs under
/// [`std::panic::catch_unwind`], and a chunk whose job panicked is re-run
/// serially after the parallel phase (a second panic propagates to the
/// caller). `AssertUnwindSafe` is sound because a panicked job's entire
/// result is discarded and recomputed from scratch. With `threads <= 1` (or
/// a single chunk) the jobs run inline on the caller's thread with no
/// spawning and no unwind guard — the zero-overhead serial path.
pub fn chunk_parallel_map<T, F>(n_chunks: usize, threads: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n_chunks.max(1));
    if threads <= 1 {
        return (0..n_chunks).map(&job).collect();
    }
    let slots: Vec<Option<T>> = std::thread::scope(|scope| {
        let job = &job;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    // Round-robin chunk assignment: worker w owns chunks
                    // w, w + threads, w + 2·threads, ...
                    (w..n_chunks)
                        .step_by(threads)
                        .map(|c| (c, catch_unwind(AssertUnwindSafe(|| job(c))).ok()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n_chunks).collect();
        for handle in handles {
            for (c, result) in handle.join().expect("worker panics are caught inside") {
                slots[c] = result;
            }
        }
        slots
    });
    // Serial re-run for chunks whose job panicked keeps the result total; a
    // deterministic panic reproduces here, on the caller's thread.
    slots
        .into_iter()
        .enumerate()
        .map(|(c, slot)| slot.unwrap_or_else(|| job(c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::table_from_str_rows;
    use crate::schema::Attribute;
    use crate::value::Value;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_key("City"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["50", "Newport", "Flu"],
                &["?", "Dayton", "HIV"],
                &["30", "?", "Flu"],
                &["50", "Newport", "Asthma"],
                &["20", "Cold Spring", "?"],
                &["30", "Dayton", "Flu"],
                &["50", "Dayton", "HIV"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn merger_reproduces_row_order_interning() {
        let mut d1 = Dictionary::new();
        for s in ["b", "a"] {
            d1.intern(s);
        }
        let mut d2 = Dictionary::new();
        for s in ["c", "a", "d"] {
            d2.intern(s);
        }
        let mut merger = DictionaryMerger::new();
        let r1 = merger.merge(&d1);
        let r2 = merger.merge(&d2);
        assert_eq!(r1, vec![0, 1]);
        assert_eq!(r2, vec![2, 1, 3]);
        let global = merger.into_global();
        let entries: Vec<&str> = global.iter().map(|(_, s)| s).collect();
        assert_eq!(entries, vec!["b", "a", "c", "d"]);
    }

    #[test]
    fn from_table_round_trips_for_every_chunk_size() {
        let t = sample_table();
        for chunk_rows in [1usize, 2, 3, 7, 100] {
            let chunked = ChunkedTable::from_table(&t, chunk_rows);
            assert_eq!(chunked.n_rows(), t.n_rows());
            assert_eq!(chunked.to_table(), t, "chunk_rows={chunk_rows}");
            let expected_chunks = t.n_rows().div_ceil(chunk_rows.max(1));
            assert_eq!(chunked.n_chunks(), expected_chunks);
        }
    }

    #[test]
    fn empty_table_round_trips() {
        let t = sample_table().filter(|_| false);
        let chunked = ChunkedTable::from_table(&t, 4);
        assert!(chunked.is_empty());
        assert_eq!(chunked.n_chunks(), 0);
        // `filter` keeps the source dictionaries alive, so the round trip
        // produces the *canonical* empty table (empty dictionaries) instead.
        assert_eq!(chunked.to_table(), Table::empty(t.schema().clone()));
    }

    #[test]
    fn chunk_capacity_clamps_to_one() {
        let t = sample_table();
        let chunked = ChunkedTable::from_table(&t, 0);
        assert_eq!(chunked.chunk_rows(), 1);
        assert_eq!(chunked.n_chunks(), t.n_rows());
        assert_eq!(chunked.to_table(), t);
    }

    #[test]
    #[should_panic(expected = "schema must match")]
    fn push_chunk_rejects_schema_mismatch() {
        let t = sample_table();
        let other = Schema::new(vec![Attribute::int_key("Other")]).unwrap();
        let mut chunked = ChunkedTable::new(other, 4);
        chunked.push_chunk(t.take(&[0]));
    }

    #[test]
    fn dense_codes_match_materialized_column() {
        let t = sample_table();
        for chunk_rows in [1usize, 2, 3, 100] {
            let chunked = ChunkedTable::from_table(&t, chunk_rows);
            for col in 0..t.schema().len() {
                for threads in [1usize, 2, 8] {
                    assert_eq!(
                        chunked.dense_codes(col, threads),
                        t.column(col).dense_codes(),
                        "col={col} chunk_rows={chunk_rows} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn dense_codes_unify_distinct_chunk_dictionaries() {
        // Chunks built independently (fresh dictionaries per chunk) must
        // still agree with the serial pass over the concatenation.
        let schema = Schema::new(vec![Attribute::cat_key("C")]).unwrap();
        let c1 = table_from_str_rows(schema.clone(), &[&["x"], &["y"]]).unwrap();
        let c2 = table_from_str_rows(schema.clone(), &[&["y"], &["z"], &["x"]]).unwrap();
        let mut chunked = ChunkedTable::new(schema, 3);
        chunked.push_chunk(c1);
        chunked.push_chunk(c2);
        let (codes, n) = chunked.dense_codes(0, 2);
        assert_eq!(codes, vec![0, 1, 1, 2, 0]);
        assert_eq!(n, 3);
        assert_eq!(chunked.to_table().value(4, 0), Value::Text("x".into()));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let results = chunk_parallel_map(17, 4, |c| c * c);
        assert_eq!(results, (0..17).map(|c| c * c).collect::<Vec<_>>());
        // Degenerate thread counts clamp.
        assert_eq!(chunk_parallel_map(3, 0, |c| c), vec![0, 1, 2]);
        assert!(chunk_parallel_map(0, 8, |c| c).is_empty());
    }

    #[test]
    fn panicked_chunk_is_rerun_serially() {
        // The first attempt at chunk 2 panics; the serial re-run succeeds,
        // so the caller still sees a complete, ordered result.
        let attempts = AtomicUsize::new(0);
        let results = chunk_parallel_map(5, 2, |c| {
            if c == 2 && attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected chunk failure");
            }
            c + 10
        });
        assert_eq!(results, vec![10, 11, 12, 13, 14]);
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "chunk 2 ran twice");
    }

    #[test]
    #[should_panic(expected = "injected chunk failure")]
    fn deterministic_panic_propagates_from_serial_rerun() {
        chunk_parallel_map(3, 2, |c| {
            if c == 1 {
                panic!("injected chunk failure");
            }
            c
        });
    }
}
