//! Property tests for the microdata substrate, model-checked against naive
//! reference implementations.

use proptest::prelude::*;
use psens_microdata::{
    csv, table_from_str_rows, Attribute, Bitmap, GroupBy, Schema, Table, TableBuilder, Value,
};

fn small_table(rows: &[(u8, i64)]) -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("C"),
        Attribute::int_confidential("N"),
    ])
    .unwrap();
    let mut builder = TableBuilder::new(schema);
    for &(c, n) in rows {
        builder
            .push_row(vec![Value::Text(format!("c{c}")), Value::Int(n)])
            .unwrap();
    }
    builder.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_behaves_like_vec_bool(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut bitmap = Bitmap::new();
        for &b in &bits {
            bitmap.push(b);
        }
        prop_assert_eq!(bitmap.len(), bits.len());
        prop_assert_eq!(bitmap.count_ones(), bits.iter().filter(|&&b| b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bitmap.get(i), b);
        }
        prop_assert_eq!(bitmap.all(), bits.iter().all(|&b| b));
    }

    #[test]
    fn dense_codes_identify_equal_cells(rows in prop::collection::vec((0u8..5, -3i64..3), 1..60)) {
        let table = small_table(&rows);
        for col in 0..2 {
            let (codes, n) = table.column(col).dense_codes();
            prop_assert_eq!(codes.len(), table.n_rows());
            for a in 0..table.n_rows() {
                prop_assert!(codes[a] < n);
                for b in 0..table.n_rows() {
                    let equal_values = table.value(a, col) == table.value(b, col);
                    prop_assert_eq!(codes[a] == codes[b], equal_values, "rows {} {}", a, b);
                }
            }
        }
    }

    #[test]
    fn more_grouping_columns_refine_the_partition(
        rows in prop::collection::vec((0u8..4, -2i64..2), 1..60),
    ) {
        let table = small_table(&rows);
        let coarse = GroupBy::compute(&table, &[0]);
        let fine = GroupBy::compute(&table, &[0, 1]);
        prop_assert!(fine.n_groups() >= coarse.n_groups());
        // Two rows in the same fine group share the coarse group.
        for a in 0..table.n_rows() {
            for b in 0..table.n_rows() {
                if fine.group_of(a) == fine.group_of(b) {
                    prop_assert_eq!(coarse.group_of(a), coarse.group_of(b));
                }
            }
        }
    }

    #[test]
    fn take_preserves_selected_rows(
        rows in prop::collection::vec((0u8..4, -5i64..5), 1..40),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 0..30),
    ) {
        let table = small_table(&rows);
        let indices: Vec<usize> = picks.iter().map(|i| i.index(table.n_rows())).collect();
        let taken = table.take(&indices);
        prop_assert_eq!(taken.n_rows(), indices.len());
        for (new_row, &old_row) in indices.iter().enumerate() {
            for col in 0..2 {
                prop_assert_eq!(taken.value(new_row, col), table.value(old_row, col));
            }
        }
    }

    #[test]
    fn concat_is_row_append(
        a in prop::collection::vec((0u8..4, -5i64..5), 0..20),
        b in prop::collection::vec((0u8..4, -5i64..5), 0..20),
    ) {
        let ta = small_table(&a);
        let tb = small_table(&b);
        let joined = ta.concat(&tb).unwrap();
        prop_assert_eq!(joined.n_rows(), a.len() + b.len());
        for (i, &(c, n)) in a.iter().chain(b.iter()).enumerate() {
            prop_assert_eq!(joined.value(i, 0), Value::Text(format!("c{c}")));
            prop_assert_eq!(joined.value(i, 1), Value::Int(n));
        }
    }

    #[test]
    fn csv_records_roundtrip(
        records in prop::collection::vec(
            prop::collection::vec("[ -~]{0,10}", 1..5),
            1..10,
        )
    ) {
        // Arity must be constant per CSV; normalize to the first record's.
        let width = records[0].len();
        let records: Vec<Vec<String>> = records
            .into_iter()
            .map(|mut r| {
                r.resize(width, String::new());
                r
            })
            .collect();
        // Write with manual quoting via the table writer by building a table
        // of text cells; empty strings become missing and read back as such,
        // so compare after normalizing empties.
        let schema = Schema::new(
            (0..width)
                .map(|i| Attribute::cat_key(format!("f{i}")))
                .collect(),
        )
        .unwrap();
        let mut builder = TableBuilder::new(schema.clone());
        for record in &records {
            builder
                .push_row(
                    record
                        .iter()
                        .map(|f| {
                            let trimmed = f.trim();
                            if trimmed.is_empty() || trimmed == "?" {
                                Value::Missing
                            } else {
                                Value::Text(trimmed.to_owned())
                            }
                        })
                        .collect(),
                )
                .unwrap();
        }
        let table = builder.finish();
        let text = csv::to_csv_string(&table, true);
        let parsed = csv::read_table_str(&text, schema, true).unwrap();
        prop_assert_eq!(parsed, table);
    }

    /// The CSV record splitter is total: any string — malformed quoting,
    /// bare carriage returns, control characters, invalid-UTF-8 replacement
    /// characters — is either parsed or rejected with `Error::Csv`, never a
    /// panic. Arbitrary bytes are lossy-decoded so every byte pattern is
    /// exercised.
    #[test]
    fn parse_records_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = csv::parse_records(&input);
    }

    /// Same totality for the schema-directed readers: arbitrary input
    /// against a fixed schema (and the inferring reader) returns a clean
    /// `Result`, it does not panic on arity, kind, or header mismatches.
    #[test]
    fn table_readers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let input = String::from_utf8_lossy(&bytes);
        let schema = Schema::new(vec![
            Attribute::cat_key("C"),
            Attribute::int_confidential("N"),
        ])
        .unwrap();
        let _ = csv::read_table_str(&input, schema.clone(), true);
        let _ = csv::read_table_str(&input, schema, false);
        let _ = csv::read_table_infer(&input);
    }

    /// Write→parse round-trip survives the fields that force quoting:
    /// embedded commas, double quotes, and newlines.
    #[test]
    fn quoted_fields_roundtrip(
        cells in prop::collection::vec("[a-z][a-z,\"\n]{0,8}[a-z]", 1..20),
    ) {
        let schema = Schema::new(vec![Attribute::cat_key("C")]).unwrap();
        let mut builder = TableBuilder::new(schema.clone());
        for cell in &cells {
            builder.push_row(vec![Value::Text(cell.clone())]).unwrap();
        }
        let table = builder.finish();
        let text = csv::to_csv_string(&table, true);
        let parsed = csv::read_table_str(&text, schema, true).unwrap();
        prop_assert_eq!(parsed, table);
    }
}

#[test]
fn group_by_representatives_are_group_members() {
    let table = table_from_str_rows(
        Schema::new(vec![Attribute::cat_key("C")]).unwrap(),
        &[&["a"], &["b"], &["a"], &["c"], &["b"]],
    )
    .unwrap();
    let groups = GroupBy::compute(&table, &[0]);
    for (g, &rep) in groups.representatives().iter().enumerate() {
        assert_eq!(groups.group_of(rep as usize), g as u32);
    }
}
