//! Property tests for hierarchies and the generalization lattice.

use proptest::prelude::*;
use psens_hierarchy::{builders, Lattice, Node};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prefix_hierarchy_levels_are_coarsenings(
        values in prop::collection::hash_set("[0-9]{5}", 2..20),
    ) {
        let ground: Vec<String> = values.into_iter().collect();
        let hierarchy = builders::prefix_hierarchy(ground.clone(), &[3, 1, 0]).unwrap();
        // Values sharing a level-l label share every higher-level label.
        for level in 1..hierarchy.n_levels() - 1 {
            for a in &ground {
                for b in &ground {
                    let la = hierarchy.generalize(a, level).unwrap();
                    let lb = hierarchy.generalize(b, level).unwrap();
                    if la == lb {
                        let ha = hierarchy.generalize(a, level + 1).unwrap();
                        let hb = hierarchy.generalize(b, level + 1).unwrap();
                        prop_assert_eq!(ha, hb, "coarsening broken at level {}", level);
                    }
                }
            }
        }
        // The top level is a single label.
        let top = hierarchy.n_levels() - 1;
        let labels = hierarchy.labels_at(top).unwrap();
        prop_assert_eq!(labels.len(), 1);
    }

    #[test]
    fn parents_and_children_are_inverse(
        dims in prop::collection::vec(1u8..4, 1..5),
    ) {
        let lattice = Lattice::new(dims);
        for node in lattice.all_nodes() {
            for parent in lattice.parents(&node) {
                prop_assert!(lattice.contains(&parent));
                prop_assert_eq!(parent.height(), node.height() + 1);
                prop_assert!(parent.strictly_dominates(&node));
                prop_assert!(
                    lattice.children(&parent).contains(&node),
                    "child link missing for {} -> {}", node, parent
                );
            }
            for child in lattice.children(&node) {
                prop_assert!(lattice.parents(&child).contains(&node));
            }
        }
    }

    #[test]
    fn domination_is_a_partial_order(
        dims in prop::collection::vec(1u8..4, 1..4),
        picks in prop::collection::vec(any::<prop::sample::Index>(), 3),
    ) {
        let lattice = Lattice::new(dims);
        let all = lattice.all_nodes();
        let a = &all[picks[0].index(all.len())];
        let b = &all[picks[1].index(all.len())];
        let c = &all[picks[2].index(all.len())];
        // Reflexive, antisymmetric, transitive.
        prop_assert!(a.dominates(a));
        if a.dominates(b) && b.dominates(a) {
            prop_assert_eq!(a, b);
        }
        if a.dominates(b) && b.dominates(c) {
            prop_assert!(a.dominates(c));
        }
        // Height is monotone along domination.
        if a.dominates(b) {
            prop_assert!(a.height() >= b.height());
        }
    }

    #[test]
    fn ancestors_are_exactly_the_dominating_nodes(
        dims in prop::collection::vec(1u8..3, 1..4),
        pick in any::<prop::sample::Index>(),
    ) {
        let lattice = Lattice::new(dims);
        let all = lattice.all_nodes();
        let node = &all[pick.index(all.len())];
        let ancestors = lattice.ancestors_of(node);
        for candidate in &all {
            prop_assert_eq!(
                ancestors.contains(candidate),
                candidate.dominates(node),
            );
        }
        // Bottom and top bracket everything.
        prop_assert!(ancestors.contains(&lattice.top()));
        prop_assert_eq!(
            ancestors.contains(&lattice.bottom()),
            *node == lattice.bottom()
        );
    }
}

#[test]
fn node_display_is_stable() {
    assert_eq!(Node(vec![0]).to_string(), "<0>");
    assert_eq!(Node(vec![3, 1, 2]).to_string(), "<3, 1, 2>");
}
