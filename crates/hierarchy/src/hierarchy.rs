//! Domain and value generalization hierarchies (paper Section 3, Figure 1).
//!
//! A *domain generalization hierarchy* (DGH) is a totally ordered chain of
//! domains for one attribute — e.g. `Z0 = {41076, 41099, ...}` up to
//! `Z2 = {*****}` for ZipCode. The per-value edges form the *value
//! generalization hierarchy* (VGH) tree. [`CatHierarchy`] and
//! [`IntHierarchy`] represent both at once: level 0 is the ground domain and
//! each higher level maps every value to its ancestor label.

use crate::error::{Error, Result};
use psens_microdata::{CatColumn, Column, Dictionary, JsonValue, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One generalized level of a categorical hierarchy: its labels and, for each
/// ground value, the label it maps to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct CatLevel {
    labels: Vec<String>,
    of_ground: Vec<u32>,
}

/// A generalization hierarchy over an enumerated categorical domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CatHierarchy {
    ground: Vec<String>,
    levels: Vec<CatLevel>,
}

impl CatHierarchy {
    /// A hierarchy with only the ground domain (no generalization possible).
    pub fn identity<I, S>(ground: I) -> Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let ground: Vec<String> = ground.into_iter().map(Into::into).collect();
        if ground.is_empty() {
            return Err(Error::Invalid("empty ground domain".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for g in &ground {
            if !seen.insert(g.clone()) {
                return Err(Error::Invalid(format!("duplicate ground value `{g}`")));
            }
        }
        Ok(CatHierarchy {
            ground,
            levels: Vec::new(),
        })
    }

    /// Extends the hierarchy with one level defined by a mapping from the
    /// *previous* level's labels to new labels (the DGH edge `D_l -> D_{l+1}`).
    ///
    /// Every previous label must be mapped; new labels are deduplicated in
    /// first-appearance order. Chaining construction makes each level a
    /// coarsening of the one below by construction.
    pub fn push_level<'a, I>(mut self, mapping: I) -> Result<Self>
    where
        I: IntoIterator<Item = (&'a str, &'a str)>,
    {
        let map: BTreeMap<&str, &str> = mapping.into_iter().collect();
        let prev_labels: Vec<String> = match self.levels.last() {
            Some(level) => level.labels.clone(),
            None => self.ground.clone(),
        };
        let mut labels: Vec<String> = Vec::new();
        let mut label_index: BTreeMap<String, u32> = BTreeMap::new();
        let mut prev_to_new: Vec<u32> = Vec::with_capacity(prev_labels.len());
        let level_no = self.levels.len() + 1;
        for prev in &prev_labels {
            let next = map
                .get(prev.as_str())
                .ok_or_else(|| Error::IncompleteLevel {
                    level: level_no,
                    missing: prev.clone(),
                })?;
            let idx = *label_index.entry((*next).to_owned()).or_insert_with(|| {
                labels.push((*next).to_owned());
                (labels.len() - 1) as u32
            });
            prev_to_new.push(idx);
        }
        // Compose: ground -> prev level -> new level.
        let of_ground = match self.levels.last() {
            Some(level) => level
                .of_ground
                .iter()
                .map(|&p| prev_to_new[p as usize])
                .collect(),
            None => prev_to_new,
        };
        self.levels.push(CatLevel { labels, of_ground });
        Ok(self)
    }

    /// Appends a top level mapping everything to the single label `label`
    /// (conventionally `*` — total suppression of the attribute).
    pub fn push_top(self, label: &str) -> Result<Self> {
        let prev: Vec<String> = match self.levels.last() {
            Some(level) => level.labels.clone(),
            None => self.ground.clone(),
        };
        let pairs: Vec<(&str, &str)> = prev.iter().map(|p| (p.as_str(), label)).collect();
        self.push_level(pairs)
    }

    /// Builds levels by applying one function per level directly to ground
    /// values. Validates the coarsening property: values that share a label
    /// at level `l` must share a label at level `l + 1`.
    pub fn from_functions<S, F>(ground: Vec<S>, level_fns: &[F]) -> Result<Self>
    where
        S: Into<String>,
        F: Fn(&str) -> String,
    {
        let mut hierarchy = CatHierarchy::identity(ground)?;
        for f in level_fns {
            let pairs: Vec<(String, String)> = {
                let prev_labels: Vec<String> = match hierarchy.levels.last() {
                    Some(level) => level.labels.clone(),
                    None => hierarchy.ground.clone(),
                };
                // For a function of the ground value to induce a well-defined
                // map on the previous level's labels, all ground values under
                // one previous label must map to one new label.
                let mut label_of_prev: BTreeMap<String, String> = BTreeMap::new();
                for (gi, g) in hierarchy.ground.iter().enumerate() {
                    let prev = match hierarchy.levels.last() {
                        Some(level) => prev_labels[level.of_ground[gi] as usize].clone(),
                        None => g.clone(),
                    };
                    let new = f(g);
                    match label_of_prev.get(&prev) {
                        Some(existing) if *existing != new => {
                            return Err(Error::NotACoarsening {
                                level: hierarchy.levels.len() + 1,
                                detail: format!(
                                    "label `{prev}` maps to both `{existing}` and `{new}`"
                                ),
                            });
                        }
                        Some(_) => {}
                        None => {
                            label_of_prev.insert(prev, new);
                        }
                    }
                }
                label_of_prev.into_iter().collect()
            };
            let borrowed: Vec<(&str, &str)> = pairs
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            hierarchy = hierarchy.push_level(borrowed)?;
        }
        Ok(hierarchy)
    }

    /// The ground domain, in declaration order.
    pub fn ground(&self) -> &[String] {
        &self.ground
    }

    /// Number of domains in the DGH chain (ground included), i.e. valid
    /// levels are `0..n_levels()`.
    pub fn n_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Labels of the domain at `level` (level 0 is the ground domain).
    pub fn labels_at(&self, level: usize) -> Result<Vec<String>> {
        match level.checked_sub(1) {
            None => Ok(self.ground.clone()),
            Some(l) => {
                self.levels
                    .get(l)
                    .map(|lv| lv.labels.clone())
                    .ok_or(Error::LevelOutOfRange {
                        level,
                        n_levels: self.n_levels(),
                    })
            }
        }
    }

    /// Position of `value` in the ground domain, if present.
    pub fn ground_index(&self, value: &str) -> Option<usize> {
        self.ground.iter().position(|g| g == value)
    }

    /// Number of labels in the domain at `level` (level 0 is the ground
    /// domain).
    pub fn n_labels_at(&self, level: usize) -> Result<usize> {
        match level.checked_sub(1) {
            None => Ok(self.ground.len()),
            Some(l) => self
                .levels
                .get(l)
                .map(|lv| lv.labels.len())
                .ok_or(Error::LevelOutOfRange {
                    level,
                    n_levels: self.n_levels(),
                }),
        }
    }

    /// The ground-code → label-code map of `level`: entry `g` is the code
    /// (index into [`Self::labels_at`]) that ground value `g` generalizes to.
    /// Level 0 is the identity map.
    ///
    /// This is the DGH as pure code arithmetic — the basis of the
    /// node-evaluation fast path, which recodes columns by a single indexed
    /// load per row instead of string-level [`Self::generalize`] calls.
    pub fn code_map_at(&self, level: usize) -> Result<Vec<u32>> {
        match level.checked_sub(1) {
            None => Ok((0..self.ground.len() as u32).collect()),
            Some(l) => {
                self.levels
                    .get(l)
                    .map(|lv| lv.of_ground.clone())
                    .ok_or(Error::LevelOutOfRange {
                        level,
                        n_levels: self.n_levels(),
                    })
            }
        }
    }

    /// Generalizes one ground value to its label at `level`.
    pub fn generalize(&self, value: &str, level: usize) -> Result<String> {
        let gi = self
            .ground
            .iter()
            .position(|g| g == value)
            .ok_or_else(|| Error::UnknownValue(value.to_owned()))?;
        match level.checked_sub(1) {
            None => Ok(value.to_owned()),
            Some(l) => {
                let lv = self.levels.get(l).ok_or(Error::LevelOutOfRange {
                    level,
                    n_levels: self.n_levels(),
                })?;
                Ok(lv.labels[lv.of_ground[gi] as usize].clone())
            }
        }
    }
}

/// One generalized level of an integer hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntLevel {
    /// Half-open bins: `(-inf, cuts[0])`, `[cuts[0], cuts[1])`, ...,
    /// `[cuts[last], +inf)`. `labels.len()` must equal `cuts.len() + 1`.
    Ranges {
        /// Ascending cut points.
        cuts: Vec<i64>,
        /// One label per bin.
        labels: Vec<String>,
    },
    /// Everything maps to one label (total suppression).
    Single(String),
}

impl IntLevel {
    fn n_bins(&self) -> usize {
        match self {
            IntLevel::Ranges { labels, .. } => labels.len(),
            IntLevel::Single(_) => 1,
        }
    }

    fn label_of(&self, v: i64) -> &str {
        match self {
            IntLevel::Ranges { cuts, labels } => {
                let bin = cuts.partition_point(|&c| c <= v);
                &labels[bin]
            }
            IntLevel::Single(label) => label,
        }
    }
}

/// A generalization hierarchy over 64-bit integers.
///
/// Level 0 is the identity (the raw integers); higher levels coarsen into
/// ranges and finally a single group. Consecutive range levels must be
/// nested: every cut of level `l + 1` must also be a cut of level `l`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntHierarchy {
    levels: Vec<IntLevel>,
}

impl IntHierarchy {
    /// Builds an integer hierarchy from its generalized levels (level 0, the
    /// identity, is implicit). Validates nesting and label arity.
    pub fn new(levels: Vec<IntLevel>) -> Result<Self> {
        for (i, level) in levels.iter().enumerate() {
            if let IntLevel::Ranges { cuts, labels } = level {
                if labels.len() != cuts.len() + 1 {
                    return Err(Error::Invalid(format!(
                        "level {}: {} cuts need {} labels, got {}",
                        i + 1,
                        cuts.len(),
                        cuts.len() + 1,
                        labels.len()
                    )));
                }
                if cuts.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(Error::Invalid(format!(
                        "level {}: cuts must be strictly ascending",
                        i + 1
                    )));
                }
                if cuts.is_empty() {
                    return Err(Error::Invalid(format!(
                        "level {}: a Ranges level needs at least one cut",
                        i + 1
                    )));
                }
            }
        }
        for (i, pair) in levels.windows(2).enumerate() {
            match (&pair[0], &pair[1]) {
                (IntLevel::Ranges { cuts: fine, .. }, IntLevel::Ranges { cuts: coarse, .. }) => {
                    for c in coarse {
                        if !fine.contains(c) {
                            return Err(Error::NotACoarsening {
                                level: i + 2,
                                detail: format!("cut {c} is not a cut of level {}", i + 1),
                            });
                        }
                    }
                    if coarse.len() >= fine.len() {
                        return Err(Error::NotACoarsening {
                            level: i + 2,
                            detail: "coarser level must have strictly fewer bins".into(),
                        });
                    }
                }
                (IntLevel::Single(_), IntLevel::Ranges { .. }) => {
                    return Err(Error::NotACoarsening {
                        level: i + 2,
                        detail: "ranges cannot follow total suppression".into(),
                    });
                }
                (IntLevel::Ranges { .. }, IntLevel::Single(_))
                | (IntLevel::Single(_), IntLevel::Single(_)) => {}
            }
        }
        Ok(IntHierarchy { levels })
    }

    /// Number of domains in the DGH chain (identity level included).
    pub fn n_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Number of bins at `level` (`None` at level 0, whose domain is ℤ).
    pub fn n_bins_at(&self, level: usize) -> Option<usize> {
        level
            .checked_sub(1)
            .and_then(|l| self.levels.get(l))
            .map(IntLevel::n_bins)
    }

    /// Bin index of `v` at `level` (`level >= 1`): the position of its label
    /// in [`Self::bin_labels_at`]. Pure integer arithmetic — no label
    /// allocation.
    pub fn bin_of(&self, v: i64, level: usize) -> Result<usize> {
        let l = level.checked_sub(1).ok_or(Error::LevelOutOfRange {
            level,
            n_levels: self.n_levels(),
        })?;
        let lv = self.levels.get(l).ok_or(Error::LevelOutOfRange {
            level,
            n_levels: self.n_levels(),
        })?;
        Ok(match lv {
            IntLevel::Ranges { cuts, .. } => cuts.partition_point(|&c| c <= v),
            IntLevel::Single(_) => 0,
        })
    }

    /// Labels of the bins at `level` (`level >= 1`), in bin order.
    pub fn bin_labels_at(&self, level: usize) -> Result<Vec<&str>> {
        let l = level.checked_sub(1).ok_or(Error::LevelOutOfRange {
            level,
            n_levels: self.n_levels(),
        })?;
        let lv = self.levels.get(l).ok_or(Error::LevelOutOfRange {
            level,
            n_levels: self.n_levels(),
        })?;
        Ok(match lv {
            IntLevel::Ranges { labels, .. } => labels.iter().map(String::as_str).collect(),
            IntLevel::Single(label) => vec![label.as_str()],
        })
    }

    /// Generalizes `v` to its label at `level`.
    pub fn generalize(&self, v: i64, level: usize) -> Result<Value> {
        match level.checked_sub(1) {
            None => Ok(Value::Int(v)),
            Some(l) => {
                let lv = self.levels.get(l).ok_or(Error::LevelOutOfRange {
                    level,
                    n_levels: self.n_levels(),
                })?;
                Ok(Value::Text(lv.label_of(v).to_owned()))
            }
        }
    }
}

impl CatHierarchy {
    /// Serializes to the spec-file JSON shape:
    /// `{"type": "cat", "ground": [...], "levels": [{"labels": [...],
    /// "of_ground": [...]}, ...]}`.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set("type", JsonValue::Str("cat".into()));
        out.set(
            "ground",
            JsonValue::Array(
                self.ground
                    .iter()
                    .map(|g| JsonValue::Str(g.clone()))
                    .collect(),
            ),
        );
        out.set(
            "levels",
            JsonValue::Array(
                self.levels
                    .iter()
                    .map(|level| {
                        let mut l = JsonValue::object();
                        l.set(
                            "labels",
                            JsonValue::Array(
                                level
                                    .labels
                                    .iter()
                                    .map(|s| JsonValue::Str(s.clone()))
                                    .collect(),
                            ),
                        );
                        l.set(
                            "of_ground",
                            JsonValue::Array(
                                level
                                    .of_ground
                                    .iter()
                                    .map(|&c| JsonValue::Int(c as i64))
                                    .collect(),
                            ),
                        );
                        l
                    })
                    .collect(),
            ),
        );
        out
    }

    /// Parses the [`Self::to_json`] shape, re-validating every invariant
    /// (unique non-empty ground, in-range codes, coarsening between levels).
    pub fn from_json(value: &JsonValue) -> Result<CatHierarchy> {
        let invalid = |e: psens_microdata::JsonError| Error::Invalid(e.to_string());
        let ground: Vec<String> = value
            .require("ground")
            .map_err(invalid)?
            .as_array()
            .map_err(invalid)?
            .iter()
            .map(|v| v.as_str().map(str::to_owned))
            .collect::<std::result::Result<_, _>>()
            .map_err(invalid)?;
        let mut levels = Vec::new();
        for entry in value
            .require("levels")
            .map_err(invalid)?
            .as_array()
            .map_err(invalid)?
        {
            let labels: Vec<String> = entry
                .require("labels")
                .map_err(invalid)?
                .as_array()
                .map_err(invalid)?
                .iter()
                .map(|v| v.as_str().map(str::to_owned))
                .collect::<std::result::Result<_, _>>()
                .map_err(invalid)?;
            let of_ground: Vec<u32> = entry
                .require("of_ground")
                .map_err(invalid)?
                .as_array()
                .map_err(invalid)?
                .iter()
                .map(|v| {
                    v.as_u64().and_then(|n| {
                        u32::try_from(n)
                            .map_err(|_| psens_microdata::JsonError::shape("code out of range"))
                    })
                })
                .collect::<std::result::Result<_, _>>()
                .map_err(invalid)?;
            levels.push(CatLevel { labels, of_ground });
        }
        Self::from_parts(ground, levels)
    }

    /// Rebuilds a hierarchy from raw parts, enforcing the construction-time
    /// invariants that [`Self::identity`]/[`Self::push_level`] guarantee.
    fn from_parts(ground: Vec<String>, levels: Vec<CatLevel>) -> Result<CatHierarchy> {
        if ground.is_empty() {
            return Err(Error::Invalid("empty ground domain".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for g in &ground {
            if !seen.insert(g.clone()) {
                return Err(Error::Invalid(format!("duplicate ground value `{g}`")));
            }
        }
        // Level 0 = the identity map; each level must refine-coarsen the one
        // below: grounds sharing a code at level l share one at level l + 1.
        let identity: Vec<u32> = (0..ground.len() as u32).collect();
        let mut prev = &identity;
        for (l, level) in levels.iter().enumerate() {
            if level.of_ground.len() != ground.len() {
                return Err(Error::Invalid(format!(
                    "level {}: of_ground has {} entries for {} ground values",
                    l + 1,
                    level.of_ground.len(),
                    ground.len()
                )));
            }
            if level.labels.is_empty() {
                return Err(Error::Invalid(format!("level {}: no labels", l + 1)));
            }
            if let Some(&code) = level
                .of_ground
                .iter()
                .find(|&&c| c as usize >= level.labels.len())
            {
                return Err(Error::Invalid(format!(
                    "level {}: code {code} exceeds {} labels",
                    l + 1,
                    level.labels.len()
                )));
            }
            let mut coarser_of: Vec<Option<u32>> =
                vec![None; prev.iter().map(|&c| c as usize).max().unwrap_or(0) + 1];
            for (g, (&fine, &coarse)) in prev.iter().zip(&level.of_ground).enumerate() {
                match coarser_of[fine as usize] {
                    Some(existing) if existing != coarse => {
                        return Err(Error::NotACoarsening {
                            level: l + 1,
                            detail: format!(
                                "ground value `{}` splits a level-{l} class",
                                ground[g]
                            ),
                        });
                    }
                    Some(_) => {}
                    None => coarser_of[fine as usize] = Some(coarse),
                }
            }
            prev = &level.of_ground;
        }
        Ok(CatHierarchy { ground, levels })
    }
}

impl IntHierarchy {
    /// Serializes to the spec-file JSON shape: `{"type": "int", "levels":
    /// [{"cuts": [...], "labels": [...]} | {"single": "*"}]}` (level 0, the
    /// identity over all integers, is implicit).
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set("type", JsonValue::Str("int".into()));
        out.set(
            "levels",
            JsonValue::Array(
                self.levels
                    .iter()
                    .map(|level| {
                        let mut l = JsonValue::object();
                        match level {
                            IntLevel::Ranges { cuts, labels } => {
                                l.set(
                                    "cuts",
                                    JsonValue::Array(
                                        cuts.iter().map(|&c| JsonValue::Int(c)).collect(),
                                    ),
                                );
                                l.set(
                                    "labels",
                                    JsonValue::Array(
                                        labels.iter().map(|s| JsonValue::Str(s.clone())).collect(),
                                    ),
                                );
                            }
                            IntLevel::Single(label) => {
                                l.set("single", JsonValue::Str(label.clone()));
                            }
                        }
                        l
                    })
                    .collect(),
            ),
        );
        out
    }

    /// Parses the [`Self::to_json`] shape; validation (cut nesting, label
    /// arity) is re-run by [`Self::new`].
    pub fn from_json(value: &JsonValue) -> Result<IntHierarchy> {
        let invalid = |e: psens_microdata::JsonError| Error::Invalid(e.to_string());
        let mut levels = Vec::new();
        for entry in value
            .require("levels")
            .map_err(invalid)?
            .as_array()
            .map_err(invalid)?
        {
            if let Some(single) = entry.get("single") {
                levels.push(IntLevel::Single(
                    single.as_str().map_err(invalid)?.to_owned(),
                ));
                continue;
            }
            let cuts: Vec<i64> = entry
                .require("cuts")
                .map_err(invalid)?
                .as_array()
                .map_err(invalid)?
                .iter()
                .map(JsonValue::as_i64)
                .collect::<std::result::Result<_, _>>()
                .map_err(invalid)?;
            let labels: Vec<String> = entry
                .require("labels")
                .map_err(invalid)?
                .as_array()
                .map_err(invalid)?
                .iter()
                .map(|v| v.as_str().map(str::to_owned))
                .collect::<std::result::Result<_, _>>()
                .map_err(invalid)?;
            levels.push(IntLevel::Ranges { cuts, labels });
        }
        IntHierarchy::new(levels)
    }
}

/// A generalization hierarchy for either attribute kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Hierarchy {
    /// Hierarchy over an enumerated categorical domain.
    Cat(CatHierarchy),
    /// Hierarchy over integers.
    Int(IntHierarchy),
}

impl Hierarchy {
    /// Number of domains in the DGH chain; valid levels are `0..n_levels()`.
    pub fn n_levels(&self) -> usize {
        match self {
            Hierarchy::Cat(h) => h.n_levels(),
            Hierarchy::Int(h) => h.n_levels(),
        }
    }

    /// The highest level (`n_levels() - 1`).
    pub fn max_level(&self) -> usize {
        self.n_levels() - 1
    }

    /// Generalizes a single value. Missing stays missing at every level.
    pub fn generalize(&self, value: &Value, level: usize) -> Result<Value> {
        match (self, value) {
            (_, Value::Missing) => Ok(Value::Missing),
            (Hierarchy::Cat(h), Value::Text(s)) => Ok(Value::Text(h.generalize(s, level)?)),
            (Hierarchy::Int(h), Value::Int(v)) => h.generalize(*v, level),
            (Hierarchy::Cat(_), other) => Err(Error::KindMismatch {
                expected: "text",
                found: other.kind_name(),
            }),
            (Hierarchy::Int(_), other) => Err(Error::KindMismatch {
                expected: "integers",
                found: other.kind_name(),
            }),
        }
    }

    /// Recodes a whole column to `level`.
    ///
    /// Level 0 returns a clone. Higher levels always produce a categorical
    /// column of ancestor labels (an integer column generalized to ranges
    /// becomes text like `"20-29"`). The recode is a code-to-code remap:
    /// ground values are resolved through the dictionary (or a value cache
    /// for integers) once, not per row.
    pub fn apply(&self, column: &Column, level: usize) -> Result<Column> {
        if level == 0 {
            if level >= self.n_levels() {
                return Err(Error::LevelOutOfRange {
                    level,
                    n_levels: self.n_levels(),
                });
            }
            return Ok(column.clone());
        }
        match (self, column) {
            (Hierarchy::Cat(h), Column::Cat(col)) => {
                // Map each *used* dictionary code to its ancestor label's
                // code, lazily: gathered columns may carry dictionary entries
                // with zero occurrences, which need not be in the hierarchy.
                let mut target = Dictionary::new();
                let source = col.dictionary();
                let mut remap: Vec<Option<u32>> = vec![None; source.len()];
                let mut out = CatColumn::new();
                for row in 0..col.len() {
                    match col.code_at(row) {
                        Some(code) => {
                            let mapped = match remap[code as usize] {
                                Some(m) => m,
                                None => {
                                    let text =
                                        source.text(code).expect("code from this dictionary");
                                    let label = h.generalize(text, level)?;
                                    let m = target.intern(&label);
                                    remap[code as usize] = Some(m);
                                    m
                                }
                            };
                            let label = target.text(mapped).expect("interned above").to_owned();
                            out.push(&label);
                        }
                        None => out.push_missing(),
                    }
                }
                Ok(Column::Cat(out))
            }
            (Hierarchy::Int(h), Column::Int(col)) => {
                let mut cache: std::collections::HashMap<i64, String> = Default::default();
                let mut out = CatColumn::new();
                for row in 0..col.len() {
                    match col.get(row) {
                        Some(v) => {
                            let label = match cache.entry(v) {
                                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    match h.generalize(v, level)? {
                                        Value::Text(s) => e.insert(s),
                                        _ => unreachable!("level >= 1 yields text"),
                                    }
                                }
                            };
                            out.push(label);
                        }
                        None => out.push_missing(),
                    }
                }
                Ok(Column::Cat(out))
            }
            (Hierarchy::Cat(_), Column::Int(_)) => Err(Error::KindMismatch {
                expected: "text",
                found: "integer",
            }),
            (Hierarchy::Int(_), Column::Cat(_)) => Err(Error::KindMismatch {
                expected: "integers",
                found: "text",
            }),
        }
    }

    /// Serializes to the spec-file JSON shape; the `"type"` field (`"cat"` or
    /// `"int"`) discriminates the variant.
    pub fn to_json(&self) -> JsonValue {
        match self {
            Hierarchy::Cat(h) => h.to_json(),
            Hierarchy::Int(h) => h.to_json(),
        }
    }

    /// Parses the [`Self::to_json`] shape, re-validating all structural
    /// invariants of the underlying hierarchy.
    pub fn from_json(value: &JsonValue) -> Result<Hierarchy> {
        let invalid = |e: psens_microdata::JsonError| Error::Invalid(e.to_string());
        match value
            .require("type")
            .map_err(invalid)?
            .as_str()
            .map_err(invalid)?
        {
            "cat" => Ok(Hierarchy::Cat(CatHierarchy::from_json(value)?)),
            "int" => Ok(Hierarchy::Int(IntHierarchy::from_json(value)?)),
            other => Err(Error::Invalid(format!("unknown hierarchy type `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::IntColumn;

    /// The paper's Figure 1 ZipCode hierarchy: 5-digit -> 2-digit prefix -> *.
    fn zip_hierarchy() -> CatHierarchy {
        crate::builders::prefix_hierarchy(
            vec!["41076", "41099", "43102", "43103", "48201", "48202"],
            &[2, 0],
        )
        .unwrap()
    }

    #[test]
    fn zip_levels() {
        let h = zip_hierarchy();
        assert_eq!(h.n_levels(), 3);
        assert_eq!(h.generalize("41076", 0).unwrap(), "41076");
        assert_eq!(h.generalize("41076", 1).unwrap(), "41***");
        assert_eq!(h.generalize("41099", 1).unwrap(), "41***");
        assert_eq!(h.generalize("43102", 1).unwrap(), "43***");
        assert_eq!(h.generalize("43102", 2).unwrap(), "*****");
        assert_eq!(h.labels_at(1).unwrap(), vec!["41***", "43***", "48***"]);
        assert_eq!(h.labels_at(2).unwrap(), vec!["*****"]);
    }

    #[test]
    fn unknown_value_and_level_errors() {
        let h = zip_hierarchy();
        assert!(matches!(
            h.generalize("99999", 1),
            Err(Error::UnknownValue(_))
        ));
        assert!(matches!(
            h.generalize("41076", 3),
            Err(Error::LevelOutOfRange { .. })
        ));
        assert!(matches!(h.labels_at(9), Err(Error::LevelOutOfRange { .. })));
    }

    #[test]
    fn chained_levels_via_push() {
        // The paper's Figure 1 Sex hierarchy: {M, F} -> {*}.
        let h = CatHierarchy::identity(["M", "F"])
            .unwrap()
            .push_top("*")
            .unwrap();
        assert_eq!(h.n_levels(), 2);
        assert_eq!(h.generalize("M", 1).unwrap(), "*");
        assert_eq!(h.generalize("F", 1).unwrap(), "*");
    }

    #[test]
    fn incomplete_level_rejected() {
        let result = CatHierarchy::identity(["M", "F"])
            .unwrap()
            .push_level([("M", "*")]);
        assert!(matches!(result, Err(Error::IncompleteLevel { .. })));
    }

    #[test]
    fn duplicate_ground_rejected() {
        assert!(matches!(
            CatHierarchy::identity(["M", "M"]),
            Err(Error::Invalid(_))
        ));
        assert!(matches!(
            CatHierarchy::identity(Vec::<String>::new()),
            Err(Error::Invalid(_))
        ));
    }

    #[test]
    fn non_coarsening_function_rejected() {
        // Level 1 groups by first char, level 2 tries to split by last char.
        let fns: Vec<fn(&str) -> String> = vec![|s| s[..1].to_owned(), |s| s[1..].to_owned()];
        let result = CatHierarchy::from_functions(vec!["ab", "ac"], &fns);
        assert!(matches!(result, Err(Error::NotACoarsening { .. })));
    }

    fn age_hierarchy() -> IntHierarchy {
        // Paper Table 7: Age -> 10-year ranges -> {<50, >=50} -> one group.
        IntHierarchy::new(vec![
            IntLevel::Ranges {
                cuts: vec![20, 30, 40, 50, 60, 70, 80, 90],
                labels: vec![
                    "<20", "20-29", "30-39", "40-49", "50-59", "60-69", "70-79", "80-89", ">=90",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
            },
            IntLevel::Ranges {
                cuts: vec![50],
                labels: vec!["<50".into(), ">=50".into()],
            },
            IntLevel::Single("*".into()),
        ])
        .unwrap()
    }

    #[test]
    fn int_generalization() {
        let h = age_hierarchy();
        assert_eq!(h.n_levels(), 4);
        assert_eq!(h.generalize(29, 0).unwrap(), Value::Int(29));
        assert_eq!(h.generalize(29, 1).unwrap(), Value::Text("20-29".into()));
        assert_eq!(h.generalize(17, 1).unwrap(), Value::Text("<20".into()));
        assert_eq!(h.generalize(90, 1).unwrap(), Value::Text(">=90".into()));
        assert_eq!(h.generalize(49, 2).unwrap(), Value::Text("<50".into()));
        assert_eq!(h.generalize(50, 2).unwrap(), Value::Text(">=50".into()));
        assert_eq!(h.generalize(70, 3).unwrap(), Value::Text("*".into()));
        assert_eq!(h.n_bins_at(1), Some(9));
        assert_eq!(h.n_bins_at(2), Some(2));
        assert_eq!(h.n_bins_at(3), Some(1));
        assert_eq!(h.n_bins_at(0), None);
    }

    #[test]
    fn int_validation() {
        // Non-nested cuts rejected.
        let result = IntHierarchy::new(vec![
            IntLevel::Ranges {
                cuts: vec![20, 40],
                labels: vec!["a".into(), "b".into(), "c".into()],
            },
            IntLevel::Ranges {
                cuts: vec![30],
                labels: vec!["x".into(), "y".into()],
            },
        ]);
        assert!(matches!(result, Err(Error::NotACoarsening { .. })));
        // Label arity checked.
        let result = IntHierarchy::new(vec![IntLevel::Ranges {
            cuts: vec![20],
            labels: vec!["only".into()],
        }]);
        assert!(matches!(result, Err(Error::Invalid(_))));
        // Descending cuts rejected.
        let result = IntHierarchy::new(vec![IntLevel::Ranges {
            cuts: vec![40, 20],
            labels: vec!["a".into(), "b".into(), "c".into()],
        }]);
        assert!(matches!(result, Err(Error::Invalid(_))));
        // Ranges after Single rejected.
        let result = IntHierarchy::new(vec![
            IntLevel::Single("*".into()),
            IntLevel::Ranges {
                cuts: vec![1],
                labels: vec!["a".into(), "b".into()],
            },
        ]);
        assert!(matches!(result, Err(Error::NotACoarsening { .. })));
    }

    #[test]
    fn hierarchy_enum_dispatch() {
        let h = Hierarchy::Int(age_hierarchy());
        assert_eq!(h.max_level(), 3);
        assert_eq!(
            h.generalize(&Value::Int(35), 1).unwrap(),
            Value::Text("30-39".into())
        );
        assert_eq!(h.generalize(&Value::Missing, 2).unwrap(), Value::Missing);
        assert!(matches!(
            h.generalize(&Value::Text("x".into()), 1),
            Err(Error::KindMismatch { .. })
        ));
    }

    #[test]
    fn apply_to_int_column() {
        let h = Hierarchy::Int(age_hierarchy());
        let mut col = IntColumn::new();
        for v in [25, 51, 25] {
            col.push(v);
        }
        col.push_missing();
        let col = Column::Int(col);
        let out = h.apply(&col, 2).unwrap();
        assert_eq!(out.value(0), Value::Text("<50".into()));
        assert_eq!(out.value(1), Value::Text(">=50".into()));
        assert_eq!(out.value(3), Value::Missing);
        // Level 0 clones.
        let same = h.apply(&col, 0).unwrap();
        assert_eq!(same, col);
    }

    #[test]
    fn apply_to_cat_column() {
        let h = Hierarchy::Cat(zip_hierarchy());
        let col = Column::Cat(CatColumn::from_values(["41076", "43102", "41099"]));
        let out = h.apply(&col, 1).unwrap();
        assert_eq!(out.value(0), Value::Text("41***".into()));
        assert_eq!(out.value(1), Value::Text("43***".into()));
        assert_eq!(out.value(2), Value::Text("41***".into()));
        assert!(matches!(
            h.apply(&Column::Int(IntColumn::from_values([1])), 1),
            Err(Error::KindMismatch { .. })
        ));
    }

    #[test]
    fn apply_unknown_ground_value_errors() {
        let h = Hierarchy::Cat(zip_hierarchy());
        let col = Column::Cat(CatColumn::from_values(["00000"]));
        assert!(matches!(h.apply(&col, 1), Err(Error::UnknownValue(_))));
    }

    #[test]
    fn json_roundtrip() {
        let h = Hierarchy::Int(age_hierarchy());
        let json = h.to_json().to_json();
        let back = Hierarchy::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(h, back);
        let h = Hierarchy::Cat(zip_hierarchy());
        let json = h.to_json().to_json_pretty();
        let back = Hierarchy::from_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn from_json_rejects_invalid_hierarchies() {
        // A ground value that splits a coarser class: "a" and "b" share a
        // level-1 label but diverge at level 2.
        let bad = r#"{"type": "cat", "ground": ["a", "b"],
            "levels": [{"labels": ["ab"], "of_ground": [0, 0]},
                       {"labels": ["x", "y"], "of_ground": [0, 1]}]}"#;
        let err = Hierarchy::from_json(&JsonValue::parse(bad).unwrap()).unwrap_err();
        assert!(
            matches!(err, Error::NotACoarsening { level: 2, .. }),
            "{err}"
        );

        let out_of_range = r#"{"type": "cat", "ground": ["a"],
            "levels": [{"labels": ["x"], "of_ground": [3]}]}"#;
        let err = Hierarchy::from_json(&JsonValue::parse(out_of_range).unwrap()).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "{err}");

        let dup = r#"{"type": "cat", "ground": ["a", "a"], "levels": []}"#;
        let err = Hierarchy::from_json(&JsonValue::parse(dup).unwrap()).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "{err}");

        let unknown = r#"{"type": "tree", "levels": []}"#;
        let err = Hierarchy::from_json(&JsonValue::parse(unknown).unwrap()).unwrap_err();
        assert!(matches!(err, Error::Invalid(_)), "{err}");
    }
}
