//! Error types for hierarchy construction and application.

use std::fmt;

/// Errors produced when building or applying generalization hierarchies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A requested generalization level exceeds the hierarchy's height.
    LevelOutOfRange {
        /// Requested level.
        level: usize,
        /// Number of levels the hierarchy defines (valid levels are
        /// `0..n_levels`).
        n_levels: usize,
    },
    /// A ground value was not found in the hierarchy's domain.
    UnknownValue(String),
    /// A level mapping does not cover some label of the previous level.
    IncompleteLevel {
        /// Level whose mapping is incomplete.
        level: usize,
        /// A label left unmapped.
        missing: String,
    },
    /// Consecutive levels are not nested (a finer bin straddles two coarser
    /// bins), so the chain is not a valid domain generalization hierarchy.
    NotACoarsening {
        /// Level at which nesting fails.
        level: usize,
        /// Description of the offending boundary or label.
        detail: String,
    },
    /// A hierarchy was applied to a column of the wrong kind.
    KindMismatch {
        /// What the hierarchy generalizes.
        expected: &'static str,
        /// What the column stores.
        found: &'static str,
    },
    /// A hierarchy definition was structurally invalid.
    Invalid(String),
    /// Error bubbled up from the microdata layer.
    Microdata(psens_microdata::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::LevelOutOfRange { level, n_levels } => write!(
                f,
                "level {level} out of range; hierarchy has {n_levels} levels"
            ),
            Error::UnknownValue(v) => write!(f, "value `{v}` is not in the hierarchy's domain"),
            Error::IncompleteLevel { level, missing } => {
                write!(f, "level {level} does not map label `{missing}`")
            }
            Error::NotACoarsening { level, detail } => {
                write!(f, "level {level} is not a coarsening: {detail}")
            }
            Error::KindMismatch { expected, found } => {
                write!(
                    f,
                    "hierarchy generalizes {expected} but column holds {found}"
                )
            }
            Error::Invalid(msg) => write!(f, "invalid hierarchy: {msg}"),
            Error::Microdata(e) => write!(f, "microdata error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Microdata(e) => Some(e),
            _ => None,
        }
    }
}

impl From<psens_microdata::Error> for Error {
    fn from(e: psens_microdata::Error) -> Self {
        Error::Microdata(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::LevelOutOfRange {
                    level: 4,
                    n_levels: 3,
                },
                "level 4",
            ),
            (Error::UnknownValue("48210".into()), "48210"),
            (
                Error::IncompleteLevel {
                    level: 2,
                    missing: "Widowed".into(),
                },
                "Widowed",
            ),
            (
                Error::NotACoarsening {
                    level: 1,
                    detail: "cut 25 splits bin 20-29".into(),
                },
                "not a coarsening",
            ),
            (
                Error::KindMismatch {
                    expected: "integers",
                    found: "text",
                },
                "generalizes integers",
            ),
            (Error::Invalid("empty domain".into()), "empty domain"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn microdata_error_converts_with_source() {
        let inner = psens_microdata::Error::UnknownAttribute("Zip".into());
        let err: Error = inner.into();
        assert!(err.to_string().contains("Zip"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
