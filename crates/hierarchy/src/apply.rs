//! Binding hierarchies to a table's key attributes and applying lattice
//! nodes — *full-domain generalization* (a.k.a. global recoding).

use crate::error::{Error, Result};
use crate::hierarchy::Hierarchy;
use crate::lattice::{Lattice, Node};
use psens_microdata::{Attribute, Kind, Schema, Table};

/// The quasi-identifier space: an ordered list of key attributes, each with
/// its generalization hierarchy. The order fixes the meaning of lattice node
/// components.
#[derive(Debug, Clone, PartialEq)]
pub struct QiSpace {
    entries: Vec<(String, Hierarchy)>,
}

impl QiSpace {
    /// Builds a QI space; at least one attribute is required.
    pub fn new(entries: Vec<(String, Hierarchy)>) -> Result<Self> {
        if entries.is_empty() {
            return Err(Error::Invalid(
                "QI space needs at least one attribute".into(),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for (name, _) in &entries {
            if !seen.insert(name.clone()) {
                return Err(Error::Invalid(format!("duplicate QI attribute `{name}`")));
            }
        }
        Ok(QiSpace { entries })
    }

    /// Number of QI attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the space has no attributes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// QI attribute names, in lattice order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Hierarchy of the `i`-th QI attribute.
    pub fn hierarchy(&self, i: usize) -> &Hierarchy {
        &self.entries[i].1
    }

    /// The generalization lattice spanned by the hierarchies.
    pub fn lattice(&self) -> Lattice {
        Lattice::new(
            self.entries
                .iter()
                .map(|(_, h)| u8::try_from(h.max_level()).expect("hierarchy fits u8 levels"))
                .collect(),
        )
    }

    /// Renders a node in the paper's style, e.g. `<A1, M1, R2, S1>` — first
    /// letter of each attribute followed by its level.
    pub fn describe_node(&self, node: &Node) -> String {
        let parts: Vec<String> = self
            .entries
            .iter()
            .zip(node.levels())
            .map(|((name, _), level)| {
                let initial = name.chars().next().unwrap_or('?').to_ascii_uppercase();
                format!("{initial}{level}")
            })
            .collect();
        format!("<{}>", parts.join(", "))
    }

    /// Checks that `node` has one level per QI attribute, each within its
    /// hierarchy's height — without materializing the whole lattice.
    pub fn validate_node(&self, node: &Node) -> Result<()> {
        if node.levels().len() != self.len() {
            return Err(Error::Invalid(format!(
                "node {node} is outside the {}-attribute lattice",
                self.len()
            )));
        }
        for ((_, hierarchy), &level) in self.entries.iter().zip(node.levels()) {
            if level as usize > hierarchy.max_level() {
                return Err(Error::Invalid(format!(
                    "node {node} is outside the {}-attribute lattice",
                    self.len()
                )));
            }
        }
        Ok(())
    }

    /// Applies full-domain generalization: every QI attribute of `table` is
    /// recoded to the level `node` assigns it. Non-QI columns pass through
    /// untouched. Attributes generalized above level 0 become categorical in
    /// the masked schema.
    pub fn apply(&self, table: &Table, node: &Node) -> Result<Table> {
        self.validate_node(node)?;
        let mut attrs: Vec<Attribute> = table.schema().attributes().to_vec();
        let mut columns = table.columns().to_vec();
        for ((name, hierarchy), &level) in self.entries.iter().zip(node.levels()) {
            let idx = table.schema().index_of(name)?;
            let recoded = hierarchy.apply(&columns[idx], level as usize)?;
            let attr = &attrs[idx];
            let kind = if level == 0 { attr.kind() } else { Kind::Cat };
            attrs[idx] = Attribute::new(attr.name(), kind, attr.role());
            columns[idx] = recoded;
        }
        let schema = Schema::new(attrs)?;
        Ok(Table::new(schema, columns)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{CatHierarchy, IntHierarchy, IntLevel};
    use psens_microdata::{table_from_str_rows, Attribute, GroupBy, Schema, Value};

    fn sex_hierarchy() -> Hierarchy {
        Hierarchy::Cat(
            CatHierarchy::identity(["M", "F"])
                .unwrap()
                .push_top("*")
                .unwrap(),
        )
    }

    fn zip_hierarchy() -> Hierarchy {
        Hierarchy::Cat(
            crate::builders::prefix_hierarchy(
                vec!["41076", "41099", "43102", "43103", "48201", "48202"],
                &[2, 0],
            )
            .unwrap(),
        )
    }

    fn age_hierarchy() -> Hierarchy {
        Hierarchy::Int(
            IntHierarchy::new(vec![
                IntLevel::Ranges {
                    cuts: vec![30, 40, 50],
                    labels: vec!["<30".into(), "30-39".into(), "40-49".into(), ">=50".into()],
                },
                IntLevel::Single("*".into()),
            ])
            .unwrap(),
        )
    }

    /// Figure 3's microdata plus an Age column for kind-change testing.
    fn table() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Sex"),
            Attribute::cat_key("ZipCode"),
            Attribute::int_key("Age"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["M", "41076", "25", "Flu"],
                &["F", "41099", "34", "HIV"],
                &["M", "41099", "47", "Flu"],
                &["M", "41076", "52", "Asthma"],
            ],
        )
        .unwrap()
    }

    fn qi_space() -> QiSpace {
        QiSpace::new(vec![
            ("Sex".into(), sex_hierarchy()),
            ("ZipCode".into(), zip_hierarchy()),
            ("Age".into(), age_hierarchy()),
        ])
        .unwrap()
    }

    #[test]
    fn lattice_shape() {
        let qi = qi_space();
        let gl = qi.lattice();
        assert_eq!(gl.max_levels(), &[1, 2, 2]);
        assert_eq!(gl.node_count(), 18);
        assert_eq!(gl.height(), 5);
    }

    #[test]
    fn apply_bottom_is_identity() {
        let qi = qi_space();
        let t = table();
        let masked = qi.apply(&t, &Node(vec![0, 0, 0])).unwrap();
        assert_eq!(masked, t);
    }

    #[test]
    fn apply_recodes_and_changes_kind() {
        let qi = qi_space();
        let t = table();
        let masked = qi.apply(&t, &Node(vec![1, 1, 1])).unwrap();
        assert_eq!(masked.value(0, 0), Value::Text("*".into()));
        assert_eq!(masked.value(0, 1), Value::Text("41***".into()));
        assert_eq!(masked.value(0, 2), Value::Text("<30".into()));
        assert_eq!(masked.value(3, 2), Value::Text(">=50".into()));
        // Age's schema kind flipped to categorical.
        assert_eq!(masked.schema().attribute(2).kind(), Kind::Cat);
        // Confidential attribute untouched.
        assert_eq!(masked.value(1, 3), Value::Text("HIV".into()));
        // Roles preserved.
        assert_eq!(masked.schema().key_indices(), t.schema().key_indices());
    }

    #[test]
    fn generalization_coarsens_groups() {
        let qi = qi_space();
        let t = table();
        let keys = t.schema().key_indices();
        let fine = GroupBy::compute(&qi.apply(&t, &Node(vec![0, 0, 0])).unwrap(), &keys);
        let coarse = GroupBy::compute(&qi.apply(&t, &Node(vec![1, 2, 2])).unwrap(), &keys);
        assert!(coarse.n_groups() <= fine.n_groups());
        assert_eq!(coarse.n_groups(), 1);
    }

    #[test]
    fn invalid_node_rejected() {
        let qi = qi_space();
        let t = table();
        assert!(qi.apply(&t, &Node(vec![9, 0, 0])).is_err());
        assert!(qi.apply(&t, &Node(vec![0, 0])).is_err());
    }

    #[test]
    fn missing_qi_attribute_in_table_errors() {
        let qi = QiSpace::new(vec![("Height".into(), age_hierarchy())]).unwrap();
        assert!(qi.apply(&table(), &Node(vec![1])).is_err());
    }

    #[test]
    fn qi_space_validation() {
        assert!(QiSpace::new(vec![]).is_err());
        assert!(QiSpace::new(vec![
            ("Sex".into(), sex_hierarchy()),
            ("Sex".into(), sex_hierarchy()),
        ])
        .is_err());
    }

    #[test]
    fn describe_node_matches_paper_style() {
        let qi = QiSpace::new(vec![
            ("Age".into(), age_hierarchy()),
            ("MaritalStatus".into(), sex_hierarchy()),
            ("Race".into(), sex_hierarchy()),
            ("Sex".into(), sex_hierarchy()),
        ])
        .unwrap();
        assert_eq!(
            qi.describe_node(&Node(vec![1, 1, 1, 1])),
            "<A1, M1, R1, S1>"
        );
        assert_eq!(qi.names(), vec!["Age", "MaritalStatus", "Race", "Sex"]);
    }
}
