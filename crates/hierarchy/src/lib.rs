//! # psens-hierarchy
//!
//! Generalization machinery for full-domain recoding (Samarati/Sweeney style),
//! as used by the p-sensitive k-anonymity paper (Truta & Vinay, ICDE 2006):
//!
//! - [`CatHierarchy`] / [`IntHierarchy`] / [`Hierarchy`]: domain and value
//!   generalization hierarchies (paper Figure 1) with validated coarsening.
//! - [`Lattice`] / [`Node`]: the product generalization lattice over all key
//!   attributes (paper Figure 2), with heights, strata, and domination order.
//! - [`QiSpace`]: binds hierarchies to named key attributes and applies a
//!   lattice node to a table (full-domain generalization / global recoding).
//! - [`builders`]: prefix hierarchies (ZipCode), uniform ranges and threshold
//!   splits (Age), grouping tables (MaritalStatus, Race), flat `{*}` tops.
//!
//! ## Example
//!
//! ```
//! use psens_hierarchy::{builders, Node, QiSpace};
//! use psens_microdata::{table_from_str_rows, Attribute, Schema, Value};
//!
//! let schema = Schema::new(vec![
//!     Attribute::cat_key("Sex"),
//!     Attribute::cat_key("ZipCode"),
//! ]).unwrap();
//! let table = table_from_str_rows(schema, &[
//!     &["M", "41076"],
//!     &["F", "41099"],
//! ]).unwrap();
//!
//! let qi = QiSpace::new(vec![
//!     ("Sex".into(), builders::flat_hierarchy(vec!["M", "F"]).unwrap()),
//!     ("ZipCode".into(), psens_hierarchy::Hierarchy::Cat(
//!         builders::prefix_hierarchy(vec!["41076", "41099"], &[2, 0]).unwrap())),
//! ]).unwrap();
//!
//! // The paper's Figure 2 lattice: 2 x 3 domains, height 3.
//! let lattice = qi.lattice();
//! assert_eq!(lattice.node_count(), 6);
//! assert_eq!(lattice.height(), 3);
//!
//! let masked = qi.apply(&table, &Node(vec![1, 1])).unwrap();
//! assert_eq!(masked.value(0, 0), Value::Text("*".into()));
//! assert_eq!(masked.value(0, 1), Value::Text("41***".into()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apply;
pub mod builders;
mod codemap;
mod error;
mod hierarchy;
mod lattice;

pub use apply::QiSpace;
pub use codemap::{AttrCodeMap, LevelCodeMap, QiCodeMaps};
pub use error::{Error, Result};
pub use hierarchy::{CatHierarchy, Hierarchy, IntHierarchy, IntLevel};
pub use lattice::{Lattice, Node};
