//! Convenience constructors for common hierarchy shapes.

use crate::error::Result;
use crate::hierarchy::{CatHierarchy, Hierarchy, IntHierarchy, IntLevel};

/// Prefix-truncation hierarchy for code-like strings (the paper's ZipCode
/// example, Figure 1). Each level keeps the first `keep[i]` characters and
/// pads the rest with `*` to the original length; `keep = 0` yields all `*`.
///
/// Values of differing lengths are supported; padding matches each value.
pub fn prefix_hierarchy<S: Into<String> + AsRef<str>>(
    ground: Vec<S>,
    keep: &[usize],
) -> Result<CatHierarchy> {
    /// One prefix-truncation level, boxed so levels with different `keep`
    /// lengths share a slice type.
    type LevelFn = Box<dyn Fn(&str) -> String>;
    let fns: Vec<LevelFn> = keep
        .iter()
        .map(|&k| {
            Box::new(move |s: &str| {
                let chars: Vec<char> = s.chars().collect();
                let kept = k.min(chars.len());
                let mut out: String = chars[..kept].iter().collect();
                for _ in kept..chars.len() {
                    out.push('*');
                }
                out
            }) as LevelFn
        })
        .collect();
    CatHierarchy::from_functions(ground, &fns)
}

/// Uniform-width range level for integers: cuts at `lo + width`, `lo + 2w`,
/// ..., up to (and excluding values `>= hi`), with labels `"<lo+w>"` style:
/// the leftmost bin is `"<{first}"`, interior bins `"{a}-{b}"` (inclusive),
/// and the rightmost `">={last}"`.
pub fn uniform_ranges(lo: i64, hi: i64, width: i64) -> IntLevel {
    assert!(width > 0, "width must be positive");
    assert!(hi > lo, "hi must exceed lo");
    let mut cuts = Vec::new();
    let mut c = lo + width;
    while c < hi {
        cuts.push(c);
        c += width;
    }
    if cuts.is_empty() {
        cuts.push(lo + width);
    }
    let mut labels = Vec::with_capacity(cuts.len() + 1);
    labels.push(format!("<{}", cuts[0]));
    for pair in cuts.windows(2) {
        labels.push(format!("{}-{}", pair[0], pair[1] - 1));
    }
    labels.push(format!(">={}", cuts[cuts.len() - 1]));
    IntLevel::Ranges { cuts, labels }
}

/// Threshold-split level: one cut, labels `"<c"` and `">=c"` (the paper's
/// Table 7 second Age generalization, "<50 and >50 groups").
pub fn threshold_split(cut: i64) -> IntLevel {
    IntLevel::Ranges {
        cuts: vec![cut],
        labels: vec![format!("<{cut}"), format!(">={cut}")],
    }
}

/// Integer hierarchy: uniform ranges, then a threshold split, then one group.
/// The threshold must be one of the uniform cuts (nesting requirement).
pub fn int_hierarchy_ranges_then_split(
    lo: i64,
    hi: i64,
    width: i64,
    split: i64,
) -> Result<Hierarchy> {
    Ok(Hierarchy::Int(IntHierarchy::new(vec![
        uniform_ranges(lo, hi, width),
        threshold_split(split),
        IntLevel::Single("*".into()),
    ])?))
}

/// Categorical hierarchy built from explicit grouping tables: level `i + 1`
/// maps each label of level `i` to a coarser label. The final level need not
/// be a single group; push one with [`CatHierarchy::push_top`] if desired.
pub fn grouping_hierarchy<S: Into<String>>(
    ground: Vec<S>,
    levels: &[&[(&str, &str)]],
) -> Result<CatHierarchy> {
    let mut h = CatHierarchy::identity(ground)?;
    for level in levels {
        h = h.push_level(level.iter().copied())?;
    }
    Ok(h)
}

/// Two-domain hierarchy: the ground values and a single `*` group — the
/// paper's Sex hierarchy (Figure 1, Table 7).
pub fn flat_hierarchy<S: Into<String>>(ground: Vec<S>) -> Result<Hierarchy> {
    Ok(Hierarchy::Cat(
        CatHierarchy::identity(ground)?.push_top("*")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::Value;

    #[test]
    fn prefix_hierarchy_matches_figure1() {
        let h = prefix_hierarchy(vec!["41076", "41099", "43102"], &[2, 0]).unwrap();
        assert_eq!(h.n_levels(), 3);
        assert_eq!(h.generalize("41076", 1).unwrap(), "41***");
        assert_eq!(h.generalize("43102", 1).unwrap(), "43***");
        assert_eq!(h.generalize("41076", 2).unwrap(), "*****");
    }

    #[test]
    fn prefix_hierarchy_digit_at_a_time() {
        // The paper notes ZipCode could instead have six domains, dropping
        // one digit per level.
        let h = prefix_hierarchy(vec!["41076", "41099"], &[4, 3, 2, 1, 0]).unwrap();
        assert_eq!(h.n_levels(), 6);
        assert_eq!(h.generalize("41076", 1).unwrap(), "4107*");
        assert_eq!(h.generalize("41076", 4).unwrap(), "4****");
        assert_eq!(h.generalize("41076", 5).unwrap(), "*****");
    }

    #[test]
    fn uniform_ranges_labels() {
        let level = uniform_ranges(17, 91, 10);
        if let IntLevel::Ranges { cuts, labels } = &level {
            assert_eq!(cuts, &[27, 37, 47, 57, 67, 77, 87]);
            assert_eq!(labels[0], "<27");
            assert_eq!(labels[1], "27-36");
            assert_eq!(labels.last().unwrap(), ">=87");
            assert_eq!(labels.len(), cuts.len() + 1);
        } else {
            panic!("expected ranges");
        }
    }

    #[test]
    fn uniform_ranges_degenerate_width() {
        // hi - lo <= width still yields one cut / two bins.
        let level = uniform_ranges(0, 5, 10);
        if let IntLevel::Ranges { cuts, labels } = &level {
            assert_eq!(cuts, &[10]);
            assert_eq!(labels.len(), 2);
        } else {
            panic!("expected ranges");
        }
    }

    #[test]
    fn ranges_then_split_hierarchy() {
        let h = int_hierarchy_ranges_then_split(0, 100, 10, 50).unwrap();
        assert_eq!(h.n_levels(), 4);
        assert_eq!(
            h.generalize(&Value::Int(42), 1).unwrap(),
            Value::Text("40-49".into())
        );
        assert_eq!(
            h.generalize(&Value::Int(42), 2).unwrap(),
            Value::Text("<50".into())
        );
        assert_eq!(
            h.generalize(&Value::Int(42), 3).unwrap(),
            Value::Text("*".into())
        );
        // Non-nested split rejected.
        assert!(int_hierarchy_ranges_then_split(0, 100, 10, 55).is_err());
    }

    #[test]
    fn grouping_hierarchy_marital_status() {
        // Paper Table 7: MaritalStatus -> {Single, Married} -> one group.
        let h = grouping_hierarchy(
            vec![
                "Never-married",
                "Married-civ-spouse",
                "Divorced",
                "Separated",
                "Widowed",
                "Married-spouse-absent",
                "Married-AF-spouse",
            ],
            &[&[
                ("Never-married", "Single"),
                ("Married-civ-spouse", "Married"),
                ("Divorced", "Single"),
                ("Separated", "Single"),
                ("Widowed", "Single"),
                ("Married-spouse-absent", "Married"),
                ("Married-AF-spouse", "Married"),
            ]],
        )
        .unwrap()
        .push_top("*")
        .unwrap();
        assert_eq!(h.n_levels(), 3);
        assert_eq!(h.generalize("Divorced", 1).unwrap(), "Single");
        assert_eq!(h.generalize("Married-AF-spouse", 1).unwrap(), "Married");
        assert_eq!(h.generalize("Widowed", 2).unwrap(), "*");
    }

    #[test]
    fn flat_hierarchy_sex() {
        let h = flat_hierarchy(vec!["M", "F"]).unwrap();
        assert_eq!(h.n_levels(), 2);
        assert_eq!(
            h.generalize(&Value::Text("M".into()), 1).unwrap(),
            Value::Text("*".into())
        );
    }
}
