//! The generalization lattice (paper Figure 2).
//!
//! For key attributes with DGH heights `l_1, ..., l_m`, the lattice is the
//! product `{0..=l_1} x ... x {0..=l_m}` ordered componentwise. A node `Y`
//! *generalizes* (dominates) `X` when `Y[i] >= X[i]` for every attribute —
//! "Y is on the path from X to the upper level of the lattice". `height(X)`
//! is the length of the minimum path from the bottom, i.e. the component sum.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A lattice node: one generalization level per key attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Node(pub Vec<u8>);

impl Node {
    /// Height of the node: the sum of its levels.
    pub fn height(&self) -> usize {
        self.0.iter().map(|&l| l as usize).sum()
    }

    /// True when `self` generalizes `other` (componentwise `>=`; reflexive).
    pub fn dominates(&self, other: &Node) -> bool {
        self.0.len() == other.0.len() && self.0.iter().zip(&other.0).all(|(a, b)| a >= b)
    }

    /// True when `self` strictly generalizes `other`.
    pub fn strictly_dominates(&self, other: &Node) -> bool {
        self != other && self.dominates(other)
    }

    /// Levels per attribute.
    pub fn levels(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Display for Node {
    /// Renders like the paper: `<S1, Z0>` becomes `<1, 0>` — attribute names
    /// are not known to the node itself.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, l) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ">")
    }
}

/// The product lattice of per-attribute generalization levels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lattice {
    max_levels: Vec<u8>,
}

impl Lattice {
    /// Builds a lattice from the maximum level of each attribute's DGH.
    pub fn new(max_levels: Vec<u8>) -> Self {
        Lattice { max_levels }
    }

    /// Number of key attributes (lattice dimensions).
    pub fn n_attributes(&self) -> usize {
        self.max_levels.len()
    }

    /// Maximum level per attribute.
    pub fn max_levels(&self) -> &[u8] {
        &self.max_levels
    }

    /// Total number of nodes: `prod(l_i + 1)`.
    pub fn node_count(&self) -> usize {
        self.max_levels.iter().map(|&l| l as usize + 1).product()
    }

    /// Height of the lattice (`height(GL)`): the height of its top node.
    pub fn height(&self) -> usize {
        self.max_levels.iter().map(|&l| l as usize).sum()
    }

    /// The bottom node `<0, ..., 0>` (no generalization).
    pub fn bottom(&self) -> Node {
        Node(vec![0; self.max_levels.len()])
    }

    /// The top node (every attribute fully generalized).
    pub fn top(&self) -> Node {
        Node(self.max_levels.clone())
    }

    /// True when `node` has the right dimension and levels within range.
    pub fn contains(&self, node: &Node) -> bool {
        node.0.len() == self.max_levels.len()
            && node.0.iter().zip(&self.max_levels).all(|(l, max)| l <= max)
    }

    /// All nodes with `height(node) == height`, in lexicographic order.
    pub fn nodes_at_height(&self, height: usize) -> Vec<Node> {
        let mut out = Vec::new();
        let mut levels = vec![0u8; self.max_levels.len()];
        self.enumerate_height(0, height, &mut levels, &mut out);
        out
    }

    fn enumerate_height(
        &self,
        dim: usize,
        remaining: usize,
        levels: &mut Vec<u8>,
        out: &mut Vec<Node>,
    ) {
        if dim == self.max_levels.len() {
            if remaining == 0 {
                out.push(Node(levels.clone()));
            }
            return;
        }
        // Prune: the remaining dimensions can absorb at most their max sum.
        let rest_capacity: usize = self.max_levels[dim + 1..].iter().map(|&l| l as usize).sum();
        let lo = remaining.saturating_sub(rest_capacity);
        let hi = (self.max_levels[dim] as usize).min(remaining);
        for l in lo..=hi {
            levels[dim] = l as u8;
            self.enumerate_height(dim + 1, remaining - l, levels, out);
        }
        levels[dim] = 0;
    }

    /// All nodes, in ascending height order (ties in lexicographic order).
    pub fn all_nodes(&self) -> Vec<Node> {
        (0..=self.height())
            .flat_map(|h| self.nodes_at_height(h))
            .collect()
    }

    /// Direct generalizations of `node`: one attribute raised one level.
    pub fn parents(&self, node: &Node) -> Vec<Node> {
        let mut out = Vec::new();
        for i in 0..node.0.len() {
            if node.0[i] < self.max_levels[i] {
                let mut levels = node.0.clone();
                levels[i] += 1;
                out.push(Node(levels));
            }
        }
        out
    }

    /// Direct specializations of `node`: one attribute lowered one level.
    pub fn children(&self, node: &Node) -> Vec<Node> {
        let mut out = Vec::new();
        for i in 0..node.0.len() {
            if node.0[i] > 0 {
                let mut levels = node.0.clone();
                levels[i] -= 1;
                out.push(Node(levels));
            }
        }
        out
    }

    /// All nodes dominating `node` (its generalizations), including itself.
    pub fn ancestors_of(&self, node: &Node) -> Vec<Node> {
        self.all_nodes()
            .into_iter()
            .filter(|candidate| candidate.dominates(node))
            .collect()
    }

    /// Reduces `nodes` to its minimal elements: members not strictly
    /// dominating any other member. These are the *(p-)k-minimal
    /// generalizations* once `nodes` is the satisfying set (Definition 3).
    pub fn minimal_elements(&self, nodes: &[Node]) -> Vec<Node> {
        nodes
            .iter()
            .filter(|candidate| {
                !nodes
                    .iter()
                    .any(|other| candidate.strictly_dominates(other))
            })
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2 lattice: Sex (2 domains) x ZipCode (3 domains).
    fn figure2() -> Lattice {
        Lattice::new(vec![1, 2])
    }

    #[test]
    fn figure2_heights_match_paper() {
        let gl = figure2();
        // height(<S0,Z0>) = 0, height(<S1,Z0>) = 1, height(<S0,Z1>) = 1,
        // height(<S1,Z1>) = 2, height(<S1,Z2>) = 3, height(GL) = 3.
        assert_eq!(Node(vec![0, 0]).height(), 0);
        assert_eq!(Node(vec![1, 0]).height(), 1);
        assert_eq!(Node(vec![0, 1]).height(), 1);
        assert_eq!(Node(vec![1, 1]).height(), 2);
        assert_eq!(Node(vec![1, 2]).height(), 3);
        assert_eq!(gl.height(), 3);
        assert_eq!(gl.node_count(), 6);
    }

    #[test]
    fn domination_is_the_generalization_order() {
        let top = Node(vec![1, 2]);
        let mid = Node(vec![1, 1]);
        let bottom = Node(vec![0, 0]);
        assert!(top.dominates(&mid));
        assert!(top.dominates(&bottom));
        assert!(mid.dominates(&bottom));
        assert!(top.dominates(&top));
        assert!(!top.strictly_dominates(&top));
        // Incomparable pair.
        let a = Node(vec![1, 0]);
        let b = Node(vec![0, 1]);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
        // Dimension mismatch never dominates.
        assert!(!top.dominates(&Node(vec![1])));
    }

    #[test]
    fn nodes_at_height_enumeration() {
        let gl = figure2();
        assert_eq!(gl.nodes_at_height(0), vec![Node(vec![0, 0])]);
        let h1 = gl.nodes_at_height(1);
        assert_eq!(h1, vec![Node(vec![0, 1]), Node(vec![1, 0])]);
        let h2 = gl.nodes_at_height(2);
        assert_eq!(h2, vec![Node(vec![0, 2]), Node(vec![1, 1])]);
        assert_eq!(gl.nodes_at_height(3), vec![Node(vec![1, 2])]);
        assert!(gl.nodes_at_height(4).is_empty());
    }

    #[test]
    fn all_nodes_covers_lattice_once() {
        let gl = Lattice::new(vec![3, 2, 3, 1]); // the paper's Adult lattice
        let all = gl.all_nodes();
        assert_eq!(all.len(), 96); // 4 x 3 x 4 x 2 (paper Section 4)
        assert_eq!(gl.height(), 9); // height(GL_A) = 9
        let unique: std::collections::HashSet<_> = all.iter().cloned().collect();
        assert_eq!(unique.len(), 96);
        // Ascending height order.
        for pair in all.windows(2) {
            assert!(pair[0].height() <= pair[1].height());
        }
    }

    #[test]
    fn parents_and_children() {
        let gl = figure2();
        let node = Node(vec![0, 1]);
        assert_eq!(gl.parents(&node), vec![Node(vec![1, 1]), Node(vec![0, 2])]);
        assert_eq!(gl.children(&node), vec![Node(vec![0, 0])]);
        assert!(gl.children(&gl.bottom()).is_empty());
        assert!(gl.parents(&gl.top()).is_empty());
    }

    #[test]
    fn contains_checks_bounds() {
        let gl = figure2();
        assert!(gl.contains(&Node(vec![1, 2])));
        assert!(!gl.contains(&Node(vec![2, 0])));
        assert!(!gl.contains(&Node(vec![0])));
    }

    #[test]
    fn minimal_elements_of_satisfying_set() {
        let gl = figure2();
        // Suppose {<0,2>, <1,1>, <1,2>} satisfy: minimal are <0,2> and <1,1>.
        let satisfying = vec![Node(vec![0, 2]), Node(vec![1, 1]), Node(vec![1, 2])];
        let minimal = gl.minimal_elements(&satisfying);
        assert_eq!(minimal, vec![Node(vec![0, 2]), Node(vec![1, 1])]);
        // A single node is its own minimal set.
        assert_eq!(
            gl.minimal_elements(&[Node(vec![1, 2])]),
            vec![Node(vec![1, 2])]
        );
        assert!(gl.minimal_elements(&[]).is_empty());
    }

    #[test]
    fn ancestors_of_node() {
        let gl = figure2();
        let ancestors = gl.ancestors_of(&Node(vec![1, 1]));
        assert_eq!(ancestors, vec![Node(vec![1, 1]), Node(vec![1, 2])]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Node(vec![1, 0, 2]).to_string(), "<1, 0, 2>");
    }

    #[test]
    fn strata_sizes_sum_to_node_count() {
        let gl = Lattice::new(vec![3, 2, 3, 1]);
        let total: usize = (0..=gl.height()).map(|h| gl.nodes_at_height(h).len()).sum();
        assert_eq!(total, gl.node_count());
    }
}
