//! Per-(attribute, level) **code maps**: full-domain generalization as pure
//! `u32` arithmetic.
//!
//! [`QiSpace::apply`] recodes cell-by-cell through string labels and
//! rebuilds dictionaries — fine for materializing one masked table, far too
//! slow for a lattice search that checks hundreds of candidate nodes against
//! the same initial microdata. A [`QiCodeMaps`] is computed **once** per
//! (QI space, table) pair and gives, for every QI attribute:
//!
//! - `base`: one dense `u32` code per row (the attribute's level-0 code), and
//! - for each level `L`, a map `Vec<u32>` from base codes to level-`L` codes.
//!
//! Two rows land in the same QI-group at node `<l_1, ..., l_m>` iff their
//! mapped codes agree on every attribute, so any per-node check (k-anonymity,
//! group counts, per-group `COUNT(DISTINCT)`) can run on integer vectors
//! without materializing a generalized table. Missing cells keep their own
//! reserved code at every level, mirroring `Hierarchy::generalize`'s
//! missing-stays-missing rule and `GroupBy`'s missing-equals-missing rule.

use crate::error::{Error, Result};
use crate::hierarchy::Hierarchy;
use psens_microdata::hash::FxHashMap;
use psens_microdata::Column;

/// The code-level view of one level of one attribute's DGH.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelCodeMap {
    /// `map[base_code]` is the attribute's code at this level.
    map: Vec<u32>,
    /// Exclusive upper bound of the codes in `map` (the level's alphabet
    /// size, reserved missing code included).
    n_codes: u32,
}

impl LevelCodeMap {
    /// The base-code → level-code map.
    pub fn map(&self) -> &[u32] {
        &self.map
    }

    /// Exclusive upper bound of the level's codes.
    pub fn n_codes(&self) -> u32 {
        self.n_codes
    }
}

/// All code maps of one QI attribute over one table column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrCodeMap {
    /// Per-row level-0 codes (missing cells share one reserved code).
    base: Vec<u32>,
    /// One map per level, index 0 being the (identity) ground level.
    levels: Vec<LevelCodeMap>,
}

impl AttrCodeMap {
    /// Builds the code maps binding `hierarchy` to `column`.
    ///
    /// Fails like `Hierarchy::apply` would: on kind mismatches and on column
    /// values absent from the hierarchy's ground domain.
    pub fn build(hierarchy: &Hierarchy, column: &Column) -> Result<AttrCodeMap> {
        match (hierarchy, column) {
            (Hierarchy::Cat(h), Column::Cat(col)) => {
                // Base codes are ground-domain positions; the hierarchy's
                // `of_ground` tables then are the level maps verbatim. Only
                // *used* dictionary codes must exist in the ground domain
                // (gathered columns may carry unused entries).
                let missing = h.ground().len() as u32;
                let dict = col.dictionary();
                let mut of_dict: Vec<Option<u32>> = vec![None; dict.len()];
                let mut base = Vec::with_capacity(col.len());
                for row in 0..col.len() {
                    match col.code_at(row) {
                        Some(code) => {
                            let gi = match of_dict[code as usize] {
                                Some(gi) => gi,
                                None => {
                                    let text = dict.text(code).expect("code from this dictionary");
                                    let gi = h
                                        .ground_index(text)
                                        .ok_or_else(|| Error::UnknownValue(text.to_owned()))?
                                        as u32;
                                    of_dict[code as usize] = Some(gi);
                                    gi
                                }
                            };
                            base.push(gi);
                        }
                        None => base.push(missing),
                    }
                }
                let mut levels = Vec::with_capacity(h.n_levels());
                for level in 0..h.n_levels() {
                    let mut map = h.code_map_at(level)?;
                    let n_labels = h.n_labels_at(level)? as u32;
                    // Reserve one extra code for missing cells.
                    map.push(n_labels);
                    levels.push(LevelCodeMap {
                        map,
                        n_codes: n_labels + 1,
                    });
                }
                Ok(AttrCodeMap { base, levels })
            }
            (Hierarchy::Int(h), Column::Int(col)) => {
                // Base codes densify the distinct integers present, in
                // first-occurrence order; missing gets its own dense code.
                let mut of_value: FxHashMap<i64, u32> = FxHashMap::default();
                let mut distinct: Vec<Option<i64>> = Vec::new();
                let mut missing_base: Option<u32> = None;
                let mut base = Vec::with_capacity(col.len());
                for row in 0..col.len() {
                    let code = match col.get(row) {
                        Some(v) => *of_value.entry(v).or_insert_with(|| {
                            distinct.push(Some(v));
                            (distinct.len() - 1) as u32
                        }),
                        None => *missing_base.get_or_insert_with(|| {
                            distinct.push(None);
                            (distinct.len() - 1) as u32
                        }),
                    };
                    base.push(code);
                }
                let n_base = distinct.len() as u32;
                let mut levels = Vec::with_capacity(h.n_levels());
                for level in 0..h.n_levels() {
                    if level == 0 {
                        levels.push(LevelCodeMap {
                            map: (0..n_base).collect(),
                            n_codes: n_base,
                        });
                        continue;
                    }
                    // Dedupe bins by label text: `IntHierarchy` does not
                    // forbid two bins sharing a label, and label-equal cells
                    // group together in a materialized table.
                    let labels = h.bin_labels_at(level)?;
                    let mut label_code: FxHashMap<&str, u32> = FxHashMap::default();
                    let mut next = 0u32;
                    let mut bin_code = Vec::with_capacity(labels.len());
                    for &label in &labels {
                        let code = *label_code.entry(label).or_insert_with(|| {
                            let code = next;
                            next += 1;
                            code
                        });
                        bin_code.push(code);
                    }
                    let n_labels = next;
                    let map = distinct
                        .iter()
                        .map(|value| match value {
                            Some(v) => Ok(bin_code[h.bin_of(*v, level)?]),
                            None => Ok(n_labels),
                        })
                        .collect::<Result<Vec<u32>>>()?;
                    levels.push(LevelCodeMap {
                        map,
                        n_codes: n_labels + 1,
                    });
                }
                Ok(AttrCodeMap { base, levels })
            }
            (Hierarchy::Cat(_), Column::Int(_)) => Err(Error::KindMismatch {
                expected: "text",
                found: "integer",
            }),
            (Hierarchy::Int(_), Column::Cat(_)) => Err(Error::KindMismatch {
                expected: "integers",
                found: "text",
            }),
        }
    }

    /// Per-row level-0 codes.
    pub fn base(&self) -> &[u32] {
        &self.base
    }

    /// The code map of `level`.
    ///
    /// # Panics
    /// Panics when `level` exceeds the hierarchy this map was built from.
    pub fn level(&self, level: usize) -> &LevelCodeMap {
        &self.levels[level]
    }

    /// Number of levels (ground level included).
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }
}

/// Code maps for every attribute of a QI space over one table — the
/// precomputation a whole lattice search shares (immutable, `Sync`; parallel
/// scans hand out references to worker threads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QiCodeMaps {
    attrs: Vec<AttrCodeMap>,
    n_rows: usize,
}

impl QiCodeMaps {
    /// Code maps of the `i`-th QI attribute (lattice order).
    pub fn attr(&self, i: usize) -> &AttrCodeMap {
        &self.attrs[i]
    }

    /// Number of QI attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True when there are no attributes (never, by `QiSpace` construction).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Number of rows the maps were built over.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }
}

impl crate::apply::QiSpace {
    /// Precomputes the per-attribute, per-level code maps of `table` —
    /// compute once, then check any number of lattice nodes on `u32` vectors.
    pub fn code_maps(&self, table: &psens_microdata::Table) -> Result<QiCodeMaps> {
        let attrs = self
            .names()
            .into_iter()
            .enumerate()
            .map(|(i, name)| {
                let idx = table.schema().index_of(name)?;
                AttrCodeMap::build(self.hierarchy(i), table.column(idx))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(QiCodeMaps {
            attrs,
            n_rows: table.n_rows(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::prefix_hierarchy;
    use crate::hierarchy::{IntHierarchy, IntLevel};
    use psens_microdata::{CatColumn, IntColumn};

    fn zip_hierarchy() -> Hierarchy {
        Hierarchy::Cat(
            prefix_hierarchy(
                vec!["41076", "41099", "43102", "43103", "48201", "48202"],
                &[2, 0],
            )
            .unwrap(),
        )
    }

    fn age_hierarchy() -> Hierarchy {
        Hierarchy::Int(
            IntHierarchy::new(vec![
                IntLevel::Ranges {
                    cuts: vec![30, 50],
                    labels: vec!["<30".into(), "30-49".into(), ">=50".into()],
                },
                IntLevel::Single("*".into()),
            ])
            .unwrap(),
        )
    }

    /// Mapped codes must agree exactly with the string-level recode: equal
    /// generalized labels iff equal mapped codes.
    fn assert_matches_generalize(h: &Hierarchy, col: &Column, maps: &AttrCodeMap) {
        for level in 0..h.n_levels() {
            let lm = maps.level(level);
            let recoded = h.apply(col, level).unwrap();
            for a in 0..col.len() {
                assert!(lm.map()[maps.base()[a] as usize] < lm.n_codes());
                for b in 0..col.len() {
                    let same_codes =
                        lm.map()[maps.base()[a] as usize] == lm.map()[maps.base()[b] as usize];
                    let same_labels = recoded.value(a) == recoded.value(b);
                    assert_eq!(
                        same_codes, same_labels,
                        "level {level}, rows {a}/{b}: codes and labels disagree"
                    );
                }
            }
        }
    }

    #[test]
    fn cat_maps_match_string_recode() {
        let h = zip_hierarchy();
        let mut col = CatColumn::from_values(["41076", "43102", "41099", "48201", "43102"]);
        col.push_missing();
        let col = Column::Cat(col);
        let maps = AttrCodeMap::build(&h, &col).unwrap();
        assert_eq!(maps.n_levels(), 3);
        assert_matches_generalize(&h, &col, &maps);
    }

    #[test]
    fn int_maps_match_string_recode() {
        let h = age_hierarchy();
        let mut col = IntColumn::new();
        for v in [25, 51, 25, 34, 49, 50] {
            col.push(v);
        }
        col.push_missing();
        let col = Column::Int(col);
        let maps = AttrCodeMap::build(&h, &col).unwrap();
        assert_eq!(maps.n_levels(), 3);
        assert_matches_generalize(&h, &col, &maps);
    }

    #[test]
    fn int_duplicate_labels_share_codes() {
        // Two bins deliberately share the label "low": label-equal cells
        // must receive equal codes, as they would group together after a
        // string-level recode.
        let h = Hierarchy::Int(
            IntHierarchy::new(vec![IntLevel::Ranges {
                cuts: vec![10, 20],
                labels: vec!["low".into(), "low".into(), "high".into()],
            }])
            .unwrap(),
        );
        let col = Column::Int(IntColumn::from_values([5, 15, 25]));
        let maps = AttrCodeMap::build(&h, &col).unwrap();
        assert_matches_generalize(&h, &col, &maps);
        let lm = maps.level(1);
        assert_eq!(
            lm.map()[maps.base()[0] as usize],
            lm.map()[maps.base()[1] as usize]
        );
    }

    #[test]
    fn unknown_ground_value_errors() {
        let h = zip_hierarchy();
        let col = Column::Cat(CatColumn::from_values(["00000"]));
        assert!(matches!(
            AttrCodeMap::build(&h, &col),
            Err(Error::UnknownValue(_))
        ));
    }

    #[test]
    fn kind_mismatch_errors() {
        let h = zip_hierarchy();
        let col = Column::Int(IntColumn::from_values([1]));
        assert!(matches!(
            AttrCodeMap::build(&h, &col),
            Err(Error::KindMismatch { .. })
        ));
        let col = Column::Cat(CatColumn::from_values(["x"]));
        assert!(matches!(
            AttrCodeMap::build(&age_hierarchy(), &col),
            Err(Error::KindMismatch { .. })
        ));
    }

    #[test]
    fn missing_cells_keep_their_own_code_at_every_level() {
        let h = zip_hierarchy();
        let mut col = CatColumn::from_values(["41076"]);
        col.push_missing();
        let col = Column::Cat(col);
        let maps = AttrCodeMap::build(&h, &col).unwrap();
        for level in 0..3 {
            let lm = maps.level(level);
            let present = lm.map()[maps.base()[0] as usize];
            let missing = lm.map()[maps.base()[1] as usize];
            assert_ne!(present, missing, "level {level}");
        }
    }
}
