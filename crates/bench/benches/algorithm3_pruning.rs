//! The paper's future-work experiment: Algorithm 3 (p-k-minimal
//! generalization search) with and without the two necessary conditions.
//!
//! The headline win is Condition 1 on unsatisfiable instances (`p > maxP`):
//! one comparison replaces a full lattice search. Condition 2 trims the
//! detailed scan on candidate nodes with too many QI-groups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psens_algorithms::samarati::{pk_minimal_generalization, Pruning};
use psens_datasets::hierarchies::adult_qi_space;
use psens_datasets::paper_samples;
use std::hint::black_box;

fn bench_pruning(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm3");
    group.sample_size(10);
    let qi = adult_qi_space();
    let (s400, s4000) = paper_samples();

    for (label, table) in [("400", &s400), ("4000", &s4000)] {
        // Satisfiable: p = 2, k = 2.
        for (mode, pruning) in [
            ("unpruned", Pruning::None),
            ("pruned", Pruning::NecessaryConditions),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("p2_k2_{mode}"), label),
                table,
                |b, table| {
                    b.iter(|| {
                        black_box(
                            pk_minimal_generalization(table, &qi, 2, 2, 0, pruning).expect("valid"),
                        )
                    });
                },
            );
        }
        // Unsatisfiable: Pay has 2 distinct values, so p = 3 violates
        // Condition 1 — the pruned search answers in O(1).
        for (mode, pruning) in [
            ("unpruned", Pruning::None),
            ("pruned", Pruning::NecessaryConditions),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("p3_impossible_{mode}"), label),
                table,
                |b, table| {
                    b.iter(|| {
                        black_box(
                            pk_minimal_generalization(table, &qi, 3, 3, 0, pruning).expect("valid"),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
