//! SQL-subset engine throughput: the paper's two statements (the k-anonymity
//! group-by and Condition 1's COUNT DISTINCT) at increasing scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psens_bench::workloads;
use psens_sql::{execute, parse, Catalog};
use std::hint::black_box;

fn bench_sql(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql");
    group.bench_function("parse_group_by", |b| {
        b.iter(|| {
            parse(black_box(
                "SELECT COUNT(*) FROM Adult GROUP BY Sex, MaritalStatus, Race, Age \
                 HAVING COUNT(*) < 2",
            ))
            .expect("valid")
        });
    });
    for &n in &[1_000usize, 10_000, 100_000] {
        let table = workloads::adult(n);
        let mut catalog = Catalog::new();
        catalog.register("Adult", &table);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("k_anonymity_audit", n), &n, |b, _| {
            b.iter(|| {
                execute(
                    black_box(&catalog),
                    "SELECT COUNT(*) FROM Adult GROUP BY Sex, MaritalStatus, Race, Age \
                     HAVING COUNT(*) < 2",
                )
                .expect("valid")
            });
        });
        group.bench_with_input(BenchmarkId::new("count_distinct", n), &n, |b, _| {
            b.iter(|| {
                execute(
                    black_box(&catalog),
                    "SELECT COUNT(DISTINCT Pay), COUNT(DISTINCT TaxPeriod) FROM Adult",
                )
                .expect("valid")
            });
        });
        group.bench_with_input(BenchmarkId::new("filtered_projection", n), &n, |b, _| {
            b.iter(|| {
                execute(
                    black_box(&catalog),
                    "SELECT Age, Pay FROM Adult WHERE Age >= 40 AND Sex = 'Male' LIMIT 100",
                )
                .expect("valid")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sql);
criterion_main!(benches);
