//! Substrate throughput: group-by, frequency sets, and per-group distinct
//! counts — the operators every anonymity check is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psens_bench::workloads;
use psens_microdata::{FrequencySet, GroupBy};
use std::hint::black_box;

fn bench_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("groupby");
    for &n in &[1_000usize, 10_000, 100_000] {
        let table = workloads::adult(n);
        let keys = table.schema().key_indices();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("compute", n), &n, |b, _| {
            b.iter(|| GroupBy::compute(black_box(&table), black_box(&keys)));
        });
        let gb = GroupBy::compute(&table, &keys);
        let pay = table.column_by_name("Pay").expect("Pay exists");
        group.bench_with_input(BenchmarkId::new("distinct_per_group", n), &n, |b, _| {
            b.iter(|| gb.distinct_per_group(black_box(pay)));
        });
        group.bench_with_input(BenchmarkId::new("frequency_set", n), &n, |b, _| {
            let conf = table.schema().index_of("Pay").expect("Pay exists");
            b.iter(|| FrequencySet::of(black_box(&table), &[conf]));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_groupby);
criterion_main!(benches);
