//! Chunked columnar group-by: serial `GroupBy::compute` on a materialized
//! table versus the two-pass parallel radix `GroupBy::compute_chunked` on the
//! scale workload, across thread counts. Pairs with the offline
//! `chunked_scaling` bin, which records the 10M-row curve in `BENCH_5.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psens_bench::workloads;
use psens_microdata::GroupBy;
use std::hint::black_box;

const CHUNK_ROWS: usize = 4096;

fn bench_chunked_groupby(c: &mut Criterion) {
    let mut group = c.benchmark_group("chunked_groupby");
    for &n in &[10_000usize, 100_000] {
        let chunked = workloads::scale_chunked(n, CHUNK_ROWS);
        let table = chunked.to_table();
        let keys = table.schema().key_indices();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| GroupBy::compute(black_box(&table), black_box(&keys)));
        });
        for threads in [1usize, 2, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("chunked_threads_{threads}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        GroupBy::compute_chunked(black_box(&chunked), black_box(&keys), threads)
                    });
                },
            );
        }
        let conf = table.schema().index_of("Pay").expect("Pay exists");
        group.bench_with_input(BenchmarkId::new("dense_codes", n), &n, |b, _| {
            b.iter(|| black_box(&chunked).dense_codes(conf, 8));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chunked_groupby);
criterion_main!(benches);
