//! Algorithm 1 vs Algorithm 2: the basic p-sensitive k-anonymity test
//! against the improved test that short-circuits through the two necessary
//! conditions. The win shows on maskings the conditions reject — the
//! detailed per-group distinct scan never runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psens_bench::workloads;
use psens_core::conditions::ConfidentialStats;
use psens_core::{check_improved, is_p_sensitive_k_anonymous};
use std::hint::black_box;

fn bench_checker(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker");
    for &n in &[10_000usize, 100_000] {
        // 97 distinct keys => 97 groups; with a 99.9%-dominant confidential
        // value only ~n/1000 tuples fall outside the top values, so
        // Condition 2's maxGroups for p = 3 stays below 97 at every size and
        // rejects the masking before the detailed scan.
        let table = workloads::skewed_confidential(n, 999, 5);
        let keys = [0usize];
        let conf = [1usize];
        let stats = ConfidentialStats::compute(&table, &conf);
        let rejected = check_improved(&table, &keys, &conf, 3, 2, &stats);
        assert!(
            !rejected.satisfied && rejected.stage == psens_core::CheckStage::Condition2,
            "workload must be a Condition-2 rejection, got {:?}",
            rejected.stage
        );

        group.bench_with_input(BenchmarkId::new("algorithm1_basic", n), &n, |b, _| {
            b.iter(|| {
                is_p_sensitive_k_anonymous(
                    black_box(&table),
                    black_box(&keys),
                    black_box(&conf),
                    3,
                    2,
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("algorithm2_improved", n), &n, |b, _| {
            b.iter(|| {
                check_improved(
                    black_box(&table),
                    black_box(&keys),
                    black_box(&conf),
                    3,
                    2,
                    black_box(&stats),
                )
            });
        });
        // Condition 1 rejection: p beyond the attribute's distinct count —
        // Algorithm 2 answers without touching the table.
        group.bench_with_input(
            BenchmarkId::new("algorithm2_condition1_reject", n),
            &n,
            |b, _| {
                b.iter(|| {
                    check_improved(
                        black_box(&table),
                        black_box(&keys),
                        black_box(&conf),
                        99,
                        2,
                        black_box(&stats),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_checker);
criterion_main!(benches);
