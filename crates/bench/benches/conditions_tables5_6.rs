//! Tables 5–6: computing the confidential-attribute frequency statistics and
//! the two necessary-condition bounds (`maxP`, `maxGroups`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psens_bench::workloads;
use psens_core::conditions::ConfidentialStats;
use psens_datasets::paper::example1_microdata;
use std::hint::black_box;

fn bench_conditions(c: &mut Criterion) {
    let mut group = c.benchmark_group("conditions");

    // The paper's Example 1 (n = 1000, three confidential attributes).
    let example1 = example1_microdata();
    let conf = example1.schema().confidential_indices();
    group.bench_function("example1_stats", |b| {
        b.iter(|| ConfidentialStats::compute(black_box(&example1), black_box(&conf)));
    });
    let stats = ConfidentialStats::compute(&example1, &conf);
    group.bench_function("example1_max_groups_p2_to_p5", |b| {
        b.iter(|| {
            for p in 2..=5u32 {
                black_box(stats.max_groups(p));
            }
        });
    });

    // Scaling on skewed single-attribute data.
    for &n in &[10_000usize, 100_000] {
        let table = workloads::skewed_confidential(n, 900, 10);
        let conf = table.schema().confidential_indices();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("skewed_stats", n), &n, |b, _| {
            b.iter(|| ConfidentialStats::compute(black_box(&table), black_box(&conf)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_conditions);
criterion_main!(benches);
