//! Table 8: the Section 4 experiment end to end — Samarati binary search for
//! a k-minimal generalization of the synthetic Adult samples, plus the
//! attribute-disclosure count on the result.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psens_algorithms::samarati::k_minimal_generalization;
use psens_core::attribute_disclosure_count;
use psens_datasets::hierarchies::adult_qi_space;
use psens_datasets::paper_samples;
use std::hint::black_box;

fn bench_table8(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8");
    group.sample_size(10);
    let qi = adult_qi_space();
    let (s400, s4000) = paper_samples();
    for (label, table) in [("400", &s400), ("4000", &s4000)] {
        for k in [2u32, 3] {
            group.bench_with_input(
                BenchmarkId::new("samarati_search", format!("{label}_k{k}")),
                &k,
                |b, &k| {
                    b.iter(|| {
                        black_box(k_minimal_generalization(table, &qi, k, 0).expect("valid"))
                    });
                },
            );
            let outcome = k_minimal_generalization(table, &qi, k, 0).expect("valid");
            let masked = outcome.masked.expect("satisfiable");
            let keys = masked.schema().key_indices();
            let conf = masked.schema().confidential_indices();
            group.bench_with_input(
                BenchmarkId::new("disclosure_count", format!("{label}_k{k}")),
                &k,
                |b, _| {
                    b.iter(|| {
                        black_box(attribute_disclosure_count(black_box(&masked), &keys, &conf))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_table8);
criterion_main!(benches);
