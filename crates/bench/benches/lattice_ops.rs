//! Generalization-lattice operations: stratum enumeration, full traversal,
//! and minimal-element reduction — the bookkeeping around every search.

use criterion::{criterion_group, criterion_main, Criterion};
use psens_hierarchy::Lattice;
use std::hint::black_box;

fn bench_lattice(c: &mut Criterion) {
    let mut group = c.benchmark_group("lattice");
    // The Adult lattice (96 nodes) and a larger 8-attribute lattice
    // (6,561 nodes) representative of wider QI sets.
    let adult = Lattice::new(vec![3, 2, 3, 1]);
    let wide = Lattice::new(vec![2; 8]);

    group.bench_function("adult_all_nodes", |b| {
        b.iter(|| black_box(adult.all_nodes()));
    });
    group.bench_function("wide_all_nodes", |b| {
        b.iter(|| black_box(wide.all_nodes()));
    });
    group.bench_function("wide_mid_stratum", |b| {
        b.iter(|| black_box(wide.nodes_at_height(8)));
    });
    let satisfying = wide
        .all_nodes()
        .into_iter()
        .filter(|n| n.height() >= 8)
        .collect::<Vec<_>>();
    group.bench_function("wide_minimal_elements", |b| {
        b.iter(|| black_box(wide.minimal_elements(&satisfying)));
    });
    group.finish();
}

criterion_group!(benches, bench_lattice);
criterion_main!(benches);
