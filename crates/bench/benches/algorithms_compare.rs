//! Head-to-head: the four ways of producing a (p-sensitive) k-anonymous
//! masking — Samarati binary search, Incognito-style level-wise, exhaustive
//! scan, and Mondrian local recoding — on the same synthetic Adult sample.

use criterion::{criterion_group, criterion_main, Criterion};
use psens_algorithms::exhaustive::exhaustive_scan;
use psens_algorithms::incognito::incognito_minimal;
use psens_algorithms::levelwise::levelwise_minimal;
use psens_algorithms::mondrian::{mondrian_anonymize, MondrianConfig};
use psens_algorithms::parallel::parallel_exhaustive_scan;
use psens_algorithms::samarati::{pk_minimal_generalization, Pruning};
use psens_bench::workloads;
use psens_datasets::hierarchies::adult_qi_space;
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    let qi = adult_qi_space();
    let table = workloads::adult(1000);
    let (p, k, ts) = (2u32, 2u32, 10usize);

    group.bench_function("samarati_binary_search", |b| {
        b.iter(|| {
            black_box(
                pk_minimal_generalization(&table, &qi, p, k, ts, Pruning::NecessaryConditions)
                    .expect("valid"),
            )
        });
    });
    group.bench_function("levelwise_rollup", |b| {
        b.iter(|| black_box(levelwise_minimal(&table, &qi, p, k, ts).expect("valid")));
    });
    group.bench_function("incognito_subset_pruning", |b| {
        b.iter(|| black_box(incognito_minimal(&table, &qi, p, k, ts).expect("valid")));
    });
    group.bench_function("exhaustive_scan", |b| {
        b.iter(|| black_box(exhaustive_scan(&table, &qi, p, k, ts).expect("valid")));
    });
    group.bench_function("exhaustive_scan_parallel_4", |b| {
        b.iter(|| black_box(parallel_exhaustive_scan(&table, &qi, p, k, ts, 4).expect("valid")));
    });
    group.bench_function("mondrian_local_recoding", |b| {
        b.iter(|| black_box(mondrian_anonymize(&table, MondrianConfig { k, p }).unwrap()));
    });
    group.bench_function("greedy_pk_clustering", |b| {
        b.iter(|| {
            black_box(
                psens_algorithms::greedy_pk_cluster(
                    &table,
                    psens_algorithms::GreedyClusterConfig { k, p },
                )
                .expect("valid"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
