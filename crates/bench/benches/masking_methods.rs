//! Throughput of the classical disclosure-control methods the paper's
//! Section 2 surveys, at the Adult scales used elsewhere.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psens_bench::workloads;
use psens_methods::{
    add_noise, microaggregate_mdav, microaggregate_univariate, pram, rank_swap,
    simple_random_sample, PramMatrix,
};
use std::hint::black_box;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("methods");
    for &n in &[1_000usize, 10_000] {
        let table = workloads::adult(n);
        let age = table.schema().index_of("Age").expect("Age exists");
        let fnlwgt = table.schema().index_of("FnlWgt").expect("FnlWgt exists");
        let pay = table.schema().index_of("Pay").expect("Pay exists");
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("sample_half", n), &n, |b, _| {
            b.iter(|| black_box(simple_random_sample(&table, n / 2, 1)));
        });
        group.bench_with_input(BenchmarkId::new("microagg_univariate", n), &n, |b, _| {
            b.iter(|| black_box(microaggregate_univariate(&table, age, 5).expect("valid")));
        });
        // MDAV is quadratic in n; bench it at the small scale only.
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("microagg_mdav", n), &n, |b, _| {
                b.iter(|| {
                    black_box(microaggregate_mdav(&table, &[age, fnlwgt], 5).expect("valid"))
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("rank_swap", n), &n, |b, _| {
            b.iter(|| black_box(rank_swap(&table, age, 5, 1).expect("valid")));
        });
        group.bench_with_input(BenchmarkId::new("add_noise", n), &n, |b, _| {
            b.iter(|| black_box(add_noise(&table, fnlwgt, 0.1, 1).expect("valid")));
        });
        let matrix = PramMatrix::uniform_retention(vec!["<=50K", ">50K"], 0.85).expect("valid");
        group.bench_with_input(BenchmarkId::new("pram", n), &n, |b, _| {
            b.iter(|| black_box(pram(&table, pay, &matrix, 1).expect("valid")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
