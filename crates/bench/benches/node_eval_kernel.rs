//! The code-mapped node-evaluation kernel against the materializing
//! pipeline, per node and over the whole lattice.
//!
//! `materializing` generalizes the table, drops identifiers, suppresses and
//! re-groups for every candidate node; `code_mapped` answers the same check
//! on `u32` code vectors from the cached per-(attribute, level) maps. Same
//! verdict, no tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use psens_algorithms::{exhaustive_scan, parallel_exhaustive_scan};
use psens_bench::workloads;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_datasets::hierarchies::adult_qi_space;
use std::hint::black_box;

fn bench_per_node(c: &mut Criterion) {
    let qi = adult_qi_space();
    let mut group = c.benchmark_group("node_eval");
    for &n in &[1_000usize, 10_000] {
        let table = workloads::adult(n);
        let ctx = MaskingContext {
            initial: &table,
            qi: &qi,
            k: 3,
            p: 2,
            ts: n / 20,
        };
        let stats = ctx.initial_stats();
        let ectx = EvalContext::build(&ctx).expect("context builds");
        let mut eval = ectx.evaluator();
        let nodes = qi.lattice().all_nodes();
        // Sanity: the two paths agree before we time them.
        for node in &nodes {
            let slow = ctx.evaluate(node, &stats).expect("evaluate");
            let fast = eval.check(node, &stats).expect("check");
            assert_eq!(slow.satisfied, fast.satisfied, "node {node}");
            assert_eq!(slow.stage, fast.stage, "node {node}");
        }

        group.throughput(Throughput::Elements(nodes.len() as u64));
        group.bench_with_input(BenchmarkId::new("materializing", n), &n, |b, _| {
            b.iter(|| {
                for node in &nodes {
                    black_box(ctx.evaluate(black_box(node), &stats).expect("evaluate"));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("code_mapped", n), &n, |b, _| {
            b.iter(|| {
                for node in &nodes {
                    black_box(eval.check(black_box(node), &stats).expect("check"));
                }
            });
        });
    }
    group.finish();
}

fn bench_exhaustive(c: &mut Criterion) {
    let qi = adult_qi_space();
    let table = workloads::adult(10_000);
    let mut group = c.benchmark_group("exhaustive_scan");
    group.throughput(Throughput::Elements(qi.lattice().node_count() as u64));
    group.bench_function("serial", |b| {
        b.iter(|| exhaustive_scan(black_box(&table), &qi, 2, 3, 500).expect("scan"));
    });
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    group.bench_function("parallel", |b| {
        b.iter(|| {
            parallel_exhaustive_scan(black_box(&table), &qi, 2, 3, 500, threads).expect("scan")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_per_node, bench_exhaustive);
criterion_main!(benches);
