//! Figure 3 / Table 4: finding 3-minimal generalizations with suppression —
//! the exhaustive scan that tabulates Table 4 and Samarati's binary search
//! on the same (and scaled) microdata.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psens_algorithms::exhaustive::exhaustive_scan;
use psens_algorithms::samarati::k_minimal_generalization;
use psens_bench::workloads;
use psens_datasets::hierarchies::figure2_qi_space;
use psens_datasets::paper::figure3_microdata;
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    let im = figure3_microdata();
    let qi = figure2_qi_space();

    group.bench_function("exhaustive_ts_sweep", |b| {
        b.iter(|| {
            for ts in 0..=10usize {
                black_box(exhaustive_scan(&im, &qi, 1, 3, ts).expect("valid"));
            }
        });
    });
    group.bench_function("samarati_ts_sweep", |b| {
        b.iter(|| {
            for ts in 0..=10usize {
                black_box(k_minimal_generalization(&im, &qi, 3, ts).expect("valid"));
            }
        });
    });

    // The same search on tiled copies of the microdata (10 -> 10,000 rows).
    for &factor in &[10usize, 100, 1000] {
        let scaled = workloads::figure3_scaled(factor);
        group.bench_with_input(
            BenchmarkId::new("samarati_scaled", factor * 10),
            &factor,
            |b, _| {
                b.iter(|| {
                    black_box(k_minimal_generalization(&scaled, &qi, 3, factor).expect("valid"))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
