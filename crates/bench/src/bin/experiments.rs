//! Regenerates every table and figure of the paper from this implementation.
//!
//! Run with: `cargo run --release -p psens-bench --bin experiments`

use psens_bench::experiments;

fn section(title: &str, body: String) {
    println!("==============================================================");
    println!("{title}");
    println!("==============================================================");
    println!("{body}");
}

fn main() {
    section(
        "Tables 1-2: homogeneity attack on a 2-anonymous release",
        experiments::table1_and_2_attack(),
    );
    section(
        "Table 3: p-sensitive k-anonymity walkthrough",
        experiments::table3_walkthrough(),
    );
    section(
        "Figure 1: domain & value generalization hierarchies",
        experiments::figure1_hierarchies(),
    );
    section(
        "Figure 2: generalization lattice for ZipCode and Sex",
        experiments::figure2_lattice(),
    );
    section(
        "Figure 3 + Table 4: minimal generalization with suppression",
        experiments::figure3_and_table4(),
    );
    section(
        "Tables 5-6: frequency sets and the two necessary conditions",
        experiments::tables5_and_6(),
    );
    section(
        "Table 7: Adult key-attribute generalizations",
        experiments::table7_adult_hierarchies(),
    );
    section(
        "Table 8: attribute disclosures under k-anonymity (synthetic Adult)",
        experiments::table8_adult(),
    );
    section(
        "Future work: Algorithm 3 with vs without the necessary conditions",
        experiments::algorithm3_ablation(),
    );
}
