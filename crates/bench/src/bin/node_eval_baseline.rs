//! Records the node-evaluation baseline: lattice nodes per second through
//! the materializing pipeline and through the code-mapped kernel (serial and
//! parallel), on the synthetic Adult workload, plus the verdict-cache and
//! parallel-search figures on the wide 8-QI lattice.
//!
//! Run with:
//! `cargo run --release -p psens-bench --bin node_eval_baseline > BENCH_4.json`
//! (BENCH_1/BENCH_2 are earlier recordings of the same workload; BENCH_3
//! added the budgeted-kernel overhead pair; BENCH_4 adds the verdict-cache
//! overhead/speedup pairs and the thread-scaling pair, with the recording
//! host's `available_parallelism` stated so scaling numbers from 1-core CI
//! boxes are not mistaken for regressions.)
//!
//! Unlike the Criterion benches this needs no dev-dependencies, so it runs
//! in the hermetic (offline) build too.

use psens_algorithms::{
    exhaustive_scan, exhaustive_scan_tuned, parallel_exhaustive_scan,
    pk_minimal_generalization_tuned, Pruning, Tuning,
};
use psens_bench::workloads;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{NoopObserver, RecordingObserver, SearchBudget, VerdictStore};
use psens_datasets::hierarchies::{adult_qi_space, adult_wide_qi_space};
use std::hint::black_box;
use std::time::Instant;

const N_ROWS: usize = 10_000;
const K: u32 = 3;
const P: u32 = 2;
const TS: usize = 500;
const WIDE_ROWS: usize = 10_000;

/// Repeats `f` until at least `secs` seconds have elapsed (minimum 3
/// repetitions) and returns the rate in units of `per_rep / second`.
fn rate_for(per_rep: usize, secs: f64, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        if reps >= 3 && start.elapsed().as_secs_f64() >= secs {
            break;
        }
    }
    (per_rep as f64 * f64::from(reps)) / start.elapsed().as_secs_f64()
}

/// Default ~0.5 s measurement window.
fn rate(per_rep: usize, f: impl FnMut()) -> f64 {
    rate_for(per_rep, 0.5, f)
}

fn main() {
    let qi = adult_qi_space();
    let table = workloads::adult(N_ROWS);
    let ctx = MaskingContext {
        initial: &table,
        qi: &qi,
        k: K,
        p: P,
        ts: TS,
    };
    let stats = ctx.initial_stats();
    let ectx = EvalContext::build(&ctx).expect("context builds");
    let mut eval = ectx.evaluator();
    let nodes = qi.lattice().all_nodes();
    let n_nodes = nodes.len();

    let materializing = rate(n_nodes, || {
        for node in &nodes {
            black_box(ctx.evaluate(node, &stats).expect("evaluate"));
        }
    });
    // The observed entry point with the no-op observer must monomorphize to
    // the plain kernel, so these two rates back the ≤2% overhead claim.
    // Clock-drift on shared machines biases whichever runs later, so the
    // pair is measured in alternating rounds and each side keeps its best.
    let mut code_mapped = 0.0f64;
    let mut code_mapped_noop = 0.0f64;
    for _ in 0..5 {
        code_mapped = code_mapped.max(rate_for(n_nodes, 0.4, || {
            for node in &nodes {
                black_box(eval.check(node, &stats).expect("check"));
            }
        }));
        code_mapped_noop = code_mapped_noop.max(rate_for(n_nodes, 0.4, || {
            for node in &nodes {
                black_box(
                    eval.check_observed(node, &stats, &NoopObserver)
                        .expect("check"),
                );
            }
        }));
    }
    // The budgeted entry point with an unlimited budget is the robustness
    // layer's overhead claim: one atomic increment plus a periodic poll per
    // node must stay within 2% of the bare kernel. Same alternating
    // best-of-rounds discipline as above.
    let unlimited = SearchBudget::unlimited();
    let mut code_mapped_bare = 0.0f64;
    let mut code_mapped_budgeted = 0.0f64;
    for _ in 0..5 {
        code_mapped_bare = code_mapped_bare.max(rate_for(n_nodes, 0.4, || {
            for node in &nodes {
                black_box(eval.check(node, &stats).expect("check"));
            }
        }));
        code_mapped_budgeted = code_mapped_budgeted.max(rate_for(n_nodes, 0.4, || {
            let state = unlimited.start();
            for node in &nodes {
                // `ControlFlow` is must_use; the measurement discards it.
                let _ = black_box(
                    eval.check_budgeted(node, &stats, &state, &NoopObserver)
                        .expect("check"),
                );
            }
        }));
    }
    // Verdict-cache overhead: the full serial scan with no store versus a
    // fresh (all-miss) store per repetition. Misses pay a shard lookup, a
    // record, and the monotonicity closure — the ≤2% claim from DESIGN.md
    // §11. Alternating best-of-rounds, as above.
    let lattice = qi.lattice();
    let mut scan_uncached = 0.0f64;
    let mut scan_cached_cold = 0.0f64;
    for _ in 0..5 {
        scan_uncached = scan_uncached.max(rate_for(n_nodes, 0.4, || {
            black_box(
                exhaustive_scan_tuned(
                    &table,
                    &qi,
                    P,
                    K,
                    TS,
                    &unlimited,
                    Tuning::default(),
                    &NoopObserver,
                )
                .expect("scan"),
            );
        }));
        scan_cached_cold = scan_cached_cold.max(rate_for(n_nodes, 0.4, || {
            let store = VerdictStore::new(&lattice, TS);
            let tuning = Tuning {
                threads: 1,
                cache: Some(&store),
                chunk_rows: 0,
            };
            black_box(
                exhaustive_scan_tuned(&table, &qi, P, K, TS, &unlimited, tuning, &NoopObserver)
                    .expect("scan"),
            );
        }));
    }

    let recorder = RecordingObserver::new();
    let code_mapped_recording = rate(n_nodes, || {
        for node in &nodes {
            black_box(eval.check_observed(node, &stats, &recorder).expect("check"));
        }
    });
    let exhaustive_serial = rate(n_nodes, || {
        black_box(exhaustive_scan(&table, &qi, P, K, TS).expect("scan"));
    });
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    let exhaustive_parallel = rate(n_nodes, || {
        black_box(parallel_exhaustive_scan(&table, &qi, P, K, TS, threads).expect("scan"));
    });

    // The wide 8-QI lattice (7,776 nodes): Samarati wall-clock uncached,
    // with a cold store, with a pre-warmed store, and with 8-way parallel
    // probing. `host_parallelism` is recorded because the thread-scaling
    // pair is only meaningful relative to the cores actually available.
    let wide_qi = adult_wide_qi_space();
    let wide = workloads::adult_wide(WIDE_ROWS);
    let wide_lattice = wide_qi.lattice();
    let wide_nodes = wide_lattice.node_count();
    let samarati = |tuning: Tuning<'_>| {
        black_box(
            pk_minimal_generalization_tuned(
                &wide,
                &wide_qi,
                P,
                K,
                TS,
                Pruning::NecessaryConditions,
                &unlimited,
                tuning,
                &NoopObserver,
            )
            .expect("search"),
        );
    };
    let secs_of = |rate: f64| 1.0 / rate;
    let wide_uncached = secs_of(rate(1, || samarati(Tuning::default())));
    let wide_cached_cold = secs_of(rate(1, || {
        let store = VerdictStore::new(&wide_lattice, TS);
        samarati(Tuning {
            threads: 1,
            cache: Some(&store),
            chunk_rows: 0,
        });
    }));
    let warm_store = VerdictStore::new(&wide_lattice, TS);
    samarati(Tuning {
        threads: 1,
        cache: Some(&warm_store),
        chunk_rows: 0,
    });
    let wide_cached_warm = secs_of(rate(1, || {
        samarati(Tuning {
            threads: 1,
            cache: Some(&warm_store),
            chunk_rows: 0,
        });
    }));
    let wide_threads_1 = secs_of(rate(1, || {
        samarati(Tuning {
            threads: 1,
            cache: None,
            chunk_rows: 0,
        });
    }));
    let wide_threads_8 = secs_of(rate(1, || {
        samarati(Tuning {
            threads: 8,
            cache: None,
            chunk_rows: 0,
        });
    }));

    println!("{{");
    println!("  \"workload\": {{");
    println!("    \"dataset\": \"synthetic Adult\",");
    println!("    \"n_rows\": {N_ROWS},");
    println!("    \"lattice_nodes\": {n_nodes},");
    println!("    \"k\": {K},");
    println!("    \"p\": {P},");
    println!("    \"ts\": {TS}");
    println!("  }},");
    println!("  \"nodes_per_sec\": {{");
    println!("    \"materializing_serial\": {materializing:.1},");
    println!("    \"code_mapped_serial\": {code_mapped:.1},");
    println!("    \"code_mapped_serial_noop_observed\": {code_mapped_noop:.1},");
    println!("    \"code_mapped_serial_unlimited_budget\": {code_mapped_budgeted:.1},");
    println!("    \"code_mapped_serial_recording_observed\": {code_mapped_recording:.1},");
    println!("    \"exhaustive_serial\": {exhaustive_serial:.1},");
    println!("    \"exhaustive_parallel_{threads}_threads\": {exhaustive_parallel:.1}");
    println!("  }},");
    println!(
        "  \"speedup_code_mapped_vs_materializing\": {:.2},",
        code_mapped / materializing
    );
    println!(
        "  \"noop_observer_overhead_pct\": {:.2},",
        (code_mapped / code_mapped_noop - 1.0) * 100.0
    );
    println!(
        "  \"unlimited_budget_overhead_pct\": {:.2},",
        (code_mapped_bare / code_mapped_budgeted - 1.0) * 100.0
    );
    println!("  \"verdict_cache\": {{");
    println!("    \"exhaustive_nodes_per_sec_uncached\": {scan_uncached:.1},");
    println!("    \"exhaustive_nodes_per_sec_cached_cold\": {scan_cached_cold:.1},");
    println!(
        "    \"cold_cache_overhead_pct\": {:.2}",
        (scan_uncached / scan_cached_cold - 1.0) * 100.0
    );
    println!("  }},");
    println!("  \"wide_lattice\": {{");
    println!("    \"dataset\": \"synthetic Adult, 8 QI attributes\",");
    println!("    \"n_rows\": {WIDE_ROWS},");
    println!("    \"lattice_nodes\": {wide_nodes},");
    println!("    \"k\": {K},");
    println!("    \"p\": {P},");
    println!("    \"ts\": {TS},");
    println!("    \"samarati_secs_uncached\": {wide_uncached:.4},");
    println!("    \"samarati_secs_cached_cold\": {wide_cached_cold:.4},");
    println!("    \"samarati_secs_cached_warm\": {wide_cached_warm:.4},");
    println!(
        "    \"speedup_warm_cache_vs_uncached\": {:.2},",
        wide_uncached / wide_cached_warm
    );
    println!("    \"samarati_secs_threads_1\": {wide_threads_1:.4},");
    println!("    \"samarati_secs_threads_8\": {wide_threads_8:.4},");
    println!(
        "    \"parallel_speedup_8_vs_1\": {:.2},",
        wide_threads_1 / wide_threads_8
    );
    println!(
        "    \"host_parallelism\": {}",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!("  }}");
    println!("}}");
}
