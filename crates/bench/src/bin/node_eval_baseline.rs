//! Records the node-evaluation baseline: lattice nodes per second through
//! the materializing pipeline and through the code-mapped kernel (serial and
//! parallel), on the synthetic Adult workload.
//!
//! Run with:
//! `cargo run --release -p psens-bench --bin node_eval_baseline > BENCH_1.json`
//!
//! Unlike the Criterion benches this needs no dev-dependencies, so it runs
//! in the hermetic (offline) build too.

use psens_algorithms::{exhaustive_scan, parallel_exhaustive_scan};
use psens_bench::workloads;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_datasets::hierarchies::adult_qi_space;
use std::hint::black_box;
use std::time::Instant;

const N_ROWS: usize = 10_000;
const K: u32 = 3;
const P: u32 = 2;
const TS: usize = 500;

/// Repeats `f` until at least ~0.5 s has elapsed (minimum 3 repetitions) and
/// returns the rate in units of `per_rep / second`.
fn rate(per_rep: usize, mut f: impl FnMut()) -> f64 {
    // Warm-up.
    f();
    let mut reps = 0u32;
    let start = Instant::now();
    loop {
        f();
        reps += 1;
        if reps >= 3 && start.elapsed().as_secs_f64() >= 0.5 {
            break;
        }
    }
    (per_rep as f64 * f64::from(reps)) / start.elapsed().as_secs_f64()
}

fn main() {
    let qi = adult_qi_space();
    let table = workloads::adult(N_ROWS);
    let ctx = MaskingContext {
        initial: &table,
        qi: &qi,
        k: K,
        p: P,
        ts: TS,
    };
    let stats = ctx.initial_stats();
    let ectx = EvalContext::build(&ctx).expect("context builds");
    let mut eval = ectx.evaluator();
    let nodes = qi.lattice().all_nodes();
    let n_nodes = nodes.len();

    let materializing = rate(n_nodes, || {
        for node in &nodes {
            black_box(ctx.evaluate(node, &stats).expect("evaluate"));
        }
    });
    let code_mapped = rate(n_nodes, || {
        for node in &nodes {
            black_box(eval.check(node, &stats).expect("check"));
        }
    });
    let exhaustive_serial = rate(n_nodes, || {
        black_box(exhaustive_scan(&table, &qi, P, K, TS).expect("scan"));
    });
    let threads = std::thread::available_parallelism().map_or(4, usize::from);
    let exhaustive_parallel = rate(n_nodes, || {
        black_box(parallel_exhaustive_scan(&table, &qi, P, K, TS, threads).expect("scan"));
    });

    println!("{{");
    println!("  \"workload\": {{");
    println!("    \"dataset\": \"synthetic Adult\",");
    println!("    \"n_rows\": {N_ROWS},");
    println!("    \"lattice_nodes\": {n_nodes},");
    println!("    \"k\": {K},");
    println!("    \"p\": {P},");
    println!("    \"ts\": {TS}");
    println!("  }},");
    println!("  \"nodes_per_sec\": {{");
    println!("    \"materializing_serial\": {materializing:.1},");
    println!("    \"code_mapped_serial\": {code_mapped:.1},");
    println!("    \"exhaustive_serial\": {exhaustive_serial:.1},");
    println!("    \"exhaustive_parallel_{threads}_threads\": {exhaustive_parallel:.1}");
    println!("  }},");
    println!(
        "  \"speedup_code_mapped_vs_materializing\": {:.2}",
        code_mapped / materializing
    );
    println!("}}");
}
