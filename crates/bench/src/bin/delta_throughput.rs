//! Records the incremental re-anonymization throughput under live updates
//! (DESIGN.md §17): per delta batch, the incremental path (maintained
//! [`LiveTable`] statistics + selectively invalidated [`VerdictStore`] +
//! cached search) versus the pre-PR-10 baseline of applying the batch and
//! re-anonymizing from scratch.
//!
//! Run with:
//! `cargo run --release -p psens-bench --bin delta_throughput -- --out BENCH_10.json`
//!
//! Honesty rules:
//!
//! - every step *asserts* the two paths return the same winning node and
//!   suppression count before its timing is recorded — a fast-but-wrong
//!   incremental layer turns the whole run red, not into a good number;
//! - the delta mix is the oracle's own generator (`psens_testkit::deltas`),
//!   seeded, with duplicate appends, deletes, net-zero churn, and fresh
//!   rows — not an append-only stream cherry-picked to keep every verdict;
//! - both paths run at one thread; `host_parallelism` is recorded so these
//!   figures are not compared across hosts (thread scaling is BENCH_6's
//!   story, not this one's);
//! - the kept/invalidated counters are published, so a classifier that
//!   silently degrades to drop-everything is visible in the artifact.
//!
//! Like `chunked_scaling`, this is a plain binary with no dev-dependencies
//! and runs in the hermetic (offline) build.

use psens_algorithms::{
    pk_minimal_generalization_model, pk_minimal_generalization_model_with_stats, Pruning, Tuning,
};
use psens_core::{
    invalidation_for, LiveTable, ModelSpec, NoopObserver, SearchBudget, VerdictStore,
};
use psens_datasets::{ScaleGenerator, Spec};
use psens_microdata::Table;
use psens_testkit::deltas::delta_script;
use std::time::Instant;

const SIZES: [usize; 2] = [2_000, 20_000];
const N_DELTAS: usize = 200;
const SEED: u64 = 10;
const MODEL: ModelSpec = ModelSpec::PSensitiveK { p: 2 };
const K: u32 = 3;
const TS: usize = 10;

struct SizeReport {
    n_rows_start: usize,
    n_rows_end: usize,
    incremental_secs: f64,
    scratch_secs: f64,
    /// Sum of table sizes over the steps — each step re-verifies the whole
    /// table, so `sum_rows / secs` is the sustained verification rate.
    sum_rows: u64,
    kept: u64,
    invalidated: u64,
}

fn bench_size(n: usize) -> SizeReport {
    let base = ScaleGenerator::new(SEED).generate(n);
    let qi = Spec::scale().qi_space().expect("scale hierarchies");
    let keys = base.schema().key_indices();
    let confs = base.schema().confidential_indices();
    let steps = delta_script(&base, N_DELTAS, SEED, |rng| {
        base.row(rng.below(n)).expect("index in range")
    });

    let mut live = LiveTable::new(base.clone(), keys, confs).expect("valid columns");
    let store = VerdictStore::for_model(&qi.lattice(), TS, MODEL.is_monotone());
    // Warm the store with the baseline search, as the daemon's `watch`
    // registration does; the first delta already has verdicts to keep.
    pk_minimal_generalization_model(
        &base,
        &qi,
        MODEL,
        K,
        TS,
        Pruning::NecessaryConditions,
        &SearchBudget::unlimited(),
        Tuning {
            threads: 1,
            cache: Some(&store),
            chunk_rows: 0,
        },
        &NoopObserver,
    )
    .expect("baseline search");

    let mut scratch_table: Table = base.clone();
    let (mut incremental_secs, mut scratch_secs) = (0.0f64, 0.0f64);
    let mut sum_rows = 0u64;
    for (step_ix, step) in steps.iter().enumerate() {
        let started = Instant::now();
        let effect = live.apply(&step.batch).expect("generated batch applies");
        let stats = live.stats();
        store.invalidate(invalidation_for(&effect, &stats, &MODEL, K as usize));
        let incremental = pk_minimal_generalization_model_with_stats(
            live.table(),
            &qi,
            MODEL,
            K,
            TS,
            Pruning::NecessaryConditions,
            &SearchBudget::unlimited(),
            Tuning {
                threads: 1,
                cache: Some(&store),
                chunk_rows: 0,
            },
            &NoopObserver,
            &stats,
        )
        .expect("incremental search");
        incremental_secs += started.elapsed().as_secs_f64();

        let started = Instant::now();
        scratch_table = step.batch.apply(&scratch_table).expect("batch applies");
        let scratch = pk_minimal_generalization_model(
            &scratch_table,
            &qi,
            MODEL,
            K,
            TS,
            Pruning::NecessaryConditions,
            &SearchBudget::unlimited(),
            Tuning::default(),
            &NoopObserver,
        )
        .expect("scratch search");
        scratch_secs += started.elapsed().as_secs_f64();

        assert_eq!(
            incremental.node, scratch.node,
            "incremental/scratch winner divergence at step {step_ix}"
        );
        assert_eq!(
            incremental.suppressed, scratch.suppressed,
            "incremental/scratch suppression divergence at step {step_ix}"
        );
        sum_rows += live.table().n_rows() as u64;
    }

    let counters = store.counters();
    SizeReport {
        n_rows_start: n,
        n_rows_end: live.table().n_rows(),
        incremental_secs,
        scratch_secs,
        sum_rows,
        kept: counters.kept,
        invalidated: counters.invalidated,
    }
}

fn render_json(reports: &[SizeReport], host_parallelism: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "  \"bench\": \"BENCH_10\",");
    let _ = writeln!(w, "  \"workload\": {{");
    let _ = writeln!(
        w,
        "    \"dataset\": \"scale (Adult-shaped, no identifier)\","
    );
    let _ = writeln!(w, "    \"generator\": \"psens_datasets::ScaleGenerator\",");
    let _ = writeln!(
        w,
        "    \"deltas\": \"psens_testkit::deltas::delta_script (duplicates, deletes, net-zero churn, fresh rows)\","
    );
    let _ = writeln!(w, "    \"model\": \"psens-k\",");
    let _ = writeln!(w, "    \"p\": 2,");
    let _ = writeln!(w, "    \"k\": {K},");
    let _ = writeln!(w, "    \"ts\": {TS},");
    let _ = writeln!(w, "    \"n_deltas\": {N_DELTAS},");
    let _ = writeln!(w, "    \"seed\": {SEED},");
    let _ = writeln!(w, "    \"threads\": 1");
    let _ = writeln!(w, "  }},");
    let _ = writeln!(w, "  \"delta_throughput\": [");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(w, "    {{");
        let _ = writeln!(w, "      \"n_rows_start\": {},", r.n_rows_start);
        let _ = writeln!(w, "      \"n_rows_end\": {},", r.n_rows_end);
        let _ = writeln!(w, "      \"host_parallelism\": {host_parallelism},");
        let _ = writeln!(w, "      \"incremental_secs\": {:.4},", r.incremental_secs);
        let _ = writeln!(w, "      \"scratch_secs\": {:.4},", r.scratch_secs);
        let _ = writeln!(
            w,
            "      \"deltas_per_sec_incremental\": {:.1},",
            N_DELTAS as f64 / r.incremental_secs
        );
        let _ = writeln!(
            w,
            "      \"deltas_per_sec_scratch\": {:.1},",
            N_DELTAS as f64 / r.scratch_secs
        );
        let _ = writeln!(
            w,
            "      \"rows_verified_per_sec_incremental\": {:.0},",
            r.sum_rows as f64 / r.incremental_secs
        );
        let _ = writeln!(
            w,
            "      \"rows_verified_per_sec_scratch\": {:.0},",
            r.sum_rows as f64 / r.scratch_secs
        );
        // A value below 1.00 is a regression and must print as such.
        let _ = writeln!(
            w,
            "      \"speedup_incremental_vs_scratch\": {:.2},",
            r.scratch_secs / r.incremental_secs
        );
        let _ = writeln!(w, "      \"verdicts_kept\": {},", r.kept);
        let _ = writeln!(w, "      \"verdicts_invalidated\": {},", r.invalidated);
        let _ = writeln!(
            w,
            "      \"kept_fraction\": {:.3}",
            r.kept as f64 / (r.kept + r.invalidated).max(1) as f64
        );
        let _ = write!(w, "    }}");
        let _ = writeln!(w, "{}", if i + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(w, "  ],");
    let _ = writeln!(w, "  \"host_parallelism\": {host_parallelism}");
    let _ = writeln!(w, "}}");
    out
}

/// Validated emission, same contract as `chunked_scaling`: with `--out`,
/// write + re-read + byte-compare + re-parse, and any failure is loud.
fn emit(text: &str, out_path: Option<&str>) -> Result<(), String> {
    match out_path {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
            let back =
                std::fs::read_to_string(path).map_err(|e| format!("re-reading {path}: {e}"))?;
            if back != text {
                return Err(format!(
                    "{path}: content mismatch after write ({} bytes on disk, {} rendered)",
                    back.len(),
                    text.len()
                ));
            }
            psens_microdata::JsonValue::parse(&back)
                .map_err(|e| format!("{path}: emitted JSON does not parse: {e}"))?;
            eprintln!("wrote {path} ({} bytes, validated)", back.len());
            Ok(())
        }
        None => {
            use std::io::Write;
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(text.as_bytes())
                .and_then(|()| stdout.flush())
                .map_err(|e| format!("writing BENCH JSON to stdout: {e}"))
        }
    }
}

fn out_arg(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            return Some(
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("error: --out requires a file path");
                        std::process::exit(1);
                    })
                    .clone(),
            );
        }
        if let Some(path) = a.strip_prefix("--out=") {
            return Some(path.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = out_arg(&args);
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut reports = Vec::new();
    for &n in &SIZES {
        eprintln!("benching {n} rows x {N_DELTAS} deltas...");
        reports.push(bench_size(n));
    }
    let text = render_json(&reports, host_parallelism);
    if let Err(e) = emit(&text, out_path.as_deref()) {
        eprintln!("error: BENCH JSON emission failed: {e}");
        std::process::exit(1);
    }
}
