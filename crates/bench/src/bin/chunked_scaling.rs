//! Records the chunked group-by scaling curve on the scale workload
//! (Adult-shaped, no identifier column, bounded dictionaries): serial
//! `GroupBy::compute` versus the morsel-driven hash-partitioned
//! `GroupBy::compute_chunked` at 100k/1M/10M rows and 1/2/4/8 threads,
//! with the executor's per-phase breakdown (partition / build / reorder).
//!
//! Run with:
//! `cargo run --release -p psens-bench --bin chunked_scaling > BENCH_6.json`
//!
//! Or as the CI thread-scaling gate:
//! `cargo run --release -p psens-bench --bin chunked_scaling -- --gate`
//! which checks that threads=8 beats threads=1 wall-clock at 10M rows on
//! hosts with at least [`GATE_MIN_CORES`] cores (exit 1 on regression) and
//! SKIPs loudly on smaller hosts (exit 0 — a 1-core box cannot demonstrate
//! scaling, and silently "passing" there would hide real regressions).
//!
//! Honesty rules learned from BENCH_5, whose `chunked_speedup_best_vs_1`
//! could only ever print ≥ 1.00 (the "best" included threads=1 itself, so a
//! 0.86x regression rounded to a reassuring 1.00):
//!
//! - per-thread-count speedups `speedup_T_vs_1 = t1_secs / tT_secs` to two
//!   decimals, so a slowdown prints as e.g. 0.86, never 1.00;
//! - `host_parallelism` recorded per entry, so scaling figures from 1-core
//!   CI boxes are not mistaken for (or used to excuse) regressions.
//!
//! `single_thread_overhead_pct` (largest size) still tracks the streaming
//! one-thread path against the serial kernel in alternating best-of rounds:
//! the threads=1 specialization must stay within a few percent of
//! `GroupBy::compute` — it is the price of admission for bounded-memory
//! ingest.
//!
//! Unlike the Criterion benches this needs no dev-dependencies, so it runs
//! in the hermetic (offline) build too.

use psens_bench::workloads;
use psens_microdata::GroupBy;
use std::hint::black_box;
use std::time::Instant;

const CHUNK_ROWS: usize = 65_536;
const SIZES: [usize; 3] = [100_000, 1_000_000, 10_000_000];
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Minimum host cores for the `--gate` check to be meaningful.
const GATE_MIN_CORES: usize = 4;
/// Row count the gate measures at (the largest benched size).
const GATE_ROWS: usize = 10_000_000;

/// Best wall-clock of `rounds` timed repetitions (after one warm-up call).
fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One benched size: timings per thread count plus the 8-thread phase
/// breakdown.
struct SizeReport {
    n_rows: usize,
    n_chunks: usize,
    serial_secs: f64,
    by_threads: Vec<(usize, f64)>,
    /// (partition, build, reorder) seconds of one profiled multi-thread run
    /// at the highest thread count (zeros when that run streamed serially).
    phases_threads_max: (f64, f64, f64),
}

fn bench_size(n: usize, host_parallelism: usize) -> (SizeReport, f64) {
    let rounds = if n >= 10_000_000 { 3 } else { 5 };
    let chunked = workloads::scale_chunked(n, CHUNK_ROWS);
    let table = chunked.to_table();
    let keys = table.schema().key_indices();

    // Sanity: the executor must reproduce the serial group ids exactly
    // before its timings mean anything.
    let serial_gb = GroupBy::compute(&table, &keys);
    let chunked_gb = GroupBy::compute_chunked(&chunked, &keys, host_parallelism.max(2));
    assert_eq!(serial_gb.n_groups(), chunked_gb.n_groups());
    assert_eq!(serial_gb.assignments(), chunked_gb.assignments());

    // Alternating best-of rounds for the serial/one-thread pair, so clock
    // drift on shared machines does not bias either side.
    let mut serial = f64::INFINITY;
    let mut chunked_1 = f64::INFINITY;
    for _ in 0..rounds {
        serial = serial.min(best_secs(1, || {
            black_box(GroupBy::compute(black_box(&table), &keys));
        }));
        chunked_1 = chunked_1.min(best_secs(1, || {
            black_box(GroupBy::compute_chunked(black_box(&chunked), &keys, 1));
        }));
    }
    let mut by_threads = vec![(1usize, chunked_1)];
    for &threads in &THREADS[1..] {
        by_threads.push((
            threads,
            best_secs(rounds, || {
                black_box(GroupBy::compute_chunked(
                    black_box(&chunked),
                    &keys,
                    threads,
                ));
            }),
        ));
    }
    let max_threads = *THREADS.last().expect("non-empty thread list");
    let (_, timings) = GroupBy::compute_chunked_profiled(&chunked, &keys, max_threads, 0);
    let overhead_pct = (chunked_1 / serial - 1.0) * 100.0;
    (
        SizeReport {
            n_rows: n,
            n_chunks: chunked.n_chunks(),
            serial_secs: serial,
            by_threads,
            phases_threads_max: (
                timings.partition.as_secs_f64(),
                timings.build.as_secs_f64(),
                timings.reorder.as_secs_f64(),
            ),
        },
        overhead_pct,
    )
}

fn print_json(reports: &[SizeReport], overhead_pct: f64, host_parallelism: usize) {
    println!("{{");
    println!("  \"workload\": {{");
    println!("    \"dataset\": \"scale (Adult-shaped, no identifier)\",");
    println!("    \"generator\": \"psens_datasets::ScaleGenerator\",");
    println!("    \"group_by\": \"key attributes (Age, MaritalStatus, Race, Sex)\",");
    println!("    \"executor\": \"morsel-driven hash-partitioned (PR 6)\",");
    println!("    \"chunk_rows\": {CHUNK_ROWS}");
    println!("  }},");
    println!("  \"groupby_scaling\": [");
    for (i, report) in reports.iter().enumerate() {
        println!("    {{");
        println!("      \"n_rows\": {},", report.n_rows);
        println!("      \"n_chunks\": {},", report.n_chunks);
        println!("      \"host_parallelism\": {host_parallelism},");
        println!("      \"serial_secs\": {:.4},", report.serial_secs);
        for (threads, secs) in &report.by_threads {
            println!("      \"chunked_secs_threads_{threads}\": {secs:.4},");
        }
        let (_, chunked_1) = report.by_threads[0];
        // Per-thread-count speedup vs one thread; values below 1.00 are
        // regressions and must print as such.
        for (threads, secs) in &report.by_threads[1..] {
            println!("      \"speedup_{threads}_vs_1\": {:.2},", chunked_1 / secs);
        }
        let best = report
            .by_threads
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        let (partition, build, reorder) = report.phases_threads_max;
        let max_threads = THREADS.last().expect("non-empty thread list");
        println!("      \"phases_threads_{max_threads}\": {{");
        println!("        \"partition_secs\": {partition:.4},");
        println!("        \"build_secs\": {build:.4},");
        println!("        \"reorder_secs\": {reorder:.4}");
        println!("      }},");
        println!(
            "      \"rows_per_sec_best\": {:.0}",
            report.n_rows as f64 / best
        );
        print!("    }}");
        println!("{}", if i + 1 < reports.len() { "," } else { "" });
    }
    println!("  ],");
    println!("  \"single_thread_overhead_pct\": {overhead_pct:.2},");
    println!("  \"host_parallelism\": {host_parallelism}");
    println!("}}");
}

/// The CI thread-scaling gate (see module docs). Returns the process exit
/// code.
fn gate(host_parallelism: usize) -> i32 {
    eprintln!("thread-scaling gate: chunked group-by at {GATE_ROWS} rows, threads=8 vs threads=1");
    if host_parallelism < GATE_MIN_CORES {
        eprintln!("!!------------------------------------------------------------------!!");
        eprintln!(
            "!! SKIPPED: host has {host_parallelism} core(s), gate needs >= {GATE_MIN_CORES}."
        );
        eprintln!("!! Thread scaling was NOT verified on this machine — run the gate on");
        eprintln!("!! a multi-core host before trusting parallel group-by performance.");
        eprintln!("!!------------------------------------------------------------------!!");
        return 0;
    }
    let chunked = workloads::scale_chunked(GATE_ROWS, CHUNK_ROWS);
    let keys = chunked.schema().key_indices();
    let rounds = 3;
    let t1 = best_secs(rounds, || {
        black_box(GroupBy::compute_chunked(black_box(&chunked), &keys, 1));
    });
    let t8 = best_secs(rounds, || {
        black_box(GroupBy::compute_chunked(black_box(&chunked), &keys, 8));
    });
    let speedup = t1 / t8;
    eprintln!(
        "threads=1: {t1:.4}s  threads=8: {t8:.4}s  speedup: {speedup:.2}x  \
         (host_parallelism: {host_parallelism})"
    );
    if t8 < t1 {
        eprintln!("gate PASSED: threads=8 beats threads=1");
        0
    } else {
        eprintln!("gate FAILED: threads=8 did not beat threads=1 wall-clock");
        1
    }
}

fn main() {
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    if std::env::args().any(|a| a == "--gate") {
        std::process::exit(gate(host_parallelism));
    }
    let mut reports = Vec::new();
    let mut overhead_pct = 0.0f64;
    for &n in &SIZES {
        let (report, overhead) = bench_size(n, host_parallelism);
        overhead_pct = overhead; // keep the largest size's figure
        reports.push(report);
    }
    print_json(&reports, overhead_pct, host_parallelism);
}
