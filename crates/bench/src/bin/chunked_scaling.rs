//! Records the chunked group-by scaling curve on the scale workload
//! (Adult-shaped, no identifier column, bounded dictionaries): serial
//! `GroupBy::compute` versus the two-pass parallel radix
//! `GroupBy::compute_chunked` at 100k/1M/10M rows and 1/2/4/8 threads.
//!
//! Run with:
//! `cargo run --release -p psens-bench --bin chunked_scaling > BENCH_5.json`
//!
//! Two numbers back the design claims:
//!
//! - `single_thread_overhead_pct` (largest size): `compute_chunked` at one
//!   thread versus the serial path on the materialized table, measured in
//!   alternating best-of rounds so clock drift on shared machines does not
//!   bias either side. The chunked merge must cost ≤2% — it is the price of
//!   admission for bounded-memory ingest.
//! - the per-size thread curve, with `host_parallelism` recorded so scaling
//!   figures from 1-core CI boxes are not mistaken for regressions.
//!
//! Unlike the Criterion benches this needs no dev-dependencies, so it runs
//! in the hermetic (offline) build too.

use psens_bench::workloads;
use psens_microdata::GroupBy;
use std::hint::black_box;
use std::time::Instant;

const CHUNK_ROWS: usize = 65_536;
const SIZES: [usize; 3] = [100_000, 1_000_000, 10_000_000];
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Best wall-clock of `rounds` timed repetitions (after one warm-up call).
fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    let mut size_reports = Vec::new();
    let mut overhead_pct = 0.0f64;
    for (i, &n) in SIZES.iter().enumerate() {
        let rounds = if n >= 10_000_000 { 3 } else { 5 };
        let chunked = workloads::scale_chunked(n, CHUNK_ROWS);
        let table = chunked.to_table();
        let keys = table.schema().key_indices();

        // Sanity: the chunked merge must reproduce the serial group ids
        // exactly before its timings mean anything.
        let serial_gb = GroupBy::compute(&table, &keys);
        let chunked_gb = GroupBy::compute_chunked(&chunked, &keys, host_parallelism);
        assert_eq!(serial_gb.n_groups(), chunked_gb.n_groups());
        assert_eq!(serial_gb.assignments(), chunked_gb.assignments());

        // Alternating best-of rounds for the serial/one-thread pair.
        let mut serial = f64::INFINITY;
        let mut chunked_1 = f64::INFINITY;
        for _ in 0..rounds {
            serial = serial.min(best_secs(1, || {
                black_box(GroupBy::compute(black_box(&table), &keys));
            }));
            chunked_1 = chunked_1.min(best_secs(1, || {
                black_box(GroupBy::compute_chunked(black_box(&chunked), &keys, 1));
            }));
        }
        let mut by_threads = vec![(1usize, chunked_1)];
        for &threads in &THREADS[1..] {
            by_threads.push((
                threads,
                best_secs(rounds, || {
                    black_box(GroupBy::compute_chunked(
                        black_box(&chunked),
                        &keys,
                        threads,
                    ));
                }),
            ));
        }
        if i == SIZES.len() - 1 {
            overhead_pct = (chunked_1 / serial - 1.0) * 100.0;
        }
        size_reports.push((n, chunked.n_chunks(), serial, by_threads));
    }

    println!("{{");
    println!("  \"workload\": {{");
    println!("    \"dataset\": \"scale (Adult-shaped, no identifier)\",");
    println!("    \"generator\": \"psens_datasets::ScaleGenerator\",");
    println!("    \"group_by\": \"key attributes (Age, MaritalStatus, Race, Sex)\",");
    println!("    \"chunk_rows\": {CHUNK_ROWS}");
    println!("  }},");
    println!("  \"groupby_scaling\": [");
    for (i, (n, n_chunks, serial, by_threads)) in size_reports.iter().enumerate() {
        println!("    {{");
        println!("      \"n_rows\": {n},");
        println!("      \"n_chunks\": {n_chunks},");
        println!("      \"serial_secs\": {serial:.4},");
        for (threads, secs) in by_threads {
            println!("      \"chunked_secs_threads_{threads}\": {secs:.4},");
        }
        let (_, chunked_1) = by_threads[0];
        let best_parallel = by_threads
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        println!(
            "      \"rows_per_sec_best\": {:.0},",
            *n as f64 / best_parallel
        );
        println!(
            "      \"chunked_speedup_best_vs_1\": {:.2}",
            chunked_1 / best_parallel
        );
        print!("    }}");
        println!("{}", if i + 1 < size_reports.len() { "," } else { "" });
    }
    println!("  ],");
    println!("  \"single_thread_overhead_pct\": {overhead_pct:.2},");
    println!("  \"host_parallelism\": {host_parallelism}");
    println!("}}");
}
