//! Records the chunked group-by scaling curve on the scale workload
//! (Adult-shaped, no identifier column, bounded dictionaries): serial
//! `GroupBy::compute` versus the morsel-driven hash-partitioned
//! `GroupBy::compute_chunked` at 100k/1M/10M rows and 1/2/4/8 threads,
//! with the executor's per-phase breakdown (partition / build / reorder).
//!
//! Run with:
//! `cargo run --release -p psens-bench --bin chunked_scaling > BENCH_6.json`
//!
//! Or as the CI thread-scaling gate:
//! `cargo run --release -p psens-bench --bin chunked_scaling -- --gate`
//! which checks that threads=8 beats threads=1 wall-clock at 10M rows on
//! hosts with at least [`GATE_MIN_CORES`] cores (exit 1 on regression) and
//! SKIPs loudly on smaller hosts (exit 0 — a 1-core box cannot demonstrate
//! scaling, and silently "passing" there would hide real regressions).
//!
//! Honesty rules learned from BENCH_5, whose `chunked_speedup_best_vs_1`
//! could only ever print ≥ 1.00 (the "best" included threads=1 itself, so a
//! 0.86x regression rounded to a reassuring 1.00):
//!
//! - per-thread-count speedups `speedup_T_vs_1 = t1_secs / tT_secs` to two
//!   decimals, so a slowdown prints as e.g. 0.86, never 1.00;
//! - `host_parallelism` recorded per entry, so scaling figures from 1-core
//!   CI boxes are not mistaken for (or used to excuse) regressions.
//!
//! `single_thread_overhead_pct` (largest size) still tracks the streaming
//! one-thread path against the serial kernel in alternating best-of rounds:
//! the threads=1 specialization must stay within a few percent of
//! `GroupBy::compute` — it is the price of admission for bounded-memory
//! ingest.
//!
//! Unlike the Criterion benches this needs no dev-dependencies, so it runs
//! in the hermetic (offline) build too.

use psens_bench::workloads;
use psens_microdata::GroupBy;
use std::hint::black_box;
use std::time::Instant;

const CHUNK_ROWS: usize = 65_536;
const SIZES: [usize; 3] = [100_000, 1_000_000, 10_000_000];
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Minimum host cores for the `--gate` check to be meaningful.
const GATE_MIN_CORES: usize = 4;
/// Row count the gate measures at (the largest benched size).
const GATE_ROWS: usize = 10_000_000;

/// Best wall-clock of `rounds` timed repetitions (after one warm-up call).
fn best_secs(rounds: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// One benched size: timings per thread count plus the 8-thread phase
/// breakdown.
struct SizeReport {
    n_rows: usize,
    n_chunks: usize,
    serial_secs: f64,
    by_threads: Vec<(usize, f64)>,
    /// (partition, build, reorder) seconds of one profiled multi-thread run
    /// at the highest thread count (zeros when that run streamed serially).
    phases_threads_max: (f64, f64, f64),
}

fn bench_size(n: usize, host_parallelism: usize) -> (SizeReport, f64) {
    let rounds = if n >= 10_000_000 { 3 } else { 5 };
    let chunked = workloads::scale_chunked(n, CHUNK_ROWS);
    let table = chunked.to_table();
    let keys = table.schema().key_indices();

    // Sanity: the executor must reproduce the serial group ids exactly
    // before its timings mean anything.
    let serial_gb = GroupBy::compute(&table, &keys);
    let chunked_gb = GroupBy::compute_chunked(&chunked, &keys, host_parallelism.max(2));
    assert_eq!(serial_gb.n_groups(), chunked_gb.n_groups());
    assert_eq!(serial_gb.assignments(), chunked_gb.assignments());

    // Alternating best-of rounds for the serial/one-thread pair, so clock
    // drift on shared machines does not bias either side.
    let mut serial = f64::INFINITY;
    let mut chunked_1 = f64::INFINITY;
    for _ in 0..rounds {
        serial = serial.min(best_secs(1, || {
            black_box(GroupBy::compute(black_box(&table), &keys));
        }));
        chunked_1 = chunked_1.min(best_secs(1, || {
            black_box(GroupBy::compute_chunked(black_box(&chunked), &keys, 1));
        }));
    }
    let mut by_threads = vec![(1usize, chunked_1)];
    for &threads in &THREADS[1..] {
        by_threads.push((
            threads,
            best_secs(rounds, || {
                black_box(GroupBy::compute_chunked(
                    black_box(&chunked),
                    &keys,
                    threads,
                ));
            }),
        ));
    }
    let max_threads = *THREADS.last().expect("non-empty thread list");
    let (_, timings) = GroupBy::compute_chunked_profiled(&chunked, &keys, max_threads, 0);
    let overhead_pct = (chunked_1 / serial - 1.0) * 100.0;
    (
        SizeReport {
            n_rows: n,
            n_chunks: chunked.n_chunks(),
            serial_secs: serial,
            by_threads,
            phases_threads_max: (
                timings.partition.as_secs_f64(),
                timings.build.as_secs_f64(),
                timings.reorder.as_secs_f64(),
            ),
        },
        overhead_pct,
    )
}

fn render_json(reports: &[SizeReport], overhead_pct: f64, host_parallelism: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    // Infallible writes into a String; the fallible part — getting the text
    // onto disk intact — is `emit`'s job.
    let w = &mut out;
    let _ = writeln!(w, "{{");
    let _ = writeln!(w, "  \"workload\": {{");
    let _ = writeln!(
        w,
        "    \"dataset\": \"scale (Adult-shaped, no identifier)\","
    );
    let _ = writeln!(w, "    \"generator\": \"psens_datasets::ScaleGenerator\",");
    let _ = writeln!(
        w,
        "    \"group_by\": \"key attributes (Age, MaritalStatus, Race, Sex)\","
    );
    let _ = writeln!(
        w,
        "    \"executor\": \"morsel-driven hash-partitioned (PR 6)\","
    );
    let _ = writeln!(w, "    \"chunk_rows\": {CHUNK_ROWS}");
    let _ = writeln!(w, "  }},");
    let _ = writeln!(w, "  \"groupby_scaling\": [");
    for (i, report) in reports.iter().enumerate() {
        let _ = writeln!(w, "    {{");
        let _ = writeln!(w, "      \"n_rows\": {},", report.n_rows);
        let _ = writeln!(w, "      \"n_chunks\": {},", report.n_chunks);
        let _ = writeln!(w, "      \"host_parallelism\": {host_parallelism},");
        let _ = writeln!(w, "      \"serial_secs\": {:.4},", report.serial_secs);
        for (threads, secs) in &report.by_threads {
            let _ = writeln!(w, "      \"chunked_secs_threads_{threads}\": {secs:.4},");
        }
        let (_, chunked_1) = report.by_threads[0];
        // Per-thread-count speedup vs one thread; values below 1.00 are
        // regressions and must print as such.
        for (threads, secs) in &report.by_threads[1..] {
            let _ = writeln!(
                w,
                "      \"speedup_{threads}_vs_1\": {:.2},",
                chunked_1 / secs
            );
        }
        let best = report
            .by_threads
            .iter()
            .map(|&(_, s)| s)
            .fold(f64::INFINITY, f64::min);
        let (partition, build, reorder) = report.phases_threads_max;
        let max_threads = THREADS.last().expect("non-empty thread list");
        let _ = writeln!(w, "      \"phases_threads_{max_threads}\": {{");
        let _ = writeln!(w, "        \"partition_secs\": {partition:.4},");
        let _ = writeln!(w, "        \"build_secs\": {build:.4},");
        let _ = writeln!(w, "        \"reorder_secs\": {reorder:.4}");
        let _ = writeln!(w, "      }},");
        let _ = writeln!(
            w,
            "      \"rows_per_sec_best\": {:.0}",
            report.n_rows as f64 / best
        );
        let _ = write!(w, "    }}");
        let _ = writeln!(w, "{}", if i + 1 < reports.len() { "," } else { "" });
    }
    let _ = writeln!(w, "  ],");
    let _ = writeln!(w, "  \"single_thread_overhead_pct\": {overhead_pct:.2},");
    let _ = writeln!(w, "  \"host_parallelism\": {host_parallelism}");
    let _ = writeln!(w, "}}");
    out
}

/// Gets BENCH JSON onto disk (or stdout) *verifiably*. With `--out FILE`,
/// the text is written, re-read, byte-compared, and re-parsed; any mismatch
/// or I/O error is reported and turns the whole run red. A `> BENCH.json`
/// shell redirect can silently truncate on a full disk and still exit 0 —
/// that failure mode produced a half-written BENCH file that read as a
/// green run, which is exactly what this path exists to prevent.
fn emit(text: &str, out_path: Option<&str>) -> Result<(), String> {
    match out_path {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
            let back =
                std::fs::read_to_string(path).map_err(|e| format!("re-reading {path}: {e}"))?;
            if back != text {
                return Err(format!(
                    "{path}: content mismatch after write ({} bytes on disk, {} rendered)",
                    back.len(),
                    text.len()
                ));
            }
            psens_microdata::JsonValue::parse(&back)
                .map_err(|e| format!("{path}: emitted JSON does not parse: {e}"))?;
            eprintln!("wrote {path} ({} bytes, validated)", back.len());
            Ok(())
        }
        None => {
            use std::io::Write;
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(text.as_bytes())
                .and_then(|()| stdout.flush())
                .map_err(|e| format!("writing BENCH JSON to stdout: {e}"))
        }
    }
}

/// The CI thread-scaling gate (see module docs). Returns the process exit
/// code. With `out_path`, the measurements are emitted as validated JSON and
/// an emission failure turns the gate red even when the perf check passed —
/// a truncated BENCH file must never ride out on a green exit code.
fn gate(host_parallelism: usize, out_path: Option<&str>) -> i32 {
    eprintln!("thread-scaling gate: chunked group-by at {GATE_ROWS} rows, threads=8 vs threads=1");
    let (perf_code, record) = if host_parallelism < GATE_MIN_CORES {
        eprintln!("!!------------------------------------------------------------------!!");
        eprintln!(
            "!! SKIPPED: host has {host_parallelism} core(s), gate needs >= {GATE_MIN_CORES}."
        );
        eprintln!("!! Thread scaling was NOT verified on this machine — run the gate on");
        eprintln!("!! a multi-core host before trusting parallel group-by performance.");
        eprintln!("!!------------------------------------------------------------------!!");
        let record = format!(
            "{{\n  \"gate\": \"chunked_scaling\",\n  \"skipped\": true,\n  \
             \"host_parallelism\": {host_parallelism},\n  \
             \"gate_min_cores\": {GATE_MIN_CORES}\n}}\n"
        );
        (0, record)
    } else {
        let chunked = workloads::scale_chunked(GATE_ROWS, CHUNK_ROWS);
        let keys = chunked.schema().key_indices();
        let rounds = 3;
        let t1 = best_secs(rounds, || {
            black_box(GroupBy::compute_chunked(black_box(&chunked), &keys, 1));
        });
        let t8 = best_secs(rounds, || {
            black_box(GroupBy::compute_chunked(black_box(&chunked), &keys, 8));
        });
        let speedup = t1 / t8;
        eprintln!(
            "threads=1: {t1:.4}s  threads=8: {t8:.4}s  speedup: {speedup:.2}x  \
             (host_parallelism: {host_parallelism})"
        );
        let passed = t8 < t1;
        if passed {
            eprintln!("gate PASSED: threads=8 beats threads=1");
        } else {
            eprintln!("gate FAILED: threads=8 did not beat threads=1 wall-clock");
        }
        let record = format!(
            "{{\n  \"gate\": \"chunked_scaling\",\n  \"skipped\": false,\n  \
             \"passed\": {passed},\n  \"n_rows\": {GATE_ROWS},\n  \
             \"threads_1_secs\": {t1:.4},\n  \"threads_8_secs\": {t8:.4},\n  \
             \"speedup_8_vs_1\": {speedup:.2},\n  \
             \"host_parallelism\": {host_parallelism}\n}}\n"
        );
        (i32::from(!passed), record)
    };
    if out_path.is_some() {
        if let Err(e) = emit(&record, out_path) {
            eprintln!("gate FAILED: BENCH JSON emission error: {e}");
            return 1;
        }
    }
    perf_code
}

/// Value of `--out FILE` if present (either `--out FILE` or `--out=FILE`).
fn out_arg(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            return Some(
                it.next()
                    .unwrap_or_else(|| {
                        eprintln!("error: --out requires a file path");
                        std::process::exit(1);
                    })
                    .clone(),
            );
        }
        if let Some(path) = a.strip_prefix("--out=") {
            return Some(path.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = out_arg(&args);
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);
    if args.iter().any(|a| a == "--gate") {
        std::process::exit(gate(host_parallelism, out_path.as_deref()));
    }
    let mut reports = Vec::new();
    let mut overhead_pct = 0.0f64;
    for &n in &SIZES {
        let (report, overhead) = bench_size(n, host_parallelism);
        overhead_pct = overhead; // keep the largest size's figure
        reports.push(report);
    }
    let text = render_json(&reports, overhead_pct, host_parallelism);
    if let Err(e) = emit(&text, out_path.as_deref()) {
        eprintln!("error: BENCH JSON emission failed: {e}");
        std::process::exit(1);
    }
}
