//! One function per table/figure of the paper. Each regenerates its
//! artifact from our implementation and renders it as text.

use psens_algorithms::exhaustive::exhaustive_scan;
use psens_algorithms::samarati::{k_minimal_generalization, pk_minimal_generalization, Pruning};
use psens_core::attack::linkage_attack;
use psens_core::conditions::{ConfidentialStats, MaxGroups};
use psens_core::{attribute_disclosure_count, max_p_of_masked};
use psens_datasets::hierarchies::{adult_qi_space, figure1_zipcode, figure2_qi_space};
use psens_datasets::paper::{
    figure3_microdata, table1_patients, table2_external, table3_fixed, table3_psensitive_example,
};
use psens_datasets::paper_samples;
use psens_hierarchy::{Hierarchy, IntHierarchy, IntLevel, Node, QiSpace};
use psens_microdata::render;
use std::fmt::Write as _;
use std::time::Instant;

/// §Tables 1–2: the homogeneity attack on a 2-anonymous release.
pub fn table1_and_2_attack() -> String {
    let mut out = String::new();
    let masked = table1_patients();
    let external = table2_external();
    let _ = writeln!(out, "Table 1 — masked microdata satisfying 2-anonymity:\n");
    out.push_str(&render(&masked, 10));
    let _ = writeln!(out, "\nTable 2 — external information:\n");
    out.push_str(&render(&external, 10));

    let keys = masked.schema().key_indices();
    let conf = masked.schema().confidential_indices();
    let _ = writeln!(
        out,
        "\nk-anonymity: k = {} | attribute disclosures: {}",
        psens_core::max_k(&masked, &keys),
        attribute_disclosure_count(&masked, &keys, &conf)
    );

    // Linkage with the public "multiples of 10" age recoding.
    let cuts: Vec<i64> = (1..=9).map(|d| d * 10).collect();
    let mut labels: Vec<String> = vec!["0".into()];
    labels.extend(cuts.iter().map(|c| c.to_string()));
    let qi = QiSpace::new(vec![
        (
            "Age".into(),
            Hierarchy::Int(
                IntHierarchy::new(vec![IntLevel::Ranges { cuts, labels }])
                    .expect("valid hierarchy"),
            ),
        ),
        (
            "ZipCode".into(),
            psens_hierarchy::builders::flat_hierarchy(vec!["43102"]).expect("valid"),
        ),
        (
            "Sex".into(),
            psens_hierarchy::builders::flat_hierarchy(vec!["M", "F"]).expect("valid"),
        ),
    ])
    .expect("valid QI space");
    let findings = linkage_attack(&masked, &qi, &Node(vec![1, 0, 0]), &external, "Name")
        .expect("compatible inputs");
    for f in &findings {
        if f.learned.is_empty() {
            let _ = writeln!(
                out,
                "  {:8} -> {} candidates, learns nothing",
                f.individual.to_string(),
                f.candidate_rows.len()
            );
        } else {
            let learned: Vec<String> = f
                .learned
                .iter()
                .map(|(a, v)| format!("{a} = {v}"))
                .collect();
            let _ = writeln!(
                out,
                "  {:8} -> {} candidates, LEARNS {}",
                f.individual.to_string(),
                f.candidate_rows.len(),
                learned.join(", ")
            );
        }
    }
    out
}

/// §Table 3: the p-sensitivity walkthrough (1-sensitive vs 2-sensitive).
pub fn table3_walkthrough() -> String {
    let mut out = String::new();
    let mm = table3_psensitive_example();
    let keys = mm.schema().key_indices();
    let conf = mm.schema().confidential_indices();
    let _ = writeln!(out, "Table 3 — masked microdata:\n");
    out.push_str(&render(&mm, 10));
    for profile in psens_core::group_profiles(&mm, &keys, &conf) {
        let key: Vec<String> = profile.key.iter().map(ToString::to_string).collect();
        let _ = writeln!(
            out,
            "  group ({}) size {}: distinct Illness = {}, distinct Income = {}",
            key.join(", "),
            profile.size,
            profile.distinct[0],
            profile.distinct[1]
        );
    }
    let _ = writeln!(
        out,
        "=> satisfies {}-sensitive 3-anonymity",
        max_p_of_masked(&mm, &keys, &conf)
    );
    let fixed = table3_fixed();
    let _ = writeln!(
        out,
        "with the first income changed to 40,000 => p = {}",
        max_p_of_masked(&fixed, &keys, &conf)
    );
    out
}

/// §Figure 1: domain/value generalization hierarchies for ZipCode and Sex.
pub fn figure1_hierarchies() -> String {
    let mut out = String::new();
    let zip = figure1_zipcode();
    let _ = writeln!(out, "ZipCode DGH (Z0 -> Z1 -> Z2):");
    for level in 0..zip.n_levels() {
        let labels = zip.labels_at(level).expect("level in range");
        let _ = writeln!(out, "  Z{level} = {{{}}}", labels.join(", "));
    }
    let _ = writeln!(out, "Sex DGH (S0 -> S1):");
    let _ = writeln!(out, "  S0 = {{M, F}}");
    let _ = writeln!(out, "  S1 = {{*}}");
    let _ = writeln!(out, "Value generalization (VGH) edges for ZipCode:");
    for ground in zip.ground() {
        let l1 = zip.generalize(ground, 1).expect("in domain");
        let _ = writeln!(out, "  {ground} -> {l1} -> *****");
    }
    out
}

/// §Figure 2: the Sex × ZipCode generalization lattice with heights.
pub fn figure2_lattice() -> String {
    let mut out = String::new();
    let qi = figure2_qi_space();
    let gl = qi.lattice();
    let _ = writeln!(
        out,
        "lattice: {} nodes, height(GL) = {}",
        gl.node_count(),
        gl.height()
    );
    for h in (0..=gl.height()).rev() {
        let nodes: Vec<String> = gl
            .nodes_at_height(h)
            .iter()
            .map(|n| qi.describe_node(n))
            .collect();
        let _ = writeln!(out, "  height {h}: {}", nodes.join("  "));
    }
    out
}

/// §Figure 3 + Table 4: per-node 3-anonymity violations and the 3-minimal
/// generalizations for every suppression threshold.
pub fn figure3_and_table4() -> String {
    let mut out = String::new();
    let im = figure3_microdata();
    let qi = figure2_qi_space();
    let _ = writeln!(out, "Figure 3 — tuples violating 3-anonymity per node:");
    let scan = exhaustive_scan(&im, &qi, 1, 3, 0).expect("hierarchies cover data");
    let mut annotations = scan.annotations.clone();
    annotations.sort_by_key(|(n, _)| std::cmp::Reverse(n.height()));
    for (node, violating) in &annotations {
        let _ = writeln!(out, "  {} ({violating})", qi.describe_node(node));
    }
    let _ = writeln!(out, "\nTable 4 — 3-minimal generalizations by TS:");
    for ts in 0..=10usize {
        let scan = exhaustive_scan(&im, &qi, 1, 3, ts).expect("hierarchies cover data");
        let nodes: Vec<String> = scan.minimal.iter().map(|n| qi.describe_node(n)).collect();
        let _ = writeln!(out, "  TS = {ts:2}: {}", nodes.join(" and "));
    }
    out
}

/// §Tables 5–6: frequency sets, cumulative frequency sets, `cf_i`, and the
/// implied `maxP` / `maxGroups` bounds of Example 1.
pub fn tables5_and_6() -> String {
    let mut out = String::new();
    let im = psens_datasets::paper::example1_microdata();
    let conf = im.schema().confidential_indices();
    let stats = ConfidentialStats::compute(&im, &conf);
    let _ = writeln!(out, "Table 5 — descending frequency sets f_i^j:");
    for attr in &stats.per_attribute {
        let _ = writeln!(
            out,
            "  {} (s_j = {}): {:?}",
            attr.name, attr.s, attr.descending
        );
    }
    let _ = writeln!(out, "\nTable 6 — cumulative frequency sets cf_i^j:");
    for attr in &stats.per_attribute {
        let _ = writeln!(out, "  {}: {:?}", attr.name, attr.cumulative);
    }
    let _ = writeln!(out, "  cf_i = max_j cf_i^j: {:?}", stats.cf);
    let _ = writeln!(out, "\nCondition 1: maxP = {}", stats.max_p());
    let _ = writeln!(out, "Condition 2: maxGroups by p:");
    for p in 2..=6u32 {
        let bound = match stats.max_groups(p) {
            MaxGroups::Bounded(b) => b.to_string(),
            MaxGroups::Unbounded => "unbounded".into(),
            MaxGroups::Unsatisfiable => "unsatisfiable".into(),
        };
        let _ = writeln!(out, "  p = {p}: {bound}");
    }
    out
}

/// §Table 7: the Adult key-attribute generalizations and the lattice they
/// span.
pub fn table7_adult_hierarchies() -> String {
    let mut out = String::new();
    let qi = adult_qi_space();
    let gl = qi.lattice();
    for (i, name) in qi.names().iter().enumerate() {
        let h = qi.hierarchy(i);
        let _ = writeln!(
            out,
            "  {name}: {} domains (levels 0..={})",
            h.n_levels(),
            h.max_level()
        );
    }
    let _ = writeln!(
        out,
        "lattice GL_A: {} nodes (= 4 x 3 x 4 x 2), height(GL_A) = {}",
        gl.node_count(),
        gl.height()
    );
    out
}

/// One row of the Table 8 reproduction.
#[derive(Debug, Clone)]
pub struct Table8Row {
    /// Sample label ("400" / "4000").
    pub size: &'static str,
    /// Anonymity level checked.
    pub k: u32,
    /// Lattice node found by Samarati's binary search (paper style).
    pub node: String,
    /// Attribute disclosures left in the k-anonymous masking.
    pub disclosures: usize,
    /// Tuples suppressed at that node.
    pub suppressed: usize,
}

/// §Table 8 (data): runs the Section 4 experiment on the synthetic Adult
/// samples with suppression threshold `ts` (the paper's nodes match TS = 0
/// best; see EXPERIMENTS.md).
pub fn table8_rows(ts: usize) -> Vec<Table8Row> {
    let qi = adult_qi_space();
    let (s400, s4000) = paper_samples();
    let mut rows = Vec::new();
    for (size, table) in [("400", &s400), ("4000", &s4000)] {
        for k in [2u32, 3] {
            let outcome =
                k_minimal_generalization(table, &qi, k, ts).expect("hierarchies cover data");
            let (node, masked) = match (&outcome.node, &outcome.masked) {
                (Some(n), Some(m)) => (n, m),
                _ => continue,
            };
            let keys = masked.schema().key_indices();
            let conf = masked.schema().confidential_indices();
            rows.push(Table8Row {
                size,
                k,
                node: qi.describe_node(node),
                disclosures: attribute_disclosure_count(masked, &keys, &conf),
                suppressed: outcome.suppressed,
            });
        }
    }
    rows
}

/// §Table 8 (text): the rendered reproduction next to the paper's values.
pub fn table8_adult() -> String {
    let mut out = String::new();
    let paper: [(&str, u32, &str, usize); 4] = [
        ("400", 2, "<A1, M1, R1, S1>", 6),
        ("400", 3, "<A1, M1, R2, S1>", 2),
        ("4000", 2, "<A2, M1, R1, S1>", 4),
        ("4000", 3, "<A2, M1, R2, S1>", 0),
    ];
    let _ = writeln!(
        out,
        "{:<24}{:<20}{:>12}   {:<20}{:>12}",
        "Size and k-anonymity", "node (ours)", "disclosures", "node (paper)", "paper"
    );
    for (row, (psize, pk, pnode, pdisc)) in table8_rows(0).iter().zip(paper) {
        debug_assert_eq!(row.size, psize);
        debug_assert_eq!(row.k, pk);
        let _ = writeln!(
            out,
            "{:<24}{:<20}{:>12}   {:<20}{:>12}",
            format!("{} and {}-anonymity", row.size, row.k),
            row.node,
            row.disclosures,
            pnode,
            pdisc
        );
    }
    out
}

/// §Future work: Algorithm 3 with vs without the necessary conditions.
pub fn algorithm3_ablation() -> String {
    let mut out = String::new();
    let qi = adult_qi_space();
    let (s400, s4000) = paper_samples();
    let _ = writeln!(
        out,
        "{:<28}{:>10}{:>12}{:>12}{:>12}",
        "workload", "nodes", "cond2 rej", "time (ms)", "node"
    );
    for (label, table, p, k, ts) in [
        ("400, p=2, k=2", &s400, 2u32, 2u32, 0usize),
        ("4000, p=2, k=3", &s4000, 2, 3, 0),
        ("4000, p=3 (impossible)", &s4000, 3, 3, 0),
    ] {
        for (mode, pruning) in [
            ("unpruned", Pruning::None),
            ("pruned", Pruning::NecessaryConditions),
        ] {
            let start = Instant::now();
            let outcome = pk_minimal_generalization(table, &qi, p, k, ts, pruning)
                .expect("hierarchies cover data");
            let elapsed = start.elapsed().as_secs_f64() * 1000.0;
            let node = outcome
                .node
                .map(|n| qi.describe_node(&n))
                .unwrap_or_else(|| "none".into());
            let _ = writeln!(
                out,
                "{:<28}{:>10}{:>12}{:>12.2}{:>14}",
                format!("{label} [{mode}]"),
                outcome.stats.nodes_evaluated,
                outcome.stats.rejected_condition2,
                elapsed,
                node
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sections_render() {
        for (name, text) in [
            ("t12", table1_and_2_attack()),
            ("t3", table3_walkthrough()),
            ("f1", figure1_hierarchies()),
            ("f2", figure2_lattice()),
            ("f3t4", figure3_and_table4()),
            ("t56", tables5_and_6()),
            ("t7", table7_adult_hierarchies()),
        ] {
            assert!(!text.is_empty(), "{name} must render");
        }
    }

    #[test]
    fn attack_section_finds_the_diabetes_leak() {
        let text = table1_and_2_attack();
        assert!(text.contains("LEARNS Illness = Diabetes"));
        assert!(text.contains("attribute disclosures: 1"));
    }

    #[test]
    fn table4_section_matches_paper_cells() {
        let text = figure3_and_table4();
        assert!(text.contains("TS =  0: <S0, Z2>"));
        assert!(text.contains("TS =  2: <S0, Z2> and <S1, Z1>"));
        assert!(text.contains("TS =  7: <S0, Z1> and <S1, Z0>"));
        assert!(text.contains("TS = 10: <S0, Z0>"));
    }

    #[test]
    fn tables5_6_section_matches_walkthrough() {
        let text = tables5_and_6();
        assert!(text.contains("maxP = 5"));
        assert!(text.contains("p = 2: 300"));
        assert!(text.contains("p = 3: 100"));
        assert!(text.contains("p = 4: 50"));
        assert!(text.contains("p = 5: 25"));
        assert!(text.contains("p = 6: unsatisfiable"));
    }

    #[test]
    fn table8_has_four_rows_and_k_shape() {
        let rows = table8_rows(0);
        assert_eq!(rows.len(), 4);
        // Shape: disclosures decrease as k grows, at both sizes.
        assert!(
            rows[0].disclosures >= rows[1].disclosures,
            "400: k=2 >= k=3"
        );
        assert!(
            rows[2].disclosures >= rows[3].disclosures,
            "4000: k=2 >= k=3"
        );
        // k-anonymity alone leaves disclosures somewhere (the paper's point).
        assert!(rows.iter().any(|r| r.disclosures > 0));
    }
}
