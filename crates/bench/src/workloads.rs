//! Shared workload builders used by both the experiment runner and the
//! Criterion benches.

use psens_datasets::{AdultGenerator, ScaleGenerator};
use psens_microdata::{Attribute, ChunkedTable, Schema, Table, TableBuilder, Value};

/// A synthetic Adult table of `n` rows with a seed derived from `n` (so
/// benches at different scales are independent but reproducible).
pub fn adult(n: usize) -> Table {
    AdultGenerator::new(0xBE7C_0000 ^ n as u64).generate(n)
}

/// An Adult-shaped scale table of `n` rows (no identifier/weight columns)
/// streamed straight into `chunk_rows`-row column chunks, seed derived from
/// `n` like [`adult`]. The scale workload for the chunked group-by benches.
pub fn scale_chunked(n: usize, chunk_rows: usize) -> ChunkedTable {
    let generator = ScaleGenerator::new(0x5CA1_E000 ^ n as u64);
    let mut out = ChunkedTable::new(ScaleGenerator::schema(), chunk_rows);
    for chunk in generator.chunks(n, chunk_rows) {
        out.push_chunk(chunk);
    }
    out
}

/// The wide 8-QI synthetic Adult table (pairs with
/// `psens_datasets::hierarchies::adult_wide_qi_space`), seed derived from
/// `n` like [`adult`].
pub fn adult_wide(n: usize) -> Table {
    AdultGenerator::new(0xBE7C_0000 ^ n as u64).generate_wide(n)
}

/// A skewed single-confidential-attribute table: value `v0` occurs with the
/// given per-mille share, the rest spread uniformly over `n_values - 1`
/// other values. Used to stress Condition 2.
pub fn skewed_confidential(n: usize, dominant_permille: u32, n_values: usize) -> Table {
    let schema = Schema::new(vec![
        Attribute::cat_key("K"),
        Attribute::cat_confidential("S"),
    ])
    .expect("valid schema");
    let mut builder = TableBuilder::new(schema);
    let dominant = (n as u64 * u64::from(dominant_permille) / 1000) as usize;
    for i in 0..n {
        let s = if i < dominant {
            "v0".to_owned()
        } else {
            format!("v{}", 1 + (i - dominant) % (n_values - 1))
        };
        builder
            .push_row(vec![Value::Text(format!("k{}", i % 97)), Value::Text(s)])
            .expect("row matches schema");
    }
    builder.finish()
}

/// The Figure 3 microdata scaled by `factor`: each tuple repeated with
/// distinct zip suffix groups preserved (tile the 10-tuple pattern).
pub fn figure3_scaled(factor: usize) -> Table {
    let base = psens_datasets::paper::figure3_microdata();
    let mut builder = TableBuilder::new(base.schema().clone());
    for _ in 0..factor {
        for row in 0..base.n_rows() {
            builder
                .push_row(base.row(row).expect("row in range"))
                .expect("row matches schema");
        }
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::FrequencySet;

    #[test]
    fn adult_workload_sizes() {
        assert_eq!(adult(123).n_rows(), 123);
        assert_eq!(adult_wide(45).n_rows(), 45);
    }

    #[test]
    fn scale_workload_chunks() {
        let chunked = scale_chunked(1000, 256);
        assert_eq!(chunked.n_rows(), 1000);
        assert_eq!(chunked.n_chunks(), 4);
    }

    #[test]
    fn skew_is_exact() {
        let t = skewed_confidential(1000, 900, 5);
        let fs = FrequencySet::of_attribute(&t, "S").unwrap();
        assert_eq!(fs.descending_counts()[0], 900);
        assert_eq!(fs.n_combinations(), 5);
    }

    #[test]
    fn figure3_tiles() {
        let t = figure3_scaled(3);
        assert_eq!(t.n_rows(), 30);
    }
}
