//! # psens-bench
//!
//! Experiment harness: one function per table/figure of the paper, each
//! returning the regenerated artifact as text. The `experiments` binary
//! prints them all; the Criterion benches (in `benches/`) measure the same
//! workloads. EXPERIMENTS.md records paper-vs-measured for every section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod workloads;

pub use experiments::*;
