//! Differential oracle for the anonymization server: verdicts must be a
//! pure function of (dataset, parameters), byte-for-byte, no matter how the
//! search is driven.
//!
//! Three independent executions of each parameter set are compared:
//!
//! 1. a **serial** client, one request at a time (the reference);
//! 2. **N concurrent** clients issuing a mixed op stream (anonymize with and
//!    without the warm verdict store, plus interleaved `check`s), squeezed
//!    through a `max_concurrent = 2` admission gate so requests genuinely
//!    queue and overlap;
//! 3. the **CLI** `anonymize` command run in-process against the same CSV,
//!    compared through its `--report` JSON (`satisfied` / `node` /
//!    `termination.reason`).
//!
//! A fourth dimension injects *deterministic* interruption (`max_nodes: 0`,
//! `timeout_ms: 0`): interrupted verdicts must also agree across serial,
//! concurrent, and CLI executions. True mid-flight cancellation is raced by
//! nature and is covered by the server's own e2e tests; the oracle only
//! compares runs whose outcome is a deterministic function of the inputs.

use psens_cli::args::Args;
use psens_cli::commands;
use psens_datasets::fixtures::{adult_fixture, DatasetFixture};
use psens_microdata::JsonValue;
use psens_server::{start, Client, ServerConfig};
use std::net::SocketAddr;
use std::sync::Mutex;

const SEED: u64 = 11;
const ROWS: usize = 140;
const DATASET: &str = "oracle-adult";
const CLIENTS: usize = 4;

/// (p, k, ts) parameter sets covering satisfiable and unsatisfiable runs.
const PARAMS: [(u32, u32, usize); 3] = [(1, 2, 0), (2, 3, 10), (4, 6, 4)];

fn boot(fixture: &DatasetFixture) -> (psens_server::ServerHandle, SocketAddr) {
    let handle = start(ServerConfig::default()).expect("server boots");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .call_ok(
            "register",
            psens_server::client::register_params(DATASET, &fixture.csv, &fixture.spec),
        )
        .expect("register");
    (handle, addr)
}

fn anon_params(p: u32, k: u32, ts: usize) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str(DATASET.into()));
    params.set("p", JsonValue::Int(i64::from(p)));
    params.set("k", JsonValue::Int(i64::from(k)));
    params.set("ts", JsonValue::Int(ts as i64));
    params
}

/// The deterministic verdict sub-object as a canonical JSON string
/// (`JsonValue` objects keep insertion order, so equal verdicts render to
/// equal bytes).
fn verdict_string(result: &JsonValue) -> String {
    result
        .get("verdict")
        .expect("anonymize result carries a verdict")
        .to_json()
}

fn anonymize_verdict(client: &mut Client, params: JsonValue) -> String {
    let result = client.call_ok("anonymize", params).expect("anonymize");
    verdict_string(&result)
}

fn check_string(client: &mut Client, p: u32, k: u32) -> String {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str(DATASET.into()));
    params.set("p", JsonValue::Int(i64::from(p)));
    params.set("k", JsonValue::Int(i64::from(k)));
    client.call_ok("check", params).expect("check").to_json()
}

#[test]
fn concurrent_mixed_traffic_matches_serial_and_cli_verdicts() {
    let fixture = adult_fixture(SEED, ROWS);
    let (_handle, addr) = boot(&fixture);

    // Reference pass: one client, strictly serial, cold stores.
    let mut serial = Client::connect(addr).expect("connect");
    let reference: Vec<String> = PARAMS
        .iter()
        .map(|&(p, k, ts)| anonymize_verdict(&mut serial, anon_params(p, k, ts)))
        .collect();
    let check_reference: Vec<String> = PARAMS
        .iter()
        .map(|&(p, k, _)| check_string(&mut serial, p, k))
        .collect();

    // Concurrent pass: every client runs every parameter set (rotated so the
    // interleaving differs per client), alternating warm-store and no-cache
    // runs, with `check`s mixed in. All through a max_concurrent=2 gate.
    let divergences: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let divergences = &divergences;
            let reference = &reference;
            let check_reference = &check_reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..PARAMS.len() {
                    let slot = (i + c) % PARAMS.len();
                    let (p, k, ts) = PARAMS[slot];
                    let mut params = anon_params(p, k, ts);
                    if c % 2 == 1 {
                        params.set("no_cache", JsonValue::Bool(true));
                    }
                    let got = anonymize_verdict(&mut client, params);
                    if got != reference[slot] {
                        divergences.lock().unwrap().push(format!(
                            "client {c} anonymize p={p} k={k} ts={ts}:\n  got {got}\n  want {}",
                            reference[slot]
                        ));
                    }
                    let got = check_string(&mut client, p, k);
                    if got != check_reference[slot] {
                        divergences
                            .lock()
                            .unwrap()
                            .push(format!("client {c} check p={p} k={k} diverged"));
                    }
                }
            });
        }
    });
    let divergences = divergences.into_inner().unwrap();
    assert!(
        divergences.is_empty(),
        "concurrent verdicts diverged from serial:\n{}",
        divergences.join("\n")
    );

    // CLI pass: the same dataset through `psens anonymize --report`, compared
    // on the fields both sides define (winning node, satisfied, termination).
    let dir = std::env::temp_dir().join("psens_server_oracle");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("oracle.csv");
    let spec_path = dir.join("oracle_spec.json");
    std::fs::write(&csv_path, &fixture.csv).unwrap();
    std::fs::write(&spec_path, fixture.spec.to_json().to_json()).unwrap();
    for (slot, &(p, k, ts)) in PARAMS.iter().enumerate() {
        let report = cli_anonymize_report(&dir, &csv_path, &spec_path, p, k, ts, &[]);
        let server = JsonValue::parse(&reference[slot]).expect("verdict parses");
        assert_eq!(
            report.get("satisfied").unwrap().as_bool().unwrap(),
            server.get("satisfied").unwrap().as_bool().unwrap(),
            "satisfied diverged for p={p} k={k} ts={ts}"
        );
        let cli_node = report.get("node").unwrap().as_str().ok();
        let server_node = server.get("node").unwrap().as_str().ok();
        assert_eq!(
            cli_node, server_node,
            "node diverged for p={p} k={k} ts={ts}"
        );
        assert_eq!(
            report
                .get("termination")
                .unwrap()
                .get("reason")
                .unwrap()
                .as_str()
                .unwrap(),
            server.get("termination").unwrap().as_str().unwrap(),
            "termination diverged for p={p} k={k} ts={ts}"
        );
    }
}

#[test]
fn injected_interruption_verdicts_agree_across_clients_and_cli() {
    let fixture = adult_fixture(SEED, ROWS);
    let (_handle, addr) = boot(&fixture);
    let (p, k, ts) = (2u32, 3u32, 10usize);

    // max_nodes=0 and timeout_ms=0 trip the budget before the first node is
    // evaluated, so even an "interrupted" verdict is deterministic.
    let budgets: [(&str, &str); 2] = [
        ("max_nodes", "node_budget_exhausted"),
        ("timeout_ms", "deadline_exceeded"),
    ];
    for (field, want_termination) in budgets {
        let mut serial = Client::connect(addr).expect("connect");
        let mut params = anon_params(p, k, ts);
        params.set(field, JsonValue::Int(0));
        let reference = anonymize_verdict(&mut serial, params);
        let got_termination = JsonValue::parse(&reference)
            .unwrap()
            .get("termination")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert_eq!(got_termination, want_termination, "budget field {field}");

        let divergences: Mutex<Vec<String>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let divergences = &divergences;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut params = anon_params(p, k, ts);
                    params.set(field, JsonValue::Int(0));
                    if c % 2 == 1 {
                        params.set("no_cache", JsonValue::Bool(true));
                    }
                    let got = anonymize_verdict(&mut client, params);
                    if got != *reference {
                        divergences
                            .lock()
                            .unwrap()
                            .push(format!("client {c} {field}=0 verdict diverged"));
                    }
                });
            }
        });
        let divergences = divergences.into_inner().unwrap();
        assert!(divergences.is_empty(), "{}", divergences.join("\n"));
    }

    // CLI under the same injected budget: interrupted exit code, and the
    // report's termination reason matches the server verdict's.
    let dir = std::env::temp_dir().join("psens_server_oracle_interrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("oracle.csv");
    let spec_path = dir.join("oracle_spec.json");
    std::fs::write(&csv_path, &fixture.csv).unwrap();
    std::fs::write(&spec_path, fixture.spec.to_json().to_json()).unwrap();
    let report = cli_anonymize_report(&dir, &csv_path, &spec_path, p, k, ts, &["--max-nodes", "0"]);
    assert_eq!(
        report
            .get("termination")
            .unwrap()
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap(),
        "node_budget_exhausted"
    );
    assert!(!report.get("satisfied").unwrap().as_bool().unwrap());
}

/// Runs `psens anonymize` in-process and returns the parsed `--report` JSON.
fn cli_anonymize_report(
    dir: &std::path::Path,
    csv_path: &std::path::Path,
    spec_path: &std::path::Path,
    p: u32,
    k: u32,
    ts: usize,
    extra: &[&str],
) -> JsonValue {
    let out_path = dir.join(format!("out_{p}_{k}_{ts}.csv"));
    let report_path = dir.join(format!("report_{p}_{k}_{ts}.json"));
    let mut line: Vec<String> = [
        "anonymize",
        "--input",
        csv_path.to_str().unwrap(),
        "--spec",
        spec_path.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
        "--report",
        report_path.to_str().unwrap(),
        "--threads",
        "1",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    line.push("--p".into());
    line.push(p.to_string());
    line.push("--k".into());
    line.push(k.to_string());
    line.push("--ts".into());
    line.push(ts.to_string());
    line.extend(extra.iter().map(ToString::to_string));
    let args = Args::parse(line).expect("args parse");
    // Interrupted/violation runs return nonzero codes by design; only a
    // hard error is fatal here.
    let _ = commands::run(&args).expect("cli anonymize runs");
    let text = std::fs::read_to_string(&report_path).expect("report written");
    JsonValue::parse(&text).expect("report parses")
}
