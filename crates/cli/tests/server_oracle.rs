//! Differential oracle for the anonymization server: verdicts must be a
//! pure function of (dataset, parameters), byte-for-byte, no matter how the
//! search is driven.
//!
//! Three independent executions of each parameter set are compared:
//!
//! 1. a **serial** client, one request at a time (the reference);
//! 2. **N concurrent** clients issuing a mixed op stream (anonymize with and
//!    without the warm verdict store, plus interleaved `check`s), squeezed
//!    through a `max_concurrent = 2` admission gate so requests genuinely
//!    queue and overlap;
//! 3. the **CLI** `anonymize` command run in-process against the same CSV,
//!    compared through its `--report` JSON (`satisfied` / `node` /
//!    `termination.reason`).
//!
//! A fourth dimension injects *deterministic* interruption (`max_nodes: 0`,
//! `timeout_ms: 0`): interrupted verdicts must also agree across serial,
//! concurrent, and CLI executions. True mid-flight cancellation is raced by
//! nature and is covered by the server's own e2e tests; the oracle only
//! compares runs whose outcome is a deterministic function of the inputs.

use psens_cli::args::Args;
use psens_cli::commands;
use psens_datasets::fixtures::{adult_fixture, DatasetFixture};
use psens_microdata::JsonValue;
use psens_server::{start, Client, ServerConfig};
use std::net::SocketAddr;
use std::sync::Mutex;

const SEED: u64 = 11;
const ROWS: usize = 140;
const DATASET: &str = "oracle-adult";
const CLIENTS: usize = 4;

/// (p, k, ts) parameter sets covering satisfiable and unsatisfiable runs.
const PARAMS: [(u32, u32, usize); 3] = [(1, 2, 0), (2, 3, 10), (4, 6, 4)];

/// Per-model parameter sets: (wire model name, parameter field, value,
/// CLI flag, CLI value). Entropy-l uses l = 1 because the synthetic Adult
/// confidential columns are too skewed for ln 2 at any node — the oracle
/// cares that all executions agree, not that the run succeeds.
const MODELS: [(&str, &str, i64, &str, &str); 3] = [
    ("distinct-l", "l", 2, "--l", "2"),
    ("entropy-l", "l", 1, "--l", "1"),
    ("t-closeness", "t_ppm", 500_000, "--t", "0.5"),
];

fn boot(fixture: &DatasetFixture) -> (psens_server::ServerHandle, SocketAddr) {
    let handle = start(ServerConfig::default()).expect("server boots");
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connect");
    client
        .call_ok(
            "register",
            psens_server::client::register_params(DATASET, &fixture.csv, &fixture.spec),
        )
        .expect("register");
    (handle, addr)
}

fn anon_params(p: u32, k: u32, ts: usize) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str(DATASET.into()));
    params.set("p", JsonValue::Int(i64::from(p)));
    params.set("k", JsonValue::Int(i64::from(k)));
    params.set("ts", JsonValue::Int(ts as i64));
    params
}

/// The deterministic verdict sub-object as a canonical JSON string
/// (`JsonValue` objects keep insertion order, so equal verdicts render to
/// equal bytes).
fn verdict_string(result: &JsonValue) -> String {
    result
        .get("verdict")
        .expect("anonymize result carries a verdict")
        .to_json()
}

fn anonymize_verdict(client: &mut Client, params: JsonValue) -> String {
    let result = client.call_ok("anonymize", params).expect("anonymize");
    verdict_string(&result)
}

fn check_string(client: &mut Client, p: u32, k: u32) -> String {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str(DATASET.into()));
    params.set("p", JsonValue::Int(i64::from(p)));
    params.set("k", JsonValue::Int(i64::from(k)));
    client.call_ok("check", params).expect("check").to_json()
}

/// Anonymize parameters for a non-default model: `(model, field=value, k, ts)`.
fn model_params(model: &str, field: &str, value: i64, k: u32, ts: usize) -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str(DATASET.into()));
    params.set("model", JsonValue::Str(model.into()));
    params.set(field, JsonValue::Int(value));
    params.set("k", JsonValue::Int(i64::from(k)));
    params.set("ts", JsonValue::Int(ts as i64));
    params
}

#[test]
fn concurrent_mixed_traffic_matches_serial_and_cli_verdicts() {
    let fixture = adult_fixture(SEED, ROWS);
    let (_handle, addr) = boot(&fixture);

    // Reference pass: one client, strictly serial, cold stores.
    let mut serial = Client::connect(addr).expect("connect");
    let reference: Vec<String> = PARAMS
        .iter()
        .map(|&(p, k, ts)| anonymize_verdict(&mut serial, anon_params(p, k, ts)))
        .collect();
    let check_reference: Vec<String> = PARAMS
        .iter()
        .map(|&(p, k, _)| check_string(&mut serial, p, k))
        .collect();

    // Concurrent pass: every client runs every parameter set (rotated so the
    // interleaving differs per client), alternating warm-store and no-cache
    // runs, with `check`s mixed in. All through a max_concurrent=2 gate.
    let divergences: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let divergences = &divergences;
            let reference = &reference;
            let check_reference = &check_reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..PARAMS.len() {
                    let slot = (i + c) % PARAMS.len();
                    let (p, k, ts) = PARAMS[slot];
                    let mut params = anon_params(p, k, ts);
                    if c % 2 == 1 {
                        params.set("no_cache", JsonValue::Bool(true));
                    }
                    let got = anonymize_verdict(&mut client, params);
                    if got != reference[slot] {
                        divergences.lock().unwrap().push(format!(
                            "client {c} anonymize p={p} k={k} ts={ts}:\n  got {got}\n  want {}",
                            reference[slot]
                        ));
                    }
                    let got = check_string(&mut client, p, k);
                    if got != check_reference[slot] {
                        divergences
                            .lock()
                            .unwrap()
                            .push(format!("client {c} check p={p} k={k} diverged"));
                    }
                }
            });
        }
    });
    let divergences = divergences.into_inner().unwrap();
    assert!(
        divergences.is_empty(),
        "concurrent verdicts diverged from serial:\n{}",
        divergences.join("\n")
    );

    // CLI pass: the same dataset through `psens anonymize --report`, compared
    // on the fields both sides define (winning node, satisfied, termination).
    let dir = std::env::temp_dir().join("psens_server_oracle");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("oracle.csv");
    let spec_path = dir.join("oracle_spec.json");
    std::fs::write(&csv_path, &fixture.csv).unwrap();
    std::fs::write(&spec_path, fixture.spec.to_json().to_json()).unwrap();
    for (slot, &(p, k, ts)) in PARAMS.iter().enumerate() {
        let (p_s, k_s, ts_s) = (p.to_string(), k.to_string(), ts.to_string());
        let flags = ["--p", &p_s, "--k", &k_s, "--ts", &ts_s];
        let tag = format!("{p}_{k}_{ts}");
        let report = cli_anonymize_report(&dir, &csv_path, &spec_path, &tag, &flags);
        let server = JsonValue::parse(&reference[slot]).expect("verdict parses");
        assert_eq!(
            report.get("satisfied").unwrap().as_bool().unwrap(),
            server.get("satisfied").unwrap().as_bool().unwrap(),
            "satisfied diverged for p={p} k={k} ts={ts}"
        );
        let cli_node = report.get("node").unwrap().as_str().ok();
        let server_node = server.get("node").unwrap().as_str().ok();
        assert_eq!(
            cli_node, server_node,
            "node diverged for p={p} k={k} ts={ts}"
        );
        assert_eq!(
            report
                .get("termination")
                .unwrap()
                .get("reason")
                .unwrap()
                .as_str()
                .unwrap(),
            server.get("termination").unwrap().as_str().unwrap(),
            "termination diverged for p={p} k={k} ts={ts}"
        );
    }
}

#[test]
fn injected_interruption_verdicts_agree_across_clients_and_cli() {
    let fixture = adult_fixture(SEED, ROWS);
    let (_handle, addr) = boot(&fixture);
    let (p, k, ts) = (2u32, 3u32, 10usize);

    // max_nodes=0 and timeout_ms=0 trip the budget before the first node is
    // evaluated, so even an "interrupted" verdict is deterministic.
    let budgets: [(&str, &str); 2] = [
        ("max_nodes", "node_budget_exhausted"),
        ("timeout_ms", "deadline_exceeded"),
    ];
    for (field, want_termination) in budgets {
        let mut serial = Client::connect(addr).expect("connect");
        let mut params = anon_params(p, k, ts);
        params.set(field, JsonValue::Int(0));
        let reference = anonymize_verdict(&mut serial, params);
        let got_termination = JsonValue::parse(&reference)
            .unwrap()
            .get("termination")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert_eq!(got_termination, want_termination, "budget field {field}");

        let divergences: Mutex<Vec<String>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let divergences = &divergences;
                let reference = &reference;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut params = anon_params(p, k, ts);
                    params.set(field, JsonValue::Int(0));
                    if c % 2 == 1 {
                        params.set("no_cache", JsonValue::Bool(true));
                    }
                    let got = anonymize_verdict(&mut client, params);
                    if got != *reference {
                        divergences
                            .lock()
                            .unwrap()
                            .push(format!("client {c} {field}=0 verdict diverged"));
                    }
                });
            }
        });
        let divergences = divergences.into_inner().unwrap();
        assert!(divergences.is_empty(), "{}", divergences.join("\n"));
    }

    // CLI under the same injected budget: interrupted exit code, and the
    // report's termination reason matches the server verdict's.
    let dir = std::env::temp_dir().join("psens_server_oracle_interrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("oracle.csv");
    let spec_path = dir.join("oracle_spec.json");
    std::fs::write(&csv_path, &fixture.csv).unwrap();
    std::fs::write(&spec_path, fixture.spec.to_json().to_json()).unwrap();
    let report = cli_anonymize_report(
        &dir,
        &csv_path,
        &spec_path,
        "interrupt",
        &["--p", "2", "--k", "3", "--ts", "10", "--max-nodes", "0"],
    );
    assert_eq!(
        report
            .get("termination")
            .unwrap()
            .get("reason")
            .unwrap()
            .as_str()
            .unwrap(),
        "node_budget_exhausted"
    );
    assert!(!report.get("satisfied").unwrap().as_bool().unwrap());
}

/// The oracle, per pluggable model: serial, concurrent, and CLI executions
/// of distinct-l, entropy-l, and t-closeness runs must return the same
/// verdict bytes (server) and the same (satisfied, node, termination)
/// triple (CLI).
#[test]
fn per_model_verdicts_agree_across_serial_concurrent_and_cli() {
    let fixture = adult_fixture(SEED, ROWS);
    let (_handle, addr) = boot(&fixture);
    let (k, ts) = (3u32, 10usize);

    // Serial reference, cold stores.
    let mut serial = Client::connect(addr).expect("connect");
    let reference: Vec<String> = MODELS
        .iter()
        .map(|&(model, field, value, _, _)| {
            anonymize_verdict(&mut serial, model_params(model, field, value, k, ts))
        })
        .collect();
    for (slot, &(model, _, _, _, _)) in MODELS.iter().enumerate() {
        let verdict = JsonValue::parse(&reference[slot]).expect("verdict parses");
        assert_eq!(
            verdict.get("model").unwrap().as_str().unwrap(),
            model,
            "verdict echoes its model"
        );
    }

    // Concurrent pass: rotated model order per client, warm and no-cache
    // runs interleaved through the admission gate.
    let divergences: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let divergences = &divergences;
            let reference = &reference;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..MODELS.len() {
                    let slot = (i + c) % MODELS.len();
                    let (model, field, value, _, _) = MODELS[slot];
                    let mut params = model_params(model, field, value, k, ts);
                    if c % 2 == 1 {
                        params.set("no_cache", JsonValue::Bool(true));
                    }
                    let got = anonymize_verdict(&mut client, params);
                    if got != reference[slot] {
                        divergences.lock().unwrap().push(format!(
                            "client {c} model {model}:\n  got {got}\n  want {}",
                            reference[slot]
                        ));
                    }
                }
            });
        }
    });
    let divergences = divergences.into_inner().unwrap();
    assert!(
        divergences.is_empty(),
        "concurrent per-model verdicts diverged from serial:\n{}",
        divergences.join("\n")
    );

    // CLI pass on the same CSV, per model.
    let dir = std::env::temp_dir().join("psens_server_oracle_models");
    std::fs::create_dir_all(&dir).unwrap();
    let csv_path = dir.join("oracle.csv");
    let spec_path = dir.join("oracle_spec.json");
    std::fs::write(&csv_path, &fixture.csv).unwrap();
    std::fs::write(&spec_path, fixture.spec.to_json().to_json()).unwrap();
    let (k_s, ts_s) = (k.to_string(), ts.to_string());
    for (slot, &(model, _, _, cli_flag, cli_value)) in MODELS.iter().enumerate() {
        let flags = [
            "--model", model, cli_flag, cli_value, "--k", &k_s, "--ts", &ts_s,
        ];
        let report = cli_anonymize_report(&dir, &csv_path, &spec_path, model, &flags);
        let server = JsonValue::parse(&reference[slot]).expect("verdict parses");
        assert_eq!(
            report.get("satisfied").unwrap().as_bool().unwrap(),
            server.get("satisfied").unwrap().as_bool().unwrap(),
            "satisfied diverged for model {model}"
        );
        assert_eq!(
            report.get("node").unwrap().as_str().ok(),
            server.get("node").unwrap().as_str().ok(),
            "node diverged for model {model}"
        );
        assert_eq!(
            report
                .get("termination")
                .unwrap()
                .get("reason")
                .unwrap()
                .as_str()
                .unwrap(),
            server.get("termination").unwrap().as_str().unwrap(),
            "termination diverged for model {model}"
        );
    }
}

/// Warm verdict-store pools are keyed by model: the same dataset under
/// psens-k and distinct-l builds two independent pools, interleaved warm
/// re-runs return each model's cold verdict byte-for-byte, and the pool
/// count proves no store was shared across models.
#[test]
fn pools_keyed_by_different_models_never_cross_contaminate() {
    let fixture = adult_fixture(SEED, ROWS);
    let (_handle, addr) = boot(&fixture);
    let (k, ts) = (3u32, 10usize);
    let mut client = Client::connect(addr).expect("connect");

    let live_stores = |client: &mut Client| -> (u64, u64, u64) {
        let stats = client.call_ok("stats", JsonValue::object()).expect("stats");
        let datasets = stats.get("datasets").unwrap().as_array().unwrap();
        let entry = &datasets[0];
        (
            entry.get("store_warm_hits").unwrap().as_u64().unwrap(),
            entry.get("store_cold_misses").unwrap().as_u64().unwrap(),
            entry.get("live_stores").unwrap().as_u64().unwrap(),
        )
    };

    // Cold runs: psens-k p=2 and distinct-l l=2 share the distinct-count
    // predicate but must get separate pools.
    let psens_cold = anonymize_verdict(&mut client, anon_params(2, k, ts));
    let distinct_cold = anonymize_verdict(&mut client, model_params("distinct-l", "l", 2, k, ts));
    let (warm, cold, live) = live_stores(&mut client);
    assert_eq!((warm, cold, live), (0, 2, 2), "two cold pools, no sharing");

    // The predicates coincide, so the search agrees on substance...
    let psens = JsonValue::parse(&psens_cold).unwrap();
    let distinct = JsonValue::parse(&distinct_cold).unwrap();
    for field in ["satisfied", "node", "suppressed"] {
        assert_eq!(
            psens.get(field).unwrap().to_json(),
            distinct.get(field).unwrap().to_json(),
            "psens-k(p=2) and distinct-l(l=2) agree on {field}"
        );
    }
    // ...while each verdict still names its own model.
    assert_eq!(psens.get("model").unwrap().as_str().unwrap(), "psens-k");
    assert_eq!(
        distinct.get("model").unwrap().as_str().unwrap(),
        "distinct-l"
    );

    // Interleaved warm re-runs (reversed order): byte-identical to the cold
    // verdicts, two warm hits, still exactly two pools.
    let distinct_warm = anonymize_verdict(&mut client, model_params("distinct-l", "l", 2, k, ts));
    let psens_warm = anonymize_verdict(&mut client, anon_params(2, k, ts));
    assert_eq!(distinct_warm, distinct_cold, "warm distinct-l verdict");
    assert_eq!(psens_warm, psens_cold, "warm psens-k verdict");
    let (warm, cold, live) = live_stores(&mut client);
    assert_eq!((warm, cold, live), (2, 2, 2), "warm hits, no new pools");

    // A third model at the same (k, ts) gets its own pool too.
    let entropy_cold = anonymize_verdict(&mut client, model_params("entropy-l", "l", 1, k, ts));
    let entropy_warm = anonymize_verdict(&mut client, model_params("entropy-l", "l", 1, k, ts));
    assert_eq!(entropy_warm, entropy_cold, "warm entropy-l verdict");
    let (warm, cold, live) = live_stores(&mut client);
    assert_eq!((warm, cold, live), (3, 3, 3), "three models, three pools");
}

/// Runs `psens anonymize` in-process and returns the parsed `--report` JSON.
/// `tag` names the output files; `flags` carries the parameter flags
/// (`--p`/`--model`/`--k`/...).
fn cli_anonymize_report(
    dir: &std::path::Path,
    csv_path: &std::path::Path,
    spec_path: &std::path::Path,
    tag: &str,
    flags: &[&str],
) -> JsonValue {
    let out_path = dir.join(format!("out_{tag}.csv"));
    let report_path = dir.join(format!("report_{tag}.json"));
    let mut line: Vec<String> = [
        "anonymize",
        "--input",
        csv_path.to_str().unwrap(),
        "--spec",
        spec_path.to_str().unwrap(),
        "--out",
        out_path.to_str().unwrap(),
        "--report",
        report_path.to_str().unwrap(),
        "--threads",
        "1",
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    line.extend(flags.iter().map(ToString::to_string));
    let args = Args::parse(line).expect("args parse");
    // Interrupted/violation runs return nonzero codes by design; only a
    // hard error is fatal here.
    let _ = commands::run(&args).expect("cli anonymize runs");
    let text = std::fs::read_to_string(&report_path).expect("report written");
    JsonValue::parse(&text).expect("report parses")
}
