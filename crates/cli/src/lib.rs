//! `psens` command implementations as a library.
//!
//! The binary in `main.rs` is a thin wrapper over [`commands::run`]; the
//! integration tests (notably the concurrent-server differential oracle)
//! call the same entry points in-process instead of spawning the binary.

pub mod args;
pub mod commands;
pub mod progress;
pub mod signal;
