//! A small hand-rolled argument parser: `--flag value` pairs plus a leading
//! subcommand. A fixed set of boolean flags ([`FLAGS`]) take no value.

use std::collections::BTreeMap;

/// Option names that are boolean flags: present or absent, no value consumed.
pub const FLAGS: &[&str] = &["no-cache", "verbose", "clear"];

/// Parsed command line: a subcommand and its `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parses an iterator of arguments (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut iter = args.into_iter();
        let command = iter.next().unwrap_or_default();
        let mut options = BTreeMap::new();
        while let Some(arg) = iter.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got `{arg}`"))?;
            let value = if FLAGS.contains(&key) {
                "true".to_owned()
            } else {
                iter.next()
                    .ok_or_else(|| format!("option --{key} needs a value"))?
            };
            if options.insert(key.to_owned(), value).is_some() {
                return Err(format!("option --{key} given twice"));
            }
        }
        Ok(Args { command, options })
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean flag (see [`FLAGS`]) was given.
    pub fn get_flag(&self, key: &str) -> bool {
        debug_assert!(FLAGS.contains(&key), "--{key} is not a declared flag");
        self.options.contains_key(key)
    }

    /// An optional integer option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// An optional `u32` option with a default.
    pub fn get_u32(&self, key: &str, default: u32) -> Result<u32, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// An optional `u64` option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, String> {
        Args::parse(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_and_options() {
        let args = parse(&["check", "--input", "a.csv", "--k", "3"]).unwrap();
        assert_eq!(args.command, "check");
        assert_eq!(args.require("input").unwrap(), "a.csv");
        assert_eq!(args.get_u32("k", 2).unwrap(), 3);
        assert_eq!(args.get_u32("p", 2).unwrap(), 2);
        assert!(args.get("out").is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&["check", "input"]).is_err());
        assert!(parse(&["check", "--input"]).is_err());
        assert!(parse(&["check", "--k", "1", "--k", "2"]).is_err());
        let args = parse(&["check", "--k", "x"]).unwrap();
        assert!(args.get_u32("k", 2).is_err());
    }

    #[test]
    fn missing_required_is_reported() {
        let args = parse(&["check"]).unwrap();
        let err = args.require("input").unwrap_err();
        assert!(err.contains("--input"));
    }

    #[test]
    fn empty_command_line() {
        let args = parse(&[]).unwrap();
        assert!(args.command.is_empty());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let args = parse(&["check", "--verbose", "--k", "3"]).unwrap();
        assert!(args.get_flag("verbose"));
        assert_eq!(args.get_u32("k", 2).unwrap(), 3);
        let args = parse(&["check"]).unwrap();
        assert!(!args.get_flag("verbose"));
        // A flag given twice is still rejected.
        assert!(parse(&["check", "--verbose", "--verbose"]).is_err());
    }

    #[test]
    fn no_cache_flag_composes_with_options() {
        let args = parse(&["anonymize", "--no-cache", "--threads", "8"]).unwrap();
        assert!(args.get_flag("no-cache"));
        assert_eq!(args.get_usize("threads", 1).unwrap(), 8);
        assert!(!parse(&["anonymize"]).unwrap().get_flag("no-cache"));
    }
}
