//! `psens` — the command-line p-sensitive k-anonymity toolkit.
//!
//! See [`commands::USAGE`] or run `psens help` for the command reference.

mod args;
mod commands;
mod spec;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
