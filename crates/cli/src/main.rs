//! `psens` — the command-line p-sensitive k-anonymity toolkit.
//!
//! See [`psens_cli::commands::USAGE`] or run `psens help` for the command
//! reference.

use psens_cli::{args, commands};
use std::process::ExitCode;

/// Exit codes: 0 success, 1 operational error (bad arguments, unreadable
/// files), 2 negative verdict (property violated, requested p
/// unsatisfiable, no achievable masking — see [`commands::EXIT_VIOLATION`]),
/// 3 interrupted by a budget limit or Ctrl-C before the verdict was proven
/// (see [`commands::EXIT_INTERRUPTED`]).
fn main() -> ExitCode {
    let parsed = match args::Args::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(output) => {
            print!("{}", output.text);
            ExitCode::from(output.code)
        }
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
