//! Implementation of the CLI subcommands.

use crate::args::Args;
use crate::spec::Spec;
use psens_algorithms::mondrian::{mondrian_anonymize, MondrianConfig};
use psens_algorithms::samarati::{pk_minimal_generalization, Pruning};
use psens_core::conditions::{ConfidentialStats, MaxGroups};
use psens_core::{check_p_sensitivity, max_k, max_p_of_masked};
use psens_datasets::AdultGenerator;
use psens_metrics::{attribute_risk, identity_risk};
use psens_microdata::{csv, Table};

/// Usage text printed by `psens help` and on argument errors.
pub const USAGE: &str = "\
psens — p-sensitive k-anonymity toolkit (Truta & Vinay, ICDE 2006)

USAGE:
  psens <command> [--option value ...]

COMMANDS:
  generate   Generate synthetic Adult microdata
             --rows N [--seed S] --out FILE.csv
  spec       Write the built-in Adult spec as JSON
             --out SPEC.json
  check      Check p-sensitive k-anonymity of a CSV
             --spec SPEC.json --input FILE.csv [--k K] [--p P]
  analyze    Print frequency statistics, condition bounds, and risks
             --spec SPEC.json --input FILE.csv
  anonymize  Produce a masked release
             --spec SPEC.json --input FILE.csv --out FILE.csv
             [--k K] [--p P] [--ts N] [--algorithm samarati|mondrian]
  attack     Run the record-linkage attack against a masked release
             --spec SPEC.json --masked FILE.csv --external FILE.csv
             --node L1,L2,... --identifier NAME
  query      Run a SQL statement against a CSV file (table name: data)
             --input FILE.csv --sql STATEMENT [--spec SPEC.json]
  help       Show this message
";

/// Runs a parsed command line; returns the text to print or an error.
pub fn run(args: &Args) -> Result<String, String> {
    match args.command.as_str() {
        "generate" => generate(args),
        "spec" => write_spec(args),
        "check" => check(args),
        "analyze" => analyze(args),
        "anonymize" => anonymize(args),
        "attack" => attack(args),
        "query" => query(args),
        "help" | "" => Ok(USAGE.to_owned()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn load_table(args: &Args, spec: &Spec) -> Result<Table, String> {
    let path = args.require("input")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = spec.schema().map_err(|e| e.to_string())?;
    csv::read_table_str(&text, schema, true).map_err(|e| e.to_string())
}

fn load_spec(args: &Args) -> Result<Spec, String> {
    let path = args.require("spec")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn generate(args: &Args) -> Result<String, String> {
    let rows = args.get_usize("rows", 1000)?;
    let seed = args.get_u64("seed", 42)?;
    let out = args.require("out")?;
    let table = AdultGenerator::new(seed).generate(rows);
    let mut file = std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    csv::write_table(&mut file, &table, true).map_err(|e| e.to_string())?;
    Ok(format!("wrote {rows} rows to {out}"))
}

fn write_spec(args: &Args) -> Result<String, String> {
    let out = args.require("out")?;
    let json = serde_json::to_string_pretty(&Spec::adult()).map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
    Ok(format!("wrote Adult spec to {out}"))
}

fn check(args: &Args) -> Result<String, String> {
    let spec = load_spec(args)?;
    let table = load_table(args, &spec)?;
    let k = args.get_u32("k", 2)?;
    let p = args.get_u32("p", 2)?;
    let keys = table.schema().key_indices();
    let conf = table.schema().confidential_indices();
    let report = check_p_sensitivity(&table, &keys, &conf, p, k);
    let mut out = String::new();
    out.push_str(&format!(
        "rows: {} | QI-groups: {}\n",
        table.n_rows(),
        report.n_groups
    ));
    out.push_str(&format!(
        "k-anonymity (k = {k}): {} (max k = {})\n",
        if report.k_anonymous {
            "SATISFIED"
        } else {
            "VIOLATED"
        },
        max_k(&table, &keys)
    ));
    out.push_str(&format!(
        "p-sensitivity (p = {p}): {} (max p = {})\n",
        if report.violations.is_empty() {
            "SATISFIED"
        } else {
            "VIOLATED"
        },
        max_p_of_masked(&table, &keys, &conf)
    ));
    for v in report.violations.iter().take(10) {
        out.push_str(&format!(
            "  group {} (size {}): {} has {} distinct value(s)\n",
            v.group, v.group_size, v.attribute_name, v.distinct
        ));
    }
    if report.violations.len() > 10 {
        out.push_str(&format!(
            "  ... and {} more violations\n",
            report.violations.len() - 10
        ));
    }
    out.push_str(&format!(
        "p-sensitive k-anonymity: {}\n",
        if report.satisfied() {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    ));
    Ok(out)
}

fn analyze(args: &Args) -> Result<String, String> {
    let spec = load_spec(args)?;
    let table = load_table(args, &spec)?;
    let keys = table.schema().key_indices();
    let conf = table.schema().confidential_indices();
    let stats = ConfidentialStats::compute(&table, &conf);
    let mut out = String::new();
    out.push_str(&format!("rows: {}\n\ncolumn profile:\n", table.n_rows()));
    for summary in psens_microdata::describe(&table) {
        let range = match (summary.min, summary.max) {
            (Some(lo), Some(hi)) => format!(" range {lo}..{hi}"),
            _ => String::new(),
        };
        let top = summary
            .top
            .as_ref()
            .map(|(v, c)| format!(" top `{v}` x{c}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  {:<14} {:<13} distinct {:>5}  missing {:>4}{}{}\n",
            summary.name, summary.role, summary.distinct, summary.missing, range, top
        ));
    }
    out.push_str("\nconfidential attributes:\n");
    for attr in &stats.per_attribute {
        let top: Vec<String> = attr
            .descending
            .iter()
            .take(5)
            .map(ToString::to_string)
            .collect();
        out.push_str(&format!(
            "  {} — {} distinct, top frequencies [{}]\n",
            attr.name,
            attr.s,
            top.join(", ")
        ));
    }
    out.push_str(&format!("\nCondition 1: maxP = {}\n", stats.max_p()));
    out.push_str("Condition 2: maxGroups by p:\n");
    for p in 2..=stats.max_p().min(8) as u32 {
        if let MaxGroups::Bounded(b) = stats.max_groups(p) {
            out.push_str(&format!("  p = {p}: at most {b} QI-groups\n"));
        }
    }
    let id_risk = identity_risk(&table, &keys);
    out.push_str(&format!(
        "\nidentity risk: max {:.4}, avg {:.4}, uniques {}\n",
        id_risk.max_risk, id_risk.avg_risk, id_risk.uniques
    ));
    let attr_risk = attribute_risk(&table, &keys, &conf);
    out.push_str(&format!(
        "attribute risk: {} disclosures across {} groups ({:.1}% of tuples affected)\n",
        attr_risk.disclosures,
        attr_risk.affected_groups,
        attr_risk.affected_fraction * 100.0
    ));
    Ok(out)
}

fn anonymize(args: &Args) -> Result<String, String> {
    let spec = load_spec(args)?;
    let table = load_table(args, &spec)?;
    let out_path = args.require("out")?;
    let k = args.get_u32("k", 2)?;
    let p = args.get_u32("p", 1)?;
    let ts = args.get_usize("ts", 0)?;
    let algorithm = args.get("algorithm").unwrap_or("samarati");
    let mut out = String::new();
    let masked = match algorithm {
        "samarati" => {
            let qi = spec.qi_space()?;
            let outcome =
                pk_minimal_generalization(&table, &qi, p, k, ts, Pruning::NecessaryConditions)
                    .map_err(|e| e.to_string())?;
            let node = outcome
                .node
                .ok_or_else(|| format!("no masking satisfies p = {p}, k = {k} with TS = {ts}"))?;
            let levels: Vec<String> = node.levels().iter().map(ToString::to_string).collect();
            out.push_str(&format!(
                "p-k-minimal node: {} (height {}), suppressed {} tuple(s)\n\
                 node levels (for `psens attack --node`): {}\n",
                qi.describe_node(&node),
                node.height(),
                outcome.suppressed,
                levels.join(",")
            ));
            outcome.masked.expect("masked accompanies node")
        }
        "mondrian" => {
            let outcome = mondrian_anonymize(&table, MondrianConfig { k, p });
            let keys = outcome.masked.schema().key_indices();
            let conf = outcome.masked.schema().confidential_indices();
            if !psens_core::is_p_sensitive_k_anonymous(&outcome.masked, &keys, &conf, p, k) {
                return Err(format!(
                    "mondrian could not satisfy p = {p}, k = {k} (input too small or too uniform)"
                ));
            }
            out.push_str(&format!(
                "mondrian: {} partitions after {} splits\n",
                outcome.partitions.len(),
                outcome.splits
            ));
            outcome.masked
        }
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    let mut file =
        std::fs::File::create(out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
    csv::write_table(&mut file, &masked, true).map_err(|e| e.to_string())?;
    out.push_str(&format!("wrote {} rows to {out_path}\n", masked.n_rows()));
    Ok(out)
}

fn query(args: &Args) -> Result<String, String> {
    let path = args.require("input")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    // With a spec the CSV is read against its schema (roles included);
    // without one, kinds are inferred and all roles default to `other`.
    let table = match args.get("spec") {
        Some(_) => {
            let spec = load_spec(args)?;
            let schema = spec.schema().map_err(|e| e.to_string())?;
            csv::read_table_str(&text, schema, true).map_err(|e| e.to_string())?
        }
        None => csv::read_table_infer(&text).map_err(|e| e.to_string())?,
    };
    let sql = args.require("sql")?;
    let mut catalog = psens_sql::Catalog::new();
    catalog.register("data", &table);
    let result = psens_sql::execute(&catalog, sql).map_err(|e| e.to_string())?;
    Ok(psens_microdata::render(&result, 100))
}

fn attack(args: &Args) -> Result<String, String> {
    use psens_core::attack::linkage_attack;
    use psens_hierarchy::Node;
    use psens_microdata::{Attribute, Kind, Role, Schema};

    let spec = load_spec(args)?;
    let qi = spec.qi_space()?;
    let node_text = args.require("node")?;
    let levels: Vec<u8> = node_text
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<u8>()
                .map_err(|_| format!("bad node component `{part}`"))
        })
        .collect::<Result<_, _>>()?;
    let node = Node(levels);
    if !qi.lattice().contains(&node) {
        return Err(format!(
            "node {node} is outside the {}-attribute lattice",
            qi.len()
        ));
    }

    // The masked release's schema: spec attributes minus identifiers, with
    // key attributes generalized above level 0 recoded as categorical.
    let spec_schema = spec.schema().map_err(|e| e.to_string())?;
    let mut masked_attrs = Vec::new();
    for attr in spec_schema.attributes() {
        if attr.role() == Role::Identifier {
            continue;
        }
        let kind = match qi.names().iter().position(|n| *n == attr.name()) {
            Some(pos) if node.levels()[pos] > 0 => Kind::Cat,
            _ => attr.kind(),
        };
        masked_attrs.push(Attribute::new(attr.name(), kind, attr.role()));
    }
    let masked_schema = Schema::new(masked_attrs).map_err(|e| e.to_string())?;
    let masked_path = args.require("masked")?;
    let masked_text =
        std::fs::read_to_string(masked_path).map_err(|e| format!("reading {masked_path}: {e}"))?;
    let masked =
        csv::read_table_str(&masked_text, masked_schema, true).map_err(|e| e.to_string())?;

    // The intruder's external knowledge uses the raw spec schema.
    let external_path = args.require("external")?;
    let external_text = std::fs::read_to_string(external_path)
        .map_err(|e| format!("reading {external_path}: {e}"))?;
    let external =
        csv::read_table_str(&external_text, spec_schema, true).map_err(|e| e.to_string())?;

    let identifier = args.require("identifier")?;
    let findings =
        linkage_attack(&masked, &qi, &node, &external, identifier).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let mut reidentified = 0usize;
    let mut leaked = 0usize;
    for f in &findings {
        reidentified += usize::from(f.identity_disclosed);
        leaked += usize::from(!f.learned.is_empty());
        if f.identity_disclosed || !f.learned.is_empty() {
            let learned: Vec<String> = f
                .learned
                .iter()
                .map(|(a, v)| format!("{a} = {v}"))
                .collect();
            out.push_str(&format!(
                "  {} -> {}{}\n",
                f.individual,
                if f.identity_disclosed {
                    "RE-IDENTIFIED"
                } else {
                    "linked to group"
                },
                if learned.is_empty() {
                    String::new()
                } else {
                    format!("; learns {}", learned.join(", "))
                }
            ));
        }
    }
    out.push_str(&format!(
        "{} of {} individuals linked; {reidentified} re-identified; \
         {leaked} suffer attribute disclosure\n",
        findings.len(),
        external.n_rows()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, String> {
        let args = Args::parse(line.iter().map(|s| s.to_string()))?;
        run(&args)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("psens_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_line(&["help"]).unwrap().contains("USAGE"));
        assert!(run_line(&[]).unwrap().contains("USAGE"));
        assert!(run_line(&["frobnicate"]).is_err());
    }

    #[test]
    fn end_to_end_generate_check_anonymize() {
        let data = temp_path("data.csv");
        let spec = temp_path("spec.json");
        let masked = temp_path("masked.csv");
        let data_s = data.to_str().unwrap();
        let spec_s = spec.to_str().unwrap();
        let masked_s = masked.to_str().unwrap();

        let msg = run_line(&["generate", "--rows", "300", "--seed", "7", "--out", data_s]).unwrap();
        assert!(msg.contains("300 rows"));
        run_line(&["spec", "--out", spec_s]).unwrap();

        let report = run_line(&[
            "check", "--spec", spec_s, "--input", data_s, "--k", "2", "--p", "2",
        ])
        .unwrap();
        assert!(report.contains("k-anonymity"));
        assert!(report.contains("VIOLATED"), "raw data is not anonymous");

        let analysis = run_line(&["analyze", "--spec", spec_s, "--input", data_s]).unwrap();
        assert!(analysis.contains("Condition 1"));
        assert!(analysis.contains("identity risk"));

        let result = run_line(&[
            "anonymize",
            "--spec",
            spec_s,
            "--input",
            data_s,
            "--out",
            masked_s,
            "--k",
            "2",
            "--p",
            "2",
            "--ts",
            "10",
        ])
        .unwrap();
        assert!(result.contains("p-k-minimal node"));

        // The released file must pass its own check. Its schema differs from
        // the spec (key columns became categorical labels), so verify via a
        // fresh parse with inferred roles is out of scope here — instead,
        // confirm the CSV exists and is non-trivial.
        let released = std::fs::read_to_string(&masked).unwrap();
        assert!(released.lines().count() > 100);
        assert!(released.starts_with("Age,MaritalStatus"));
    }

    #[test]
    fn mondrian_path() {
        let data = temp_path("mdata.csv");
        let spec = temp_path("mspec.json");
        let masked = temp_path("mmasked.csv");
        run_line(&[
            "generate",
            "--rows",
            "400",
            "--seed",
            "9",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        let result = run_line(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "3",
            "--p",
            "2",
            "--algorithm",
            "mondrian",
        ])
        .unwrap();
        assert!(result.contains("partitions"));
    }

    #[test]
    fn attack_workflow_on_k_only_release() {
        let data = temp_path("adata.csv");
        let spec = temp_path("aspec.json");
        let masked = temp_path("amasked.csv");
        run_line(&[
            "generate",
            "--rows",
            "400",
            "--seed",
            "21",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        // k-anonymity only (p = 1): attribute disclosures expected.
        let result = run_line(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "1",
            "--ts",
            "0",
        ])
        .unwrap();
        let node_line = result
            .lines()
            .find(|l| l.contains("node levels"))
            .expect("anonymize prints node levels");
        let node = node_line.rsplit(' ').next().unwrap();

        let attack = run_line(&[
            "attack",
            "--spec",
            spec.to_str().unwrap(),
            "--masked",
            masked.to_str().unwrap(),
            "--external",
            data.to_str().unwrap(),
            "--node",
            node,
            "--identifier",
            "Id",
        ])
        .unwrap();
        assert!(attack.contains("individuals linked"), "{attack}");
        assert!(attack.contains("0 re-identified"), "{attack}");
        assert!(
            !attack.contains("; 0 suffer attribute disclosure"),
            "a k-only release should leak: {attack}"
        );

        // Bad node strings are rejected.
        assert!(run_line(&[
            "attack",
            "--spec",
            spec.to_str().unwrap(),
            "--masked",
            masked.to_str().unwrap(),
            "--external",
            data.to_str().unwrap(),
            "--node",
            "9,9,9,9",
            "--identifier",
            "Id",
        ])
        .is_err());
    }

    #[test]
    fn query_subcommand_runs_sql() {
        let data = temp_path("qdata.csv");
        run_line(&[
            "generate",
            "--rows",
            "120",
            "--seed",
            "33",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        // Schema inference path.
        let out = run_line(&[
            "query",
            "--input",
            data.to_str().unwrap(),
            "--sql",
            "SELECT Sex, COUNT(*) FROM data GROUP BY Sex ORDER BY 2 DESC",
        ])
        .unwrap();
        assert!(out.contains("COUNT(*)"), "{out}");
        assert!(out.contains("Male"));
        // Spec-schema path.
        let spec = temp_path("qspec.json");
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        let out = run_line(&[
            "query",
            "--input",
            data.to_str().unwrap(),
            "--spec",
            spec.to_str().unwrap(),
            "--sql",
            "SELECT MAX(Age) FROM data",
        ])
        .unwrap();
        assert!(out.contains("MAX(Age)"));
        // SQL errors surface.
        assert!(run_line(&[
            "query",
            "--input",
            data.to_str().unwrap(),
            "--sql",
            "SELECT FROM",
        ])
        .is_err());
    }

    #[test]
    fn missing_files_are_reported() {
        let err =
            run_line(&["check", "--spec", "/nonexistent.json", "--input", "x.csv"]).unwrap_err();
        assert!(err.contains("/nonexistent.json"));
    }

    #[test]
    fn unsatisfiable_anonymize_is_an_error() {
        let data = temp_path("udata.csv");
        let spec = temp_path("uspec.json");
        run_line(&[
            "generate",
            "--rows",
            "200",
            "--seed",
            "3",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        // Pay has 2 distinct values: p = 5 is impossible.
        let err = run_line(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            "/dev/null",
            "--k",
            "2",
            "--p",
            "5",
        ])
        .unwrap_err();
        assert!(err.contains("no masking"), "{err}");
    }
}
