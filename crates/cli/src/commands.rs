//! Implementation of the CLI subcommands.

use crate::args::Args;
use crate::progress::CliObserver;
use psens_algorithms::mondrian::{mondrian_anonymize_budgeted, MondrianConfig};
use psens_algorithms::pram_backend::{pram_minimal_masking, PramBackendConfig};
use psens_algorithms::samarati::{pk_minimal_generalization_model, Pruning};
use psens_algorithms::{RunReport, SearchStats, TerminationReport, Tuning};
use psens_core::conditions::{ConfidentialStats, MaxGroups};
use psens_core::VerdictStore;
use psens_core::{
    check_p_sensitivity, check_p_sensitivity_chunked, check_table_model, max_k, max_k_chunked,
    max_p_of_masked, max_p_of_masked_chunked, CheckStage, ModelSpec, SearchBudget, SearchObserver,
    Termination,
};
use psens_datasets::Spec;
use psens_datasets::{AdultGenerator, ScaleGenerator};
use psens_metrics::{attribute_risk, identity_risk};
use psens_microdata::{csv, ChunkedTable, JsonValue, Table};
use std::time::{Duration, Instant};

/// Exit code for a run whose *verdict* is negative (property violated,
/// requested `p` unsatisfiable, no feasible masking) — distinct from `1`,
/// which signals an operational error (bad arguments, unreadable files).
pub const EXIT_VIOLATION: u8 = 2;

/// Exit code for a run the budget interrupted (deadline, `--max-nodes`, or
/// Ctrl-C) before the search could prove its answer. Partial results, when
/// any exist, are still written. Takes precedence over [`EXIT_VIOLATION`]:
/// an interrupted run's negative verdict is provisional.
pub const EXIT_INTERRUPTED: u8 = 3;

/// What a subcommand produced: the text for stdout plus the process exit
/// code. `Ok` verdicts use code 0; negative verdicts [`EXIT_VIOLATION`].
#[derive(Debug, Clone)]
pub struct CmdOutput {
    /// Text to print on stdout.
    pub text: String,
    /// Process exit code.
    pub code: u8,
}

impl CmdOutput {
    fn ok(text: String) -> CmdOutput {
        CmdOutput { text, code: 0 }
    }

    fn verdict(text: String, satisfied: bool) -> CmdOutput {
        CmdOutput {
            text,
            code: if satisfied { 0 } else { EXIT_VIOLATION },
        }
    }
}

/// Usage text printed by `psens help` and on argument errors.
pub const USAGE: &str = "\
psens — p-sensitive k-anonymity toolkit (Truta & Vinay, ICDE 2006)

USAGE:
  psens <command> [--option value ...]

COMMANDS:
  generate   Generate synthetic microdata
             --rows N [--seed S] --out FILE.csv
             [--profile adult|scale] [--chunk-rows N]
             [--deltas N --deltas-out FILE.jsonl [--final-out FILE.csv]]
             profile `scale` drops the identifier/weight columns and
             streams to disk chunk by chunk: bounded memory at any --rows
             --deltas also writes a seeded update sequence (one JSON batch
             per line, for `client --op update`) plus, with --final-out,
             the CSV the base table becomes after applying every batch
  spec       Write a built-in spec as JSON
             --out SPEC.json [--profile adult|scale]
  check      Check a privacy model on a CSV
             --spec SPEC.json --input FILE.csv [--k K]
             [--model psens-k|distinct-l|entropy-l|t-closeness]
             [--p P] [--l L] [--t T]  (--p for psens-k, --l for the
             l-diversity models, --t in [0,1] for t-closeness)
             [--chunk-rows N] [--threads N]
             [--report FILE.json] [--verbose]
             exits 2 when the property is violated
  analyze    Print frequency statistics, condition bounds, and risks
             --spec SPEC.json --input FILE.csv [--p P]
             [--chunk-rows N] [--threads N]
             [--report FILE.json] [--verbose]
             exits 2 when Condition 1 makes the requested p unsatisfiable
  anonymize  Produce a masked release
             --spec SPEC.json --input FILE.csv --out FILE.csv
             [--k K] [--model NAME] [--p P] [--l L] [--t T] [--ts N]
             [--algorithm samarati|mondrian|pram]
             [--timeout SECS] [--max-nodes N] [--seed S]
             [--threads N] [--chunk-rows N] [--no-cache]
             [--report FILE.json] [--verbose]
             `pram` fixes the QI at the k-minimal node and repairs
             confidential cells by post-randomisation (--seed) instead of
             generalizing further; mondrian supports psens-k only
             exits 2 when no masking satisfies the request; exits 3 when
             the search is interrupted (timeout, node budget, or Ctrl-C)
             after writing any best-so-far result
  attack     Run the record-linkage attack against a masked release
             --spec SPEC.json --masked FILE.csv --external FILE.csv
             --node L1,L2,... --identifier NAME
  query      Run a SQL statement against a CSV file (table name: data)
             --input FILE.csv --sql STATEMENT [--spec SPEC.json]
             [--chunk-rows N] (chunked ingest needs --spec)
  client     Send one request to a running psens-server
             --addr HOST:PORT | --addr-file PATH
             --op register|check|analyze|anonymize|query|update|watch|
                  stats|health|inject|shutdown
             register: --name NAME --input FILE.csv --spec SPEC.json
             check:     --dataset NAME [--model NAME] [--p P] [--l L]
                        [--t-ppm N] [--k K]
             analyze:   --dataset NAME [--p P]
             anonymize: --dataset NAME [--model NAME] [--p P] [--l L]
                        [--t-ppm N] [--k K] [--ts N]
                        [--timeout-ms N] [--max-nodes N] [--threads N]
                        [--no-cache]
             query:     --dataset NAME --sql STATEMENT
             update:    --dataset NAME --delta JSON | --delta-file PATH
                        (a {\"appends\":[[cells]],\"deletes\":[ix]} batch, e.g.
                        one line of `generate --deltas-out`; applies it to
                        the live table, selectively invalidates warm
                        verdict pools, and re-verifies active watches)
             watch:     --dataset NAME [--model NAME] [--p P] [--l L]
                        [--t-ppm N] [--k K] [--ts N]
                        (registers the spec for re-verification after
                        every update; prints the baseline verdict)
             inject:    --plan JSON | --plan-file PATH | --clear
                        (server must run with --enable-inject)
             [--retries N [--retry-base-ms N] [--retry-max-ms N]] retries
             busy/transport failures with backoff and an idempotent id
             prints the result as JSON; exit codes mirror the offline
             commands (2 verdict violation, 3 interrupted search)
  help       Show this message

  --chunk-rows N streams the input CSV in N-row column chunks instead of
  buffering the whole file, and runs group-by and node checks morsel-parallel
  across --threads workers. Results are identical to the buffered path;
  0 (the default) keeps the historical single-table code.
  --threads 0 (the default) means one worker per available core.
";

/// Runs a parsed command line; returns the text to print plus the exit code,
/// or an error (exit code 1).
pub fn run(args: &Args) -> Result<CmdOutput, String> {
    match args.command.as_str() {
        "generate" => generate(args).map(CmdOutput::ok),
        "spec" => write_spec(args).map(CmdOutput::ok),
        "check" => check(args),
        "analyze" => analyze(args),
        "anonymize" => anonymize(args),
        "attack" => attack(args).map(CmdOutput::ok),
        "query" => query(args).map(CmdOutput::ok),
        "client" => client(args),
        "help" | "" => Ok(CmdOutput::ok(USAGE.to_owned())),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

/// Writes a [`RunReport`] as pretty-printed JSON to `path`.
fn write_report(path: &str, report: &RunReport) -> Result<(), String> {
    let mut json = report.to_json().to_json_pretty();
    json.push('\n');
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))
}

/// The search limits parsed from `--timeout`/`--max-nodes`, kept next to the
/// raw values so the report's `termination` section can echo them back.
struct BudgetSpec {
    budget: SearchBudget,
    timeout_secs: Option<u64>,
    max_nodes: Option<u64>,
}

impl BudgetSpec {
    /// Parses the budget flags and arms the SIGINT handler. Called *before*
    /// the input is loaded: the deadline is absolute, so `--timeout` bounds
    /// the whole command, not just the lattice search.
    fn from_args(args: &Args) -> Result<BudgetSpec, String> {
        let timeout_secs = match args.get("timeout") {
            Some(_) => Some(args.get_u64("timeout", 0)?),
            None => None,
        };
        let max_nodes = match args.get("max-nodes") {
            Some(_) => Some(args.get_u64("max-nodes", 0)?),
            None => None,
        };
        let mut budget = SearchBudget::unlimited().with_cancel(crate::signal::sigint_token());
        if let Some(secs) = timeout_secs {
            budget = budget.with_timeout(Duration::from_secs(secs));
        }
        if let Some(n) = max_nodes {
            budget = budget.with_max_nodes(n);
        }
        Ok(BudgetSpec {
            budget,
            timeout_secs,
            max_nodes,
        })
    }

    /// The report section for a run that ended with `termination`.
    fn report(
        &self,
        termination: Termination,
        proven_min_height: Option<usize>,
    ) -> TerminationReport {
        TerminationReport {
            reason: termination.as_str().to_owned(),
            timeout_secs: self.timeout_secs,
            max_nodes: self.max_nodes,
            proven_min_height,
        }
    }
}

fn load_table(args: &Args, spec: &Spec) -> Result<Table, String> {
    let path = args.require("input")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = spec.schema().map_err(|e| e.to_string())?;
    csv::read_table_str(&text, schema, true).map_err(|e| e.to_string())
}

/// Streams the `--input` CSV into `chunk_rows`-row column chunks without
/// buffering the file (the `--chunk-rows` ingest path).
fn load_chunked(args: &Args, spec: &Spec, chunk_rows: usize) -> Result<ChunkedTable, String> {
    let path = args.require("input")?;
    let file = std::fs::File::open(path).map_err(|e| format!("reading {path}: {e}"))?;
    let schema = spec.schema().map_err(|e| e.to_string())?;
    csv::read_chunked(std::io::BufReader::new(file), schema, true, chunk_rows)
        .map_err(|e| e.to_string())
}

/// The `--chunk-rows` option: `0` (the default) keeps the buffered
/// single-table path.
fn chunk_rows_arg(args: &Args) -> Result<usize, String> {
    args.get_usize("chunk-rows", 0)
}

/// The `--threads` option: `0` (also the default when the flag is absent)
/// means one worker per available core. The raw request is passed through —
/// [`psens_algorithms::Tuning`] resolves and clamps it internally — so
/// `RunReport.search` can report both the requested and the effective count.
fn threads_arg(args: &Args) -> Result<usize, String> {
    args.get_usize("threads", 0)
}

/// The `--model` selector plus its parameter flag: `--p` for psens-k
/// (defaulting to `default_p`, which differs between subcommands for
/// compatibility), `--l` for the diversity models, `--t` (a fraction in
/// `[0, 1]`, stored as ppm) for t-closeness.
fn model_arg(args: &Args, default_p: u32) -> Result<ModelSpec, String> {
    match args.get("model").unwrap_or("psens-k") {
        "psens-k" => Ok(ModelSpec::PSensitiveK {
            p: args.get_u32("p", default_p)?,
        }),
        "distinct-l" => Ok(ModelSpec::DistinctL {
            l: args.get_u32("l", 2)?,
        }),
        "entropy-l" => Ok(ModelSpec::EntropyL {
            l: args.get_u32("l", 2)?,
        }),
        "t-closeness" => {
            let t = match args.get("t") {
                Some(text) => text
                    .parse::<f64>()
                    .map_err(|_| format!("bad --t value `{text}`"))?,
                None => 0.2,
            };
            if !(0.0..=1.0).contains(&t) {
                return Err(format!("--t must be within [0, 1], got {t}"));
            }
            Ok(ModelSpec::TCloseness {
                t_ppm: (t * 1_000_000.0).round() as u32,
            })
        }
        other => Err(format!(
            "unknown model `{other}` (psens-k|distinct-l|entropy-l|t-closeness)"
        )),
    }
}

fn load_spec(args: &Args) -> Result<Spec, String> {
    let path = args.require("spec")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Spec::from_json(&text).map_err(|e| format!("parsing {path}: {e}"))
}

/// Tiny xorshift64* PRNG: `generate --deltas` must be reproducible from
/// `--seed` alone, with no dependency on the `rand` crate from the CLI.
struct DeltaRng(u64);

impl DeltaRng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// Emits `n` seeded delta batches as JSON lines (`{"appends":[[cells]],
/// "deletes":[ix]}`), applying each to the evolving table so deletes index
/// real rows. The mix deliberately covers the oracle's interesting cases:
/// duplicate-only appends (sterile candidates), delete-only batches (group
/// deaths), and fresh-row batches (group births, stats shifts). Returns
/// the JSONL text and the table after all batches.
fn generate_delta_sequence(base: &Table, n: usize, seed: u64) -> Result<(String, Table), String> {
    use psens_microdata::{DeltaBatch, Value};
    let mut rng = DeltaRng(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut current = base.clone();
    let mut jsonl = String::new();
    for i in 0..n {
        let n_rows = current.n_rows();
        let mut appends: Vec<Vec<Value>> = Vec::new();
        let mut deletes: Vec<usize> = Vec::new();
        let roll = rng.below(100);
        if roll < 30 && n_rows > 0 {
            // Exact duplicates of existing rows — the sterile-append path.
            for _ in 0..1 + rng.below(3) {
                appends.push(current.row(rng.below(n_rows)).map_err(|e| e.to_string())?);
            }
        } else if roll < 60 && n_rows > 4 {
            // Deletes only — shrinks groups, possibly to death.
            let mut picks = std::collections::BTreeSet::new();
            for _ in 0..1 + rng.below(3) {
                picks.insert(rng.below(n_rows));
            }
            deletes = picks.into_iter().collect();
        } else {
            // Fresh rows (new value combinations) plus an occasional delete.
            let fresh =
                AdultGenerator::new(seed.wrapping_add(1 + i as u64)).generate(1 + rng.below(2));
            for r in 0..fresh.n_rows() {
                appends.push(fresh.row(r).map_err(|e| e.to_string())?);
            }
            if n_rows > 4 && rng.below(2) == 0 {
                deletes.push(rng.below(n_rows));
            }
        }
        let mut line = JsonValue::object();
        line.set(
            "appends",
            JsonValue::Array(
                appends
                    .iter()
                    .map(|row| {
                        JsonValue::Array(
                            row.iter()
                                .map(|v| JsonValue::Str(v.render().into_owned()))
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        );
        line.set(
            "deletes",
            JsonValue::Array(
                deletes
                    .iter()
                    .map(|&ix| JsonValue::Int(ix as i64))
                    .collect(),
            ),
        );
        jsonl.push_str(&line.to_json());
        jsonl.push('\n');
        let batch = DeltaBatch { appends, deletes };
        current = batch.apply(&current).map_err(|e| e.to_string())?;
    }
    Ok((jsonl, current))
}

fn generate(args: &Args) -> Result<String, String> {
    let rows = args.get_usize("rows", 1000)?;
    let seed = args.get_u64("seed", 42)?;
    let deltas = args.get_usize("deltas", 0)?;
    let out = args.require("out")?;
    let mut file = std::fs::File::create(out).map_err(|e| format!("creating {out}: {e}"))?;
    if deltas > 0 && args.get("profile").unwrap_or("adult") != "adult" {
        return Err("--deltas is only supported with --profile adult".to_owned());
    }
    match args.get("profile").unwrap_or("adult") {
        "adult" => {
            let table = AdultGenerator::new(seed).generate(rows);
            csv::write_table(&mut file, &table, true).map_err(|e| e.to_string())?;
            if deltas > 0 {
                let deltas_out = args.require("deltas-out")?;
                let (jsonl, finished) = generate_delta_sequence(&table, deltas, seed)?;
                std::fs::write(deltas_out, jsonl)
                    .map_err(|e| format!("writing {deltas_out}: {e}"))?;
                if let Some(final_out) = args.get("final-out") {
                    let mut final_file = std::fs::File::create(final_out)
                        .map_err(|e| format!("creating {final_out}: {e}"))?;
                    csv::write_table(&mut final_file, &finished, true)
                        .map_err(|e| e.to_string())?;
                }
                return Ok(format!(
                    "wrote {rows} rows to {out}, {deltas} deltas to {deltas_out} (final: {} rows)",
                    finished.n_rows()
                ));
            }
        }
        "scale" => {
            // Stream chunk by chunk so --rows 10000000 never holds more
            // than one chunk (plus the write buffer) in memory.
            let chunk_rows = match chunk_rows_arg(args)? {
                0 => 65_536,
                n => n,
            };
            let mut writer = std::io::BufWriter::new(&mut file);
            let mut header = true;
            for chunk in ScaleGenerator::new(seed).chunks(rows, chunk_rows) {
                csv::write_table(&mut writer, &chunk, header).map_err(|e| e.to_string())?;
                header = false;
            }
            if header {
                // Zero rows: still emit the header line.
                let empty = Table::empty(ScaleGenerator::schema());
                csv::write_table(&mut writer, &empty, true).map_err(|e| e.to_string())?;
            }
        }
        other => return Err(format!("unknown profile `{other}` (adult|scale)")),
    }
    Ok(format!("wrote {rows} rows to {out}"))
}

fn write_spec(args: &Args) -> Result<String, String> {
    let out = args.require("out")?;
    let (spec, label) = match args.get("profile").unwrap_or("adult") {
        "adult" => (Spec::adult(), "Adult"),
        "scale" => (Spec::scale(), "scale"),
        other => return Err(format!("unknown profile `{other}` (adult|scale)")),
    };
    std::fs::write(out, spec.to_json().to_json_pretty())
        .map_err(|e| format!("writing {out}: {e}"))?;
    Ok(format!("wrote {label} spec to {out}"))
}

fn check(args: &Args) -> Result<CmdOutput, String> {
    // The default model keeps the original (chunkable, stage-classified)
    // p-sensitivity path byte-for-byte; other models go through the
    // whole-table oracle.
    let spec_model = model_arg(args, 2)?;
    if !matches!(spec_model, ModelSpec::PSensitiveK { .. }) {
        return check_model(args, spec_model);
    }
    let wall = Instant::now();
    let spec = load_spec(args)?;
    let chunk_rows = chunk_rows_arg(args)?;
    let threads = threads_arg(args)?;
    let k = args.get_u32("k", 2)?;
    let p = args.get_u32("p", 2)?;
    let verbose = args.get_flag("verbose");
    // Both paths produce identical output: the chunked merge reproduces the
    // serial group ids, so only memory and wall-clock differ.
    enum Input {
        Whole(Table),
        Chunked(ChunkedTable),
    }
    let input = if chunk_rows > 0 {
        Input::Chunked(load_chunked(args, &spec, chunk_rows)?)
    } else {
        Input::Whole(load_table(args, &spec)?)
    };
    let (n_rows, schema) = match &input {
        Input::Whole(t) => (t.n_rows(), t.schema()),
        Input::Chunked(c) => (c.n_rows(), c.schema()),
    };
    let keys = schema.key_indices();
    let conf = schema.confidential_indices();
    if verbose {
        eprintln!("[psens] checking {n_rows} row(s) against p = {p}, k = {k}");
    }
    let check_timer = Instant::now();
    let (report, maxk, maxp) = match &input {
        Input::Whole(t) => (
            check_p_sensitivity(t, &keys, &conf, p, k),
            max_k(t, &keys),
            max_p_of_masked(t, &keys, &conf),
        ),
        Input::Chunked(c) => (
            check_p_sensitivity_chunked(c, &keys, &conf, p, k, threads),
            max_k_chunked(c, &keys, threads),
            max_p_of_masked_chunked(c, &keys, &conf, threads),
        ),
    };
    let check_elapsed = check_timer.elapsed();
    // `check` evaluates exactly one "node": the table as released. Classify
    // the verdict by the first Algorithm 2 stage that fails so report
    // consumers see the same stage partition a lattice search produces.
    let stage = if !report.k_anonymous {
        CheckStage::KAnonymity
    } else if !report.violations.is_empty() {
        CheckStage::DetailedScan
    } else {
        CheckStage::Passed
    };
    let mut stats = SearchStats {
        lattice_nodes: 1,
        nodes_evaluated: 1,
        ..Default::default()
    };
    stats.record(stage);
    let observer = CliObserver::new(verbose);
    observer.node_checked(0, stage, 0, check_elapsed);
    let mut out = String::new();
    out.push_str(&format!(
        "rows: {n_rows} | QI-groups: {}\n",
        report.n_groups
    ));
    out.push_str(&format!(
        "k-anonymity (k = {k}): {} (max k = {maxk})\n",
        if report.k_anonymous {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    ));
    out.push_str(&format!(
        "p-sensitivity (p = {p}): {} (max p = {maxp})\n",
        if report.violations.is_empty() {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    ));
    for v in report.violations.iter().take(10) {
        out.push_str(&format!(
            "  group {} (size {}): {} has {} distinct value(s)\n",
            v.group, v.group_size, v.attribute_name, v.distinct
        ));
    }
    if report.violations.len() > 10 {
        out.push_str(&format!(
            "  ... and {} more violations\n",
            report.violations.len() - 10
        ));
    }
    out.push_str(&format!(
        "p-sensitive k-anonymity: {}\n",
        if report.satisfied() {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    ));
    if let Some(path) = args.get("report") {
        let run_report = RunReport {
            command: "check".into(),
            rows: n_rows,
            k,
            p,
            ts: None,
            satisfied: Some(report.satisfied()),
            node: None,
            search: Some(stats),
            telemetry: Some(observer.telemetry()),
            termination: None,
            wall_ns: wall.elapsed().as_nanos() as u64,
        };
        write_report(path, &run_report)?;
        out.push_str(&format!("wrote report to {path}\n"));
    }
    Ok(CmdOutput::verdict(out, report.satisfied()))
}

/// `check --model` for the non-default models: the whole-table oracle
/// ([`check_table_model`]) over the buffered (or re-materialized chunked)
/// input.
fn check_model(args: &Args, spec_model: ModelSpec) -> Result<CmdOutput, String> {
    let wall = Instant::now();
    let spec = load_spec(args)?;
    let chunk_rows = chunk_rows_arg(args)?;
    let k = args.get_u32("k", 2)?;
    let table = if chunk_rows > 0 {
        load_chunked(args, &spec, chunk_rows)?.to_table()
    } else {
        load_table(args, &spec)?
    };
    let keys = table.schema().key_indices();
    let conf = table.schema().confidential_indices();
    let model = spec_model.instantiate();
    let report = check_table_model(&table, &keys, &conf, model.as_ref(), k);
    let maxk = max_k(&table, &keys);
    let mut out = String::new();
    out.push_str(&format!(
        "rows: {} | QI-groups: {}\n",
        table.n_rows(),
        report.n_groups
    ));
    out.push_str(&format!(
        "k-anonymity (k = {k}): {} (max k = {maxk})\n",
        if report.k_anonymous {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    ));
    out.push_str(&format!(
        "{}: {} ({} violating group-attribute pair(s))\n",
        spec_model.describe(),
        if report.violating_pairs == 0 {
            "SATISFIED"
        } else {
            "VIOLATED"
        },
        report.violating_pairs
    ));
    if let Some(detail) = report.detail {
        out.push_str(&format!(
            "  extremal metric: {} = {}\n",
            detail.kind(),
            detail.value()
        ));
    }
    out.push_str(&format!(
        "verdict: {}\n",
        if report.satisfied() {
            "SATISFIED"
        } else {
            "VIOLATED"
        }
    ));
    if let Some(path) = args.get("report") {
        let run_report = RunReport {
            command: "check".into(),
            rows: table.n_rows(),
            k,
            p: spec_model.conditions_p(),
            ts: None,
            satisfied: Some(report.satisfied()),
            node: None,
            search: None,
            telemetry: None,
            termination: None,
            wall_ns: wall.elapsed().as_nanos() as u64,
        };
        write_report(path, &run_report)?;
        out.push_str(&format!("wrote report to {path}\n"));
    }
    Ok(CmdOutput::verdict(out, report.satisfied()))
}

fn analyze(args: &Args) -> Result<CmdOutput, String> {
    let wall = Instant::now();
    let spec = load_spec(args)?;
    let requested_p = match args.get("p") {
        Some(_) => Some(args.get_u32("p", 2)?),
        None => None,
    };
    let chunk_rows = chunk_rows_arg(args)?;
    let threads = threads_arg(args)?;
    // With --chunk-rows the ingest streams and the Condition 1/2 statistics
    // run chunk-parallel; the column profile and risk metrics still need
    // one materialized table (its columnar form, not the CSV text).
    let (table, stats) = if chunk_rows > 0 {
        let chunked = load_chunked(args, &spec, chunk_rows)?;
        let conf = chunked.schema().confidential_indices();
        let stats = ConfidentialStats::compute_chunked(&chunked, &conf, threads);
        (chunked.to_table(), stats)
    } else {
        let table = load_table(args, &spec)?;
        let conf = table.schema().confidential_indices();
        let stats = ConfidentialStats::compute(&table, &conf);
        (table, stats)
    };
    let keys = table.schema().key_indices();
    let conf = table.schema().confidential_indices();
    let mut out = String::new();
    out.push_str(&format!("rows: {}\n\ncolumn profile:\n", table.n_rows()));
    for summary in psens_microdata::describe(&table) {
        let range = match (summary.min, summary.max) {
            (Some(lo), Some(hi)) => format!(" range {lo}..{hi}"),
            _ => String::new(),
        };
        let top = summary
            .top
            .as_ref()
            .map(|(v, c)| format!(" top `{v}` x{c}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "  {:<14} {:<13} distinct {:>5}  missing {:>4}{}{}\n",
            summary.name, summary.role, summary.distinct, summary.missing, range, top
        ));
    }
    out.push_str("\nconfidential attributes:\n");
    for attr in &stats.per_attribute {
        let top: Vec<String> = attr
            .descending
            .iter()
            .take(5)
            .map(ToString::to_string)
            .collect();
        out.push_str(&format!(
            "  {} — {} distinct, top frequencies [{}]\n",
            attr.name,
            attr.s,
            top.join(", ")
        ));
    }
    out.push_str(&format!("\nCondition 1: maxP = {}\n", stats.max_p()));
    out.push_str("Condition 2: maxGroups by p:\n");
    for p in 2..=stats.max_p().min(8) as u32 {
        if let MaxGroups::Bounded(b) = stats.max_groups(p) {
            out.push_str(&format!("  p = {p}: at most {b} QI-groups\n"));
        }
    }
    let id_risk = identity_risk(&table, &keys);
    out.push_str(&format!(
        "\nidentity risk: max {:.4}, avg {:.4}, uniques {}\n",
        id_risk.max_risk, id_risk.avg_risk, id_risk.uniques
    ));
    let attr_risk = attribute_risk(&table, &keys, &conf);
    out.push_str(&format!(
        "attribute risk: {} disclosures across {} groups ({:.1}% of tuples affected)\n",
        attr_risk.disclosures,
        attr_risk.affected_groups,
        attr_risk.affected_fraction * 100.0
    ));
    // With `--p P`, apply Condition 1 up front: no masking of this microdata
    // can be p-sensitive for p > maxP, however far it generalizes.
    let satisfiable = requested_p.map(|p| (p as usize) <= stats.max_p());
    if let (Some(p), Some(ok)) = (requested_p, satisfiable) {
        out.push_str(&format!(
            "\nrequested p = {p}: {} (Condition 1: maxP = {})\n",
            if ok { "SATISFIABLE" } else { "UNSATISFIABLE" },
            stats.max_p()
        ));
    }
    if let Some(path) = args.get("report") {
        let run_report = RunReport {
            command: "analyze".into(),
            rows: table.n_rows(),
            k: 0,
            p: requested_p.unwrap_or(0),
            ts: None,
            satisfied: satisfiable,
            node: None,
            search: None,
            telemetry: None,
            termination: None,
            wall_ns: wall.elapsed().as_nanos() as u64,
        };
        write_report(path, &run_report)?;
        out.push_str(&format!("wrote report to {path}\n"));
    }
    Ok(CmdOutput::verdict(out, satisfiable.unwrap_or(true)))
}

fn anonymize(args: &Args) -> Result<CmdOutput, String> {
    let wall = Instant::now();
    // Budget first: the deadline clock starts before the input is read.
    let limits = BudgetSpec::from_args(args)?;
    let spec = load_spec(args)?;
    let chunk_rows = chunk_rows_arg(args)?;
    // Chunked ingest streams the CSV text; the search itself then works on
    // the compact columnar table, with the evaluator's partition kernel
    // running chunk-parallel when --chunk-rows is set.
    let table = if chunk_rows > 0 {
        load_chunked(args, &spec, chunk_rows)?.to_table()
    } else {
        load_table(args, &spec)?
    };
    let out_path = args.require("out")?;
    let k = args.get_u32("k", 2)?;
    let spec_model = model_arg(args, 1)?;
    let p = spec_model.conditions_p();
    let ts = args.get_usize("ts", 0)?;
    let algorithm = args.get("algorithm").unwrap_or("samarati");
    // Default to the machine's parallelism; `--threads 1` forces the serial
    // (bit-identical-stats) code path.
    let threads = threads_arg(args)?;
    let use_cache = !args.get_flag("no-cache");
    let observer = CliObserver::new(args.get_flag("verbose"));
    let mut out = String::new();
    let mut winner: Option<String> = None;
    let mut search_stats: Option<SearchStats> = None;
    let mut proven_min_height: Option<usize> = None;
    let termination: Termination;
    let satisfied: bool;
    // `None` when the run produced nothing worth releasing: no feasible node
    // (samarati) or a cover that fails the property (mondrian).
    let masked: Option<Table> = match algorithm {
        "samarati" => {
            let qi = spec.qi_space()?;
            let lattice = qi.lattice();
            // One run cannot revisit nodes, but the store still earns its
            // keep within it: monotonicity closure answers probes above a
            // pass / below a k-failure without running the kernel. Store
            // presence is `--no-cache`'s call alone; whether closure runs
            // is the model's — a non-monotone model gets a closure-free
            // store, it does not silently lose caching twice over.
            let store =
                use_cache.then(|| VerdictStore::for_model(&lattice, ts, spec_model.is_monotone()));
            let tuning = Tuning {
                threads,
                cache: store.as_ref(),
                chunk_rows,
            };
            let outcome = pk_minimal_generalization_model(
                &table,
                &qi,
                spec_model,
                k,
                ts,
                Pruning::NecessaryConditions,
                &limits.budget,
                tuning,
                &observer,
            )
            .map_err(|e| e.to_string())?;
            search_stats = Some(outcome.stats.clone());
            proven_min_height = Some(outcome.proven_min_height);
            termination = outcome.termination;
            match outcome.node {
                Some(node) => {
                    let levels: Vec<String> =
                        node.levels().iter().map(ToString::to_string).collect();
                    winner = Some(qi.describe_node(&node));
                    let label = if termination.is_complete() {
                        "p-k-minimal node"
                    } else {
                        "best feasible node so far (search interrupted)"
                    };
                    out.push_str(&format!(
                        "{label}: {} (height {}), suppressed {} tuple(s)\n\
                         node levels (for `psens attack --node`): {}\n",
                        qi.describe_node(&node),
                        node.height(),
                        outcome.suppressed,
                        levels.join(",")
                    ));
                    satisfied = true;
                    Some(outcome.masked.expect("masked accompanies node"))
                }
                None => {
                    satisfied = false;
                    if termination.is_complete() {
                        out.push_str(&format!(
                            "no masking satisfies {} with k = {k}, TS = {ts}\n",
                            spec_model.describe()
                        ));
                    } else {
                        out.push_str(&format!(
                            "search interrupted ({termination}) before any feasible node was \
                             found; heights below {} are proven infeasible\n",
                            outcome.proven_min_height
                        ));
                    }
                    None
                }
            }
        }
        "mondrian" => {
            if !matches!(spec_model, ModelSpec::PSensitiveK { .. }) {
                return Err("--algorithm mondrian supports --model psens-k only".to_owned());
            }
            let outcome = mondrian_anonymize_budgeted(
                &table,
                MondrianConfig { k, p },
                &limits.budget,
                &observer,
            )
            .map_err(|e| e.to_string())?;
            termination = outcome.termination;
            let keys = outcome.masked.schema().key_indices();
            let conf = outcome.masked.schema().confidential_indices();
            satisfied = psens_core::is_p_sensitive_k_anonymous(&outcome.masked, &keys, &conf, p, k);
            out.push_str(&format!(
                "mondrian: {} partitions after {} splits{}\n",
                outcome.partitions.len(),
                outcome.splits,
                if termination.is_complete() {
                    ""
                } else {
                    " (interrupted: coarser than a full run)"
                }
            ));
            if satisfied {
                Some(outcome.masked)
            } else {
                out.push_str(&format!(
                    "mondrian could not satisfy p = {p}, k = {k} (input too small or too uniform)\n"
                ));
                None
            }
        }
        "pram" => {
            let qi = spec.qi_space()?;
            let config = PramBackendConfig {
                seed: args.get_u64("seed", 42)?,
                ..PramBackendConfig::default()
            };
            let outcome = pram_minimal_masking(&table, &qi, spec_model, k, ts, config)
                .map_err(|e| e.to_string())?;
            termination = Termination::Completed;
            satisfied = outcome.satisfied;
            match outcome.node {
                Some(node) => {
                    winner = Some(qi.describe_node(&node));
                    out.push_str(&format!(
                        "pram: k-minimal node {} (height {}), suppressed {} tuple(s), \
                         {} sweep(s), {} perturbed cell(s)\n",
                        qi.describe_node(&node),
                        node.height(),
                        outcome.suppressed,
                        outcome.sweeps,
                        outcome.perturbed_cells
                    ));
                    if satisfied {
                        outcome.masked
                    } else {
                        out.push_str(&format!(
                            "pram could not repair {} within the sweep cap\n",
                            spec_model.describe()
                        ));
                        None
                    }
                }
                None => {
                    out.push_str(&format!(
                        "no k-minimal masking exists for k = {k} with TS = {ts}\n"
                    ));
                    None
                }
            }
        }
        other => return Err(format!("unknown algorithm `{other}`")),
    };
    if let Some(masked) = &masked {
        let mut file =
            std::fs::File::create(out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
        csv::write_table(&mut file, masked, true).map_err(|e| e.to_string())?;
        out.push_str(&format!("wrote {} rows to {out_path}\n", masked.n_rows()));
    }
    if !termination.is_complete() {
        out.push_str(&format!(
            "search interrupted: {termination} (results above are best-so-far, not proven minimal)\n"
        ));
    }
    if let Some(path) = args.get("report") {
        let run_report = RunReport {
            command: "anonymize".into(),
            rows: table.n_rows(),
            k,
            p,
            ts: Some(ts),
            satisfied: Some(satisfied),
            node: winner,
            search: search_stats,
            telemetry: Some(observer.telemetry()),
            termination: Some(limits.report(termination, proven_min_height)),
            wall_ns: wall.elapsed().as_nanos() as u64,
        };
        write_report(path, &run_report)?;
        out.push_str(&format!("wrote report to {path}\n"));
    }
    let code = if !termination.is_complete() {
        EXIT_INTERRUPTED
    } else if !satisfied {
        EXIT_VIOLATION
    } else {
        0
    };
    Ok(CmdOutput { text: out, code })
}

fn query(args: &Args) -> Result<String, String> {
    let chunk_rows = chunk_rows_arg(args)?;
    // With a spec the CSV is read against its schema (roles included);
    // without one, kinds are inferred and all roles default to `other`.
    // Inference needs the whole file, so chunked ingest requires a spec.
    let table = match (args.get("spec"), chunk_rows) {
        (Some(_), n) if n > 0 => {
            let spec = load_spec(args)?;
            load_chunked(args, &spec, n)?.to_table()
        }
        (None, n) if n > 0 => {
            return Err("--chunk-rows needs --spec (schema inference buffers the file)".to_owned())
        }
        (Some(_), _) => {
            let spec = load_spec(args)?;
            load_table(args, &spec)?
        }
        (None, _) => {
            let path = args.require("input")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            csv::read_table_infer(&text).map_err(|e| e.to_string())?
        }
    };
    let sql = args.require("sql")?;
    let mut catalog = psens_sql::Catalog::new();
    catalog.register("data", &table);
    let result = psens_sql::execute(&catalog, sql).map_err(|e| e.to_string())?;
    Ok(psens_microdata::render(&result, 100))
}

/// `psens client`: one request against a running psens-server, result
/// printed as JSON. Exit codes mirror the offline commands so scripts can
/// treat local and remote verdicts identically: 2 for a negative verdict,
/// 3 for an interrupted search.
fn client(args: &Args) -> Result<CmdOutput, String> {
    let addr_text = match (args.get("addr"), args.get("addr-file")) {
        (Some(addr), _) => addr.to_owned(),
        (None, Some(path)) => std::fs::read_to_string(path)
            .map_err(|e| format!("reading {path}: {e}"))?
            .trim()
            .to_owned(),
        (None, None) => return Err("one of --addr or --addr-file is required".to_owned()),
    };
    let addr = std::net::ToSocketAddrs::to_socket_addrs(&addr_text)
        .map_err(|e| format!("resolving {addr_text}: {e}"))?
        .next()
        .ok_or_else(|| format!("no address for {addr_text}"))?;
    let op = args.require("op")?;
    let mut params = JsonValue::object();
    match op {
        "register" => {
            params.set("name", JsonValue::Str(args.require("name")?.to_owned()));
            let input = args.require("input")?;
            let text =
                std::fs::read_to_string(input).map_err(|e| format!("reading {input}: {e}"))?;
            params.set("csv", JsonValue::Str(text));
            params.set("spec", load_spec(args)?.to_json());
        }
        "check" | "analyze" | "anonymize" | "query" | "watch" => {
            params.set(
                "dataset",
                JsonValue::Str(args.require("dataset")?.to_owned()),
            );
            if let Some(model) = args.get("model") {
                params.set("model", JsonValue::Str(model.to_owned()));
            }
            for key in [
                "p",
                "l",
                "t-ppm",
                "k",
                "ts",
                "threads",
                "timeout-ms",
                "max-nodes",
            ] {
                if args.get(key).is_some() {
                    let value = args.get_u64(key, 0)?;
                    params.set(key.replace('-', "_"), JsonValue::Int(value as i64));
                }
            }
            if args.get_flag("no-cache") {
                params.set("no_cache", JsonValue::Bool(true));
            }
            if let Some(sql) = args.get("sql") {
                params.set("sql", JsonValue::Str(sql.to_owned()));
            }
        }
        "update" => {
            params.set(
                "dataset",
                JsonValue::Str(args.require("dataset")?.to_owned()),
            );
            let delta_text = match (args.get("delta"), args.get("delta-file")) {
                (Some(delta), _) => delta.to_owned(),
                (None, Some(path)) => {
                    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
                }
                (None, None) => {
                    return Err("update needs --delta JSON or --delta-file PATH".to_owned())
                }
            };
            let delta = JsonValue::parse(&delta_text)
                .map_err(|e| format!("delta is not valid JSON: {e}"))?;
            // Copy only the batch fields: delta lines from `generate
            // --deltas` carry a `dataset` key of their own which the
            // --dataset flag overrides.
            for key in ["appends", "deletes"] {
                if let Some(value) = delta.get(key) {
                    params.set(key, value.clone());
                }
            }
        }
        "inject" => {
            if args.get_flag("clear") {
                params.set("clear", JsonValue::Bool(true));
            } else {
                let plan_text = match (args.get("plan"), args.get("plan-file")) {
                    (Some(plan), _) => plan.to_owned(),
                    (None, Some(path)) => {
                        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
                    }
                    (None, None) => {
                        return Err(
                            "inject needs --plan JSON, --plan-file PATH, or --clear".to_owned()
                        )
                    }
                };
                let plan = JsonValue::parse(&plan_text)
                    .map_err(|e| format!("fault plan is not valid JSON: {e}"))?;
                params.set("plan", plan);
            }
        }
        "stats" | "health" | "shutdown" | "sleep" => {}
        other => return Err(format!("unknown op `{other}`")),
    }
    let mut client = psens_server::Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let retries = args.get_u64("retries", 0)? as u32;
    let result = if retries > 0 {
        let policy = psens_server::RetryPolicy {
            max_retries: retries,
            base_delay_ms: args.get_u64("retry-base-ms", 20)?,
            max_delay_ms: args.get_u64("retry-max-ms", 2_000)?,
            seed: args.get_u64("seed", 1)?,
        };
        let mut stats = psens_server::RetryStats::default();
        client.call_retry(op, params, &policy, &mut stats)?
    } else {
        client.call_ok(op, params)?
    };
    // Map the remote verdict onto the offline exit-code contract.
    let satisfied = result
        .get("satisfied")
        .or_else(|| result.get("verdict").and_then(|v| v.get("satisfied")))
        .and_then(|v| v.as_bool().ok());
    let termination = result
        .get("verdict")
        .and_then(|v| v.get("termination"))
        .and_then(|v| v.as_str().ok());
    let code = match (termination, satisfied) {
        (Some(t), _) if t != "completed" => EXIT_INTERRUPTED,
        (_, Some(false)) => EXIT_VIOLATION,
        _ => 0,
    };
    Ok(CmdOutput {
        text: format!("{}\n", result.to_json_pretty()),
        code,
    })
}

fn attack(args: &Args) -> Result<String, String> {
    use psens_core::attack::linkage_attack;
    use psens_hierarchy::Node;
    use psens_microdata::{Attribute, Kind, Role, Schema};

    let spec = load_spec(args)?;
    let qi = spec.qi_space()?;
    let node_text = args.require("node")?;
    let levels: Vec<u8> = node_text
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<u8>()
                .map_err(|_| format!("bad node component `{part}`"))
        })
        .collect::<Result<_, _>>()?;
    let node = Node(levels);
    if !qi.lattice().contains(&node) {
        return Err(format!(
            "node {node} is outside the {}-attribute lattice",
            qi.len()
        ));
    }

    // The masked release's schema: spec attributes minus identifiers, with
    // key attributes generalized above level 0 recoded as categorical.
    let spec_schema = spec.schema().map_err(|e| e.to_string())?;
    let mut masked_attrs = Vec::new();
    for attr in spec_schema.attributes() {
        if attr.role() == Role::Identifier {
            continue;
        }
        let kind = match qi.names().iter().position(|n| *n == attr.name()) {
            Some(pos) if node.levels()[pos] > 0 => Kind::Cat,
            _ => attr.kind(),
        };
        masked_attrs.push(Attribute::new(attr.name(), kind, attr.role()));
    }
    let masked_schema = Schema::new(masked_attrs).map_err(|e| e.to_string())?;
    let masked_path = args.require("masked")?;
    let masked_text =
        std::fs::read_to_string(masked_path).map_err(|e| format!("reading {masked_path}: {e}"))?;
    let masked =
        csv::read_table_str(&masked_text, masked_schema, true).map_err(|e| e.to_string())?;

    // The intruder's external knowledge uses the raw spec schema.
    let external_path = args.require("external")?;
    let external_text = std::fs::read_to_string(external_path)
        .map_err(|e| format!("reading {external_path}: {e}"))?;
    let external =
        csv::read_table_str(&external_text, spec_schema, true).map_err(|e| e.to_string())?;

    let identifier = args.require("identifier")?;
    let findings =
        linkage_attack(&masked, &qi, &node, &external, identifier).map_err(|e| e.to_string())?;

    let mut out = String::new();
    let mut reidentified = 0usize;
    let mut leaked = 0usize;
    for f in &findings {
        reidentified += usize::from(f.identity_disclosed);
        leaked += usize::from(!f.learned.is_empty());
        if f.identity_disclosed || !f.learned.is_empty() {
            let learned: Vec<String> = f
                .learned
                .iter()
                .map(|(a, v)| format!("{a} = {v}"))
                .collect();
            out.push_str(&format!(
                "  {} -> {}{}\n",
                f.individual,
                if f.identity_disclosed {
                    "RE-IDENTIFIED"
                } else {
                    "linked to group"
                },
                if learned.is_empty() {
                    String::new()
                } else {
                    format!("; learns {}", learned.join(", "))
                }
            ));
        }
    }
    out.push_str(&format!(
        "{} of {} individuals linked; {reidentified} re-identified; \
         {leaked} suffer attribute disclosure\n",
        findings.len(),
        external.n_rows()
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_full(line: &[&str]) -> Result<CmdOutput, String> {
        let args = Args::parse(line.iter().map(|s| s.to_string()))?;
        run(&args)
    }

    fn run_line(line: &[&str]) -> Result<String, String> {
        run_full(line).map(|output| output.text)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("psens_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// A two-column spec (Sex key, Disease confidential) and a four-row CSV
    /// that is 2-sensitive 2-anonymous but not 3-anonymous.
    fn tiny_dataset() -> (std::path::PathBuf, std::path::PathBuf) {
        let spec = temp_path("tiny_spec.json");
        let data = temp_path("tiny_data.csv");
        std::fs::write(
            &spec,
            r#"{"attributes": [
                {"name": "Sex", "kind": "cat", "role": "key"},
                {"name": "Disease", "kind": "cat", "role": "confidential"}
            ]}"#,
        )
        .unwrap();
        std::fs::write(&data, "Sex,Disease\nM,Flu\nM,Cold\nF,Flu\nF,Cold\n").unwrap();
        (spec, data)
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run_line(&["help"]).unwrap().contains("USAGE"));
        assert!(run_line(&[]).unwrap().contains("USAGE"));
        assert!(run_line(&["frobnicate"]).is_err());
    }

    #[test]
    fn end_to_end_generate_check_anonymize() {
        let data = temp_path("data.csv");
        let spec = temp_path("spec.json");
        let masked = temp_path("masked.csv");
        let data_s = data.to_str().unwrap();
        let spec_s = spec.to_str().unwrap();
        let masked_s = masked.to_str().unwrap();

        let msg = run_line(&["generate", "--rows", "300", "--seed", "7", "--out", data_s]).unwrap();
        assert!(msg.contains("300 rows"));
        run_line(&["spec", "--out", spec_s]).unwrap();

        let report = run_line(&[
            "check", "--spec", spec_s, "--input", data_s, "--k", "2", "--p", "2",
        ])
        .unwrap();
        assert!(report.contains("k-anonymity"));
        assert!(report.contains("VIOLATED"), "raw data is not anonymous");

        let analysis = run_line(&["analyze", "--spec", spec_s, "--input", data_s]).unwrap();
        assert!(analysis.contains("Condition 1"));
        assert!(analysis.contains("identity risk"));

        let result = run_line(&[
            "anonymize",
            "--spec",
            spec_s,
            "--input",
            data_s,
            "--out",
            masked_s,
            "--k",
            "2",
            "--p",
            "2",
            "--ts",
            "10",
        ])
        .unwrap();
        assert!(result.contains("p-k-minimal node"));

        // The released file must pass its own check. Its schema differs from
        // the spec (key columns became categorical labels), so verify via a
        // fresh parse with inferred roles is out of scope here — instead,
        // confirm the CSV exists and is non-trivial.
        let released = std::fs::read_to_string(&masked).unwrap();
        assert!(released.lines().count() > 100);
        assert!(released.starts_with("Age,MaritalStatus"));
    }

    #[test]
    fn every_model_checks_and_anonymizes_adult() {
        let data = temp_path("modeldata.csv");
        let spec = temp_path("modelspec.json");
        let data_s = data.to_str().unwrap();
        let spec_s = spec.to_str().unwrap();
        run_line(&["generate", "--rows", "300", "--seed", "7", "--out", data_s]).unwrap();
        run_line(&["spec", "--out", spec_s]).unwrap();
        // entropy-l uses l = 1: Adult's confidential skew (capital gain 90%
        // zero, pay 3:1) keeps every group's entropy below ln 2 even fully
        // generalized, so l = 2 is unsatisfiable on this data by Condition 1's
        // entropy analogue — not a search defect.
        for (model, flag, value) in [
            ("psens-k", "--p", "2"),
            ("distinct-l", "--l", "2"),
            ("entropy-l", "--l", "1"),
            ("t-closeness", "--t", "0.5"),
        ] {
            let checked = run_full(&[
                "check", "--spec", spec_s, "--input", data_s, "--k", "2", "--model", model, flag,
                value,
            ])
            .unwrap();
            assert_eq!(checked.code, EXIT_VIOLATION, "raw data: {}", checked.text);
            let masked = temp_path(&format!("modelmasked_{model}.csv"));
            let masked_s = masked.to_str().unwrap();
            let result = run_full(&[
                "anonymize",
                "--spec",
                spec_s,
                "--input",
                data_s,
                "--out",
                masked_s,
                "--k",
                "2",
                "--ts",
                "10",
                "--model",
                model,
                flag,
                value,
            ])
            .unwrap();
            assert_eq!(result.code, 0, "model {model}: {}", result.text);
            assert!(
                std::fs::read_to_string(&masked).unwrap().lines().count() > 100,
                "model {model} released too few rows"
            );
        }
        // Unknown model names are an operational error, not a verdict.
        assert!(
            run_full(&["check", "--spec", spec_s, "--input", data_s, "--model", "k-map",]).is_err()
        );
    }

    #[test]
    fn pram_algorithm_repairs_without_generalizing() {
        let spec = temp_path("pramspec.json");
        let data = temp_path("pramdata.csv");
        let masked = temp_path("prammasked.csv");
        std::fs::write(
            &spec,
            r#"{"attributes": [
                {"name": "Sex", "kind": "cat", "role": "key"},
                {"name": "Disease", "kind": "cat", "role": "confidential"}
            ],
            "hierarchies": {
                "Sex": {"type": "cat", "ground": ["M", "F"],
                        "levels": [{"labels": ["*"], "of_ground": [0, 0]}]}
            }}"#,
        )
        .unwrap();
        // The (M) group is homogeneous: psens-k p=2 fails at the identity
        // node, and PRAM must repair it in place rather than generalize.
        std::fs::write(
            &data,
            "Sex,Disease\nM,Flu\nM,Flu\nM,Flu\nF,Flu\nF,Cold\nF,Cold\n",
        )
        .unwrap();
        let out = run_full(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "2",
            "--algorithm",
            "pram",
            "--seed",
            "5",
        ])
        .unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        assert!(out.text.contains("pram: k-minimal node"), "{}", out.text);
        let released = std::fs::read_to_string(&masked).unwrap();
        assert_eq!(released.lines().count(), 7, "header + 6 rows, none lost");
        // Mondrian rejects non-default models up front.
        assert!(run_full(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--model",
            "entropy-l",
            "--algorithm",
            "mondrian",
        ])
        .is_err());
    }

    #[test]
    fn mondrian_path() {
        let data = temp_path("mdata.csv");
        let spec = temp_path("mspec.json");
        let masked = temp_path("mmasked.csv");
        run_line(&[
            "generate",
            "--rows",
            "400",
            "--seed",
            "9",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        let result = run_line(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "3",
            "--p",
            "2",
            "--algorithm",
            "mondrian",
        ])
        .unwrap();
        assert!(result.contains("partitions"));
    }

    #[test]
    fn attack_workflow_on_k_only_release() {
        let data = temp_path("adata.csv");
        let spec = temp_path("aspec.json");
        let masked = temp_path("amasked.csv");
        run_line(&[
            "generate",
            "--rows",
            "400",
            "--seed",
            "21",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        // k-anonymity only (p = 1): attribute disclosures expected.
        let result = run_line(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "1",
            "--ts",
            "0",
        ])
        .unwrap();
        let node_line = result
            .lines()
            .find(|l| l.contains("node levels"))
            .expect("anonymize prints node levels");
        let node = node_line.rsplit(' ').next().unwrap();

        let attack = run_line(&[
            "attack",
            "--spec",
            spec.to_str().unwrap(),
            "--masked",
            masked.to_str().unwrap(),
            "--external",
            data.to_str().unwrap(),
            "--node",
            node,
            "--identifier",
            "Id",
        ])
        .unwrap();
        assert!(attack.contains("individuals linked"), "{attack}");
        assert!(attack.contains("0 re-identified"), "{attack}");
        assert!(
            !attack.contains("; 0 suffer attribute disclosure"),
            "a k-only release should leak: {attack}"
        );

        // Bad node strings are rejected.
        assert!(run_line(&[
            "attack",
            "--spec",
            spec.to_str().unwrap(),
            "--masked",
            masked.to_str().unwrap(),
            "--external",
            data.to_str().unwrap(),
            "--node",
            "9,9,9,9",
            "--identifier",
            "Id",
        ])
        .is_err());
    }

    #[test]
    fn query_subcommand_runs_sql() {
        let data = temp_path("qdata.csv");
        run_line(&[
            "generate",
            "--rows",
            "120",
            "--seed",
            "33",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        // Schema inference path.
        let out = run_line(&[
            "query",
            "--input",
            data.to_str().unwrap(),
            "--sql",
            "SELECT Sex, COUNT(*) FROM data GROUP BY Sex ORDER BY 2 DESC",
        ])
        .unwrap();
        assert!(out.contains("COUNT(*)"), "{out}");
        assert!(out.contains("Male"));
        // Spec-schema path.
        let spec = temp_path("qspec.json");
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        let out = run_line(&[
            "query",
            "--input",
            data.to_str().unwrap(),
            "--spec",
            spec.to_str().unwrap(),
            "--sql",
            "SELECT MAX(Age) FROM data",
        ])
        .unwrap();
        assert!(out.contains("MAX(Age)"));
        // SQL errors surface.
        assert!(run_line(&[
            "query",
            "--input",
            data.to_str().unwrap(),
            "--sql",
            "SELECT FROM",
        ])
        .is_err());
    }

    #[test]
    fn check_exit_codes_follow_the_verdict() {
        let (spec, data) = tiny_dataset();
        let spec_s = spec.to_str().unwrap();
        let data_s = data.to_str().unwrap();
        // Each (Sex) group has 2 rows and 2 distinct diseases: satisfied.
        let ok = run_full(&[
            "check", "--spec", spec_s, "--input", data_s, "--k", "2", "--p", "2",
        ])
        .unwrap();
        assert_eq!(ok.code, 0, "{}", ok.text);
        assert!(ok.text.contains("SATISFIED"));
        // k = 3 fails: VIOLATED must exit with the verdict code, not 0.
        let bad = run_full(&[
            "check", "--spec", spec_s, "--input", data_s, "--k", "3", "--p", "2",
        ])
        .unwrap();
        assert_eq!(bad.code, EXIT_VIOLATION, "{}", bad.text);
        assert!(bad.text.contains("VIOLATED"));
    }

    #[test]
    fn check_report_stage_counts_sum_to_search_totals() {
        use psens_microdata::JsonValue;
        let (spec, data) = tiny_dataset();
        let report = temp_path("tiny_report.json");
        let out = run_full(&[
            "check",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "2",
            "--report",
            report.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.text.contains("wrote report to"));
        let parsed = JsonValue::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(
            parsed.require("command").unwrap().as_str().unwrap(),
            "check"
        );
        assert_eq!(parsed.require("rows").unwrap().as_u64().unwrap(), 4);
        assert!(parsed.require("satisfied").unwrap().as_bool().unwrap());
        // The per-stage node counts partition the evaluated-node total, and
        // the telemetry sees the same number of checks.
        let search = parsed.require("search").unwrap();
        let stage_sum: u64 = [
            "rejected_condition1",
            "rejected_condition2",
            "rejected_k",
            "rejected_detailed",
            "nodes_passed",
        ]
        .iter()
        .map(|key| search.require(key).unwrap().as_u64().unwrap())
        .sum();
        let evaluated = search.require("nodes_evaluated").unwrap().as_u64().unwrap();
        assert_eq!(stage_sum, evaluated);
        let telemetry = parsed.require("telemetry").unwrap();
        assert_eq!(
            telemetry
                .require("nodes_checked")
                .unwrap()
                .as_u64()
                .unwrap(),
            evaluated
        );
        let stage_ns: u64 = telemetry
            .require("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.require("ns").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(
            stage_ns,
            telemetry.require("check_ns").unwrap().as_u64().unwrap()
        );
    }

    #[test]
    fn analyze_exits_with_verdict_code_on_unsatisfiable_p() {
        let (spec, data) = tiny_dataset();
        let spec_s = spec.to_str().unwrap();
        let data_s = data.to_str().unwrap();
        // Disease has 2 distinct values, so maxP = 2: p = 5 is hopeless.
        let bad = run_full(&["analyze", "--spec", spec_s, "--input", data_s, "--p", "5"]).unwrap();
        assert_eq!(bad.code, EXIT_VIOLATION, "{}", bad.text);
        assert!(bad.text.contains("UNSATISFIABLE"));
        let ok = run_full(&["analyze", "--spec", spec_s, "--input", data_s, "--p", "2"]).unwrap();
        assert_eq!(ok.code, 0, "{}", ok.text);
        assert!(ok.text.contains("SATISFIABLE"));
        // Without --p there is no verdict and the exit code stays 0.
        let neutral = run_full(&["analyze", "--spec", spec_s, "--input", data_s]).unwrap();
        assert_eq!(neutral.code, 0);
    }

    #[test]
    fn anonymize_report_carries_search_stats() {
        use psens_microdata::JsonValue;
        let data = temp_path("rdata.csv");
        let spec = temp_path("rspec.json");
        let masked = temp_path("rmasked.csv");
        let report = temp_path("rreport.json");
        run_line(&[
            "generate",
            "--rows",
            "300",
            "--seed",
            "11",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        let out = run_full(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "2",
            "--ts",
            "10",
            "--report",
            report.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(out.code, 0);
        let parsed = JsonValue::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(
            parsed.require("command").unwrap().as_str().unwrap(),
            "anonymize"
        );
        assert!(parsed.require("satisfied").unwrap().as_bool().unwrap());
        assert!(parsed.require("node").unwrap().as_str().is_ok());
        let search = parsed.require("search").unwrap();
        assert!(search.require("nodes_evaluated").unwrap().as_u64().unwrap() > 0);
        let telemetry = parsed.require("telemetry").unwrap();
        // The samarati search checks nodes through the observed evaluator,
        // so telemetry and SearchStats agree on the total.
        assert_eq!(
            telemetry
                .require("nodes_checked")
                .unwrap()
                .as_u64()
                .unwrap(),
            search.require("nodes_evaluated").unwrap().as_u64().unwrap()
        );
        assert!(!telemetry
            .require("heights_entered")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
    }

    #[test]
    fn chunked_check_is_byte_identical_to_buffered() {
        let data = temp_path("chdata.csv");
        let spec = temp_path("chspec.json");
        let data_s = data.to_str().unwrap();
        let spec_s = spec.to_str().unwrap();
        run_line(&["generate", "--rows", "400", "--seed", "19", "--out", data_s]).unwrap();
        run_line(&["spec", "--out", spec_s]).unwrap();
        let buffered = run_full(&[
            "check", "--spec", spec_s, "--input", data_s, "--k", "2", "--p", "2",
        ])
        .unwrap();
        for chunk_rows in ["1", "7", "100", "4096"] {
            for threads in ["1", "8"] {
                let chunked = run_full(&[
                    "check",
                    "--spec",
                    spec_s,
                    "--input",
                    data_s,
                    "--k",
                    "2",
                    "--p",
                    "2",
                    "--chunk-rows",
                    chunk_rows,
                    "--threads",
                    threads,
                ])
                .unwrap();
                assert_eq!(
                    chunked.text, buffered.text,
                    "chunk_rows={chunk_rows} threads={threads}"
                );
                assert_eq!(chunked.code, buffered.code);
            }
        }
    }

    #[test]
    fn chunked_anonymize_matches_buffered_release() {
        let data = temp_path("cadata.csv");
        let spec = temp_path("caspec.json");
        let data_s = data.to_str().unwrap();
        let spec_s = spec.to_str().unwrap();
        run_line(&["generate", "--rows", "300", "--seed", "23", "--out", data_s]).unwrap();
        run_line(&["spec", "--out", spec_s]).unwrap();
        let masked_a = temp_path("camasked_a.csv");
        let masked_b = temp_path("camasked_b.csv");
        let buffered = run_full(&[
            "anonymize",
            "--spec",
            spec_s,
            "--input",
            data_s,
            "--out",
            masked_a.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "2",
            "--ts",
            "10",
        ])
        .unwrap();
        let chunked = run_full(&[
            "anonymize",
            "--spec",
            spec_s,
            "--input",
            data_s,
            "--out",
            masked_b.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "2",
            "--ts",
            "10",
            "--chunk-rows",
            "64",
            "--threads",
            "2",
        ])
        .unwrap();
        assert_eq!(buffered.code, 0, "{}", buffered.text);
        assert_eq!(chunked.code, 0, "{}", chunked.text);
        // The winning node and the released file agree; only the output
        // paths differ in the report text.
        assert_eq!(
            buffered.text.lines().next(),
            chunked.text.lines().next(),
            "same p-k-minimal node"
        );
        assert_eq!(
            std::fs::read_to_string(&masked_a).unwrap(),
            std::fs::read_to_string(&masked_b).unwrap()
        );
    }

    #[test]
    fn scale_profile_streams_and_checks() {
        let data = temp_path("sdata.csv");
        let spec = temp_path("sspec.json");
        let data_s = data.to_str().unwrap();
        let spec_s = spec.to_str().unwrap();
        let msg = run_line(&[
            "generate",
            "--profile",
            "scale",
            "--rows",
            "500",
            "--seed",
            "7",
            "--out",
            data_s,
            "--chunk-rows",
            "128",
        ])
        .unwrap();
        assert!(msg.contains("500 rows"));
        let text = std::fs::read_to_string(&data).unwrap();
        assert!(text.starts_with("Age,MaritalStatus,Race,Sex,Pay"));
        assert_eq!(text.lines().count(), 501, "header + 500 rows");
        // The streamed file equals the one-shot generator output.
        let mut expect = Vec::new();
        csv::write_table(
            &mut expect,
            &psens_datasets::ScaleGenerator::new(7).generate(500),
            true,
        )
        .unwrap();
        assert_eq!(text.as_bytes(), expect);
        // The matching spec drives the usual pipeline.
        run_line(&["spec", "--profile", "scale", "--out", spec_s]).unwrap();
        let report = run_full(&[
            "check",
            "--spec",
            spec_s,
            "--input",
            data_s,
            "--k",
            "1",
            "--p",
            "1",
            "--chunk-rows",
            "100",
        ])
        .unwrap();
        assert!(report.text.contains("rows: 500"), "{}", report.text);
    }

    #[test]
    fn zero_row_scale_generate_still_writes_a_header() {
        let data = temp_path("zdata.csv");
        run_line(&[
            "generate",
            "--profile",
            "scale",
            "--rows",
            "0",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        let text = std::fs::read_to_string(&data).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("Age,"));
    }

    #[test]
    fn unknown_profile_is_rejected() {
        let out = temp_path("pdata.csv");
        let err = run_line(&[
            "generate",
            "--profile",
            "census",
            "--rows",
            "10",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("census"));
        let err = run_line(&[
            "spec",
            "--profile",
            "census",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap_err();
        assert!(err.contains("census"));
    }

    #[test]
    fn query_chunked_ingest_requires_a_spec() {
        let data = temp_path("qcdata.csv");
        let data_s = data.to_str().unwrap();
        run_line(&["generate", "--rows", "50", "--seed", "3", "--out", data_s]).unwrap();
        let err = run_line(&[
            "query",
            "--input",
            data_s,
            "--sql",
            "SELECT COUNT(*) FROM data",
            "--chunk-rows",
            "16",
        ])
        .unwrap_err();
        assert!(err.contains("--spec"), "{err}");
        // With a spec the chunked and buffered answers agree.
        let spec = temp_path("qcspec.json");
        let spec_s = spec.to_str().unwrap();
        run_line(&["spec", "--out", spec_s]).unwrap();
        let buffered = run_line(&[
            "query",
            "--input",
            data_s,
            "--spec",
            spec_s,
            "--sql",
            "SELECT Sex, COUNT(*) FROM data GROUP BY Sex ORDER BY 2 DESC",
        ])
        .unwrap();
        let chunked = run_line(&[
            "query",
            "--input",
            data_s,
            "--spec",
            spec_s,
            "--chunk-rows",
            "16",
            "--sql",
            "SELECT Sex, COUNT(*) FROM data GROUP BY Sex ORDER BY 2 DESC",
        ])
        .unwrap();
        assert_eq!(buffered, chunked);
    }

    #[test]
    fn missing_files_are_reported() {
        let err =
            run_line(&["check", "--spec", "/nonexistent.json", "--input", "x.csv"]).unwrap_err();
        assert!(err.contains("/nonexistent.json"));
    }

    #[test]
    fn unsatisfiable_anonymize_exits_with_verdict_code() {
        let data = temp_path("udata.csv");
        let spec = temp_path("uspec.json");
        run_line(&[
            "generate",
            "--rows",
            "200",
            "--seed",
            "3",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        // Pay has 2 distinct values: p = 5 is impossible. That is a negative
        // *verdict* (exit 2), not an operational error (exit 1).
        let out = run_full(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            "/dev/null",
            "--k",
            "2",
            "--p",
            "5",
        ])
        .unwrap();
        assert_eq!(out.code, EXIT_VIOLATION, "{}", out.text);
        assert!(out.text.contains("no masking"), "{}", out.text);
    }

    #[test]
    fn exhausted_node_budget_exits_interrupted_with_report() {
        use psens_microdata::JsonValue;
        let data = temp_path("bdata.csv");
        let spec = temp_path("bspec.json");
        let masked = temp_path("bmasked.csv");
        let report = temp_path("breport.json");
        run_line(&[
            "generate",
            "--rows",
            "300",
            "--seed",
            "5",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        // A zero-node budget interrupts before the first probe evaluates
        // anything: no feasible node yet, exit 3, report explains why.
        let _ = std::fs::remove_file(&masked);
        let out = run_full(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "2",
            "--ts",
            "10",
            "--max-nodes",
            "0",
            "--report",
            report.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(out.code, EXIT_INTERRUPTED, "{}", out.text);
        assert!(out.text.contains("interrupted"), "{}", out.text);
        assert!(!masked.exists(), "no feasible node means no release file");
        let parsed = JsonValue::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let termination = parsed.require("termination").unwrap();
        assert_eq!(
            termination.require("reason").unwrap().as_str().unwrap(),
            "node_budget_exhausted"
        );
        assert_eq!(
            termination.require("max_nodes").unwrap().as_u64().unwrap(),
            0
        );
        assert!(matches!(
            termination.require("timeout_secs").unwrap(),
            JsonValue::Null
        ));
        assert!(!parsed.require("satisfied").unwrap().as_bool().unwrap());
    }

    #[test]
    fn completed_run_reports_termination_completed() {
        use psens_microdata::JsonValue;
        let data = temp_path("cdata.csv");
        let spec = temp_path("cspec.json");
        let masked = temp_path("cmasked.csv");
        let report = temp_path("creport.json");
        run_line(&[
            "generate",
            "--rows",
            "300",
            "--seed",
            "13",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        // A generous timeout completes normally; the termination section is
        // still present so consumers can tell "budgeted, finished" from
        // "never budgeted".
        let out = run_full(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "2",
            "--ts",
            "10",
            "--timeout",
            "3600",
            "--report",
            report.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(out.code, 0, "{}", out.text);
        let parsed = JsonValue::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let termination = parsed.require("termination").unwrap();
        assert_eq!(
            termination.require("reason").unwrap().as_str().unwrap(),
            "completed"
        );
        assert_eq!(
            termination
                .require("timeout_secs")
                .unwrap()
                .as_u64()
                .unwrap(),
            3600
        );
        assert!(
            termination
                .require("proven_min_height")
                .unwrap()
                .as_u64()
                .is_ok(),
            "samarati proves its height bound"
        );
    }

    #[test]
    fn interrupted_mondrian_still_writes_a_valid_partial_release() {
        let data = temp_path("imdata.csv");
        let spec = temp_path("imspec.json");
        let masked = temp_path("immasked.csv");
        run_line(&[
            "generate",
            "--rows",
            "400",
            "--seed",
            "17",
            "--out",
            data.to_str().unwrap(),
        ])
        .unwrap();
        run_line(&["spec", "--out", spec.to_str().unwrap()]).unwrap();
        // One split attempt only: the root partition is finalized unsplit.
        // That single partition trivially satisfies k = 2, p = 1, so the
        // partial (maximally coarse) release is written and exit is 3.
        let out = run_full(&[
            "anonymize",
            "--spec",
            spec.to_str().unwrap(),
            "--input",
            data.to_str().unwrap(),
            "--out",
            masked.to_str().unwrap(),
            "--k",
            "2",
            "--p",
            "1",
            "--algorithm",
            "mondrian",
            "--max-nodes",
            "1",
        ])
        .unwrap();
        assert_eq!(out.code, EXIT_INTERRUPTED, "{}", out.text);
        assert!(out.text.contains("coarser"), "{}", out.text);
        let released = std::fs::read_to_string(&masked).unwrap();
        assert!(released.lines().count() > 400, "all rows released");
    }
}
