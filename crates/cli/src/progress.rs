//! The CLI's search observer: records telemetry for `--report` and, with
//! `--verbose`, narrates search progress on stderr.

use psens_core::{CheckStage, RecordingObserver, SearchObserver, Telemetry};
use std::time::Duration;

/// Records everything a [`RecordingObserver`] records and, when `verbose`,
/// prints coarse progress lines (heights entered, cache builds, finalized
/// partitions — not individual node checks, which would flood stderr) to
/// stderr as the search runs.
#[derive(Debug, Default)]
pub struct CliObserver {
    recorder: RecordingObserver,
    verbose: bool,
}

impl CliObserver {
    /// A fresh observer; `verbose` enables stderr progress lines.
    pub fn new(verbose: bool) -> CliObserver {
        CliObserver {
            recorder: RecordingObserver::new(),
            verbose,
        }
    }

    /// Snapshots the recorded telemetry.
    pub fn telemetry(&self) -> Telemetry {
        self.recorder.telemetry()
    }
}

impl SearchObserver for CliObserver {
    fn cache_built(&self, elapsed: Duration) {
        self.recorder.cache_built(elapsed);
        if self.verbose {
            eprintln!("[psens] evaluation cache built in {elapsed:.2?}");
        }
    }

    fn height_entered(&self, height: usize) {
        self.recorder.height_entered(height);
        if self.verbose {
            eprintln!("[psens] probing lattice height {height}");
        }
    }

    fn node_checked(&self, height: usize, stage: CheckStage, suppressed: usize, elapsed: Duration) {
        self.recorder
            .node_checked(height, stage, suppressed, elapsed);
    }

    fn verdict_reused(&self, height: usize, inferred: bool) {
        self.recorder.verdict_reused(height, inferred);
    }

    fn table_materialized(&self, elapsed: Duration) {
        self.recorder.table_materialized(elapsed);
        if self.verbose {
            eprintln!("[psens] masked table materialized in {elapsed:.2?}");
        }
    }

    fn partition_finalized(&self, rows: usize, elapsed: Duration) {
        self.recorder.partition_finalized(rows, elapsed);
        if self.verbose {
            eprintln!("[psens] partition finalized: {rows} row(s) in {elapsed:.2?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegates_to_the_recorder() {
        let obs = CliObserver::new(false);
        obs.height_entered(3);
        obs.node_checked(3, CheckStage::Passed, 2, Duration::from_nanos(9));
        obs.partition_finalized(5, Duration::from_nanos(4));
        obs.verdict_reused(4, false);
        obs.verdict_reused(5, true);
        let t = obs.telemetry();
        assert_eq!(t.heights_entered, vec![3]);
        assert_eq!(t.nodes_checked(), 1);
        assert_eq!(t.suppressed_total, 2);
        assert_eq!(t.partitions_finalized, 1);
        assert_eq!(t.partition_rows, 5);
        assert_eq!(t.cache_hits, 1);
        assert_eq!(t.cache_inferred, 1);
    }

    // CliObserver must keep the default ENABLED = true so the searches it
    // observes actually emit events; checked at compile time.
    const _: () = assert!(CliObserver::ENABLED);
}
