//! SIGINT → cooperative cancellation.
//!
//! Ctrl-C should not kill a long anonymization on the spot: the search
//! notices the tripped [`CancelToken`] at its next budget poll, winds down,
//! and the CLI writes the partial result plus a `RunReport` whose
//! termination reason is `cancelled` before exiting with code 3.
//!
//! The handler is installed with the C `signal()` function directly (no
//! dependency), and does nothing but flip the token's atomic — the only kind
//! of work that is async-signal-safe. A second Ctrl-C therefore also only
//! re-flips the flag; users who want an immediate kill can use SIGKILL.

use psens_core::CancelToken;
use std::sync::OnceLock;

/// The process-wide token the SIGINT handler trips. `OnceLock` so the
/// handler (which must not allocate) only ever observes a fully-initialized
/// token.
static CANCEL: OnceLock<CancelToken> = OnceLock::new();

#[cfg(unix)]
mod imp {
    /// POSIX SIGINT number (asm-generic; holds on every Linux arch and BSD).
    const SIGINT: i32 = 2;

    extern "C" {
        /// C `signal(2)`. The handler pointer travels as a plain address;
        /// `sighandler_t` is exactly a function pointer on all supported
        /// targets.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigint(_signum: i32) {
        // Atomic store only: async-signal-safe.
        if let Some(token) = super::CANCEL.get() {
            token.cancel();
        }
    }

    pub(super) fn install() {
        let handler: extern "C" fn(i32) = on_sigint;
        unsafe {
            signal(SIGINT, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal wiring off Unix; the token simply never trips.
    pub(super) fn install() {}
}

/// Returns the process-wide cancel token, installing the SIGINT handler on
/// first call. Idempotent: every caller gets a clone of the same token.
pub fn sigint_token() -> CancelToken {
    let token = CANCEL.get_or_init(CancelToken::new).clone();
    static INSTALLED: std::sync::Once = std::sync::Once::new();
    INSTALLED.call_once(imp::install);
    token
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_is_shared_and_stays_untripped() {
        // NOTE: the token is process-global; cancelling it here would poison
        // every CLI test that runs after this one in the same process, so we
        // only assert identity and the untripped initial state. Trip-through
        // behaviour is covered by CancelToken's own tests in psens-core.
        let a = sigint_token();
        let b = sigint_token();
        assert!(!a.is_cancelled());
        assert!(!b.is_cancelled());
    }
}
