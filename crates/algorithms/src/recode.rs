//! Local recoding shared by the partition-based algorithms (Mondrian,
//! greedy p-k clustering): replace each partition's key values by a label
//! describing the partition's extent.

use psens_microdata::{Attribute, CatColumn, Column, Kind, Schema, Table, Value};

/// Recodes every key attribute of `table` to per-partition labels: integer
/// attributes become `"lo-hi"` ranges (or the single value), categorical
/// attributes the sorted set of member values joined with `|`.
///
/// Rebuilding the schema and table cannot fail for well-formed inputs
/// (names and row counts are unchanged), but the error is propagated rather
/// than unwrapped so a malformed table surfaces as an `Err` instead of a
/// panic inside the partition algorithms.
pub(crate) fn recode_partitions(
    table: &Table,
    keys: &[usize],
    partitions: &[Vec<usize>],
) -> Result<Table, psens_microdata::Error> {
    let mut attrs: Vec<Attribute> = table.schema().attributes().to_vec();
    let mut columns: Vec<Column> = table.columns().to_vec();
    for &attr in keys {
        let column = table.column(attr);
        let mut labels: Vec<String> = vec![String::new(); table.n_rows()];
        for rows in partitions {
            let label = partition_label(column, rows);
            for &row in rows {
                labels[row].clone_from(&label);
            }
        }
        let recoded = CatColumn::from_values(labels);
        let old = &attrs[attr];
        attrs[attr] = Attribute::new(old.name(), Kind::Cat, old.role());
        columns[attr] = Column::Cat(recoded);
    }
    let schema = Schema::new(attrs)?;
    Table::new(schema, columns)
}

/// The label describing one partition's extent along one column.
pub(crate) fn partition_label(column: &Column, rows: &[usize]) -> String {
    match column {
        Column::Int(_) => {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            let mut any_missing = false;
            for &row in rows {
                match column.value(row) {
                    Value::Int(v) => {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    _ => any_missing = true,
                }
            }
            if lo > hi {
                "·".to_owned()
            } else if lo == hi && !any_missing {
                lo.to_string()
            } else {
                format!("{lo}-{hi}")
            }
        }
        Column::Cat(_) => {
            let mut values: Vec<String> = rows
                .iter()
                .map(|&row| column.value(row).to_string())
                .collect();
            values.sort_unstable();
            values.dedup();
            values.join("|")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    #[test]
    fn labels_for_int_and_cat_columns() {
        let schema =
            Schema::new(vec![Attribute::int_key("Age"), Attribute::cat_key("Sex")]).unwrap();
        let t = table_from_str_rows(
            schema,
            &[&["20", "M"], &["35", "F"], &["35", "M"], &["?", "F"]],
        )
        .unwrap();
        let age = t.column(0);
        assert_eq!(partition_label(age, &[0, 1]), "20-35");
        assert_eq!(partition_label(age, &[1, 2]), "35");
        assert_eq!(partition_label(age, &[3]), "·");
        assert_eq!(partition_label(age, &[1, 3]), "35-35");
        let sex = t.column(1);
        assert_eq!(partition_label(sex, &[0, 1, 2]), "F|M");
        assert_eq!(partition_label(sex, &[0, 2]), "M");
    }

    #[test]
    fn recode_replaces_keys_only() {
        let schema = Schema::new(vec![
            Attribute::int_key("Age"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        let t = table_from_str_rows(schema, &[&["20", "Flu"], &["30", "HIV"]]).unwrap();
        let recoded = recode_partitions(&t, &[0], &[vec![0, 1]]).unwrap();
        assert_eq!(recoded.value(0, 0), Value::Text("20-30".into()));
        assert_eq!(recoded.value(1, 0), Value::Text("20-30".into()));
        assert_eq!(recoded.value(0, 1), Value::Text("Flu".into()));
        assert_eq!(recoded.schema().attribute(0).kind(), Kind::Cat);
    }
}
