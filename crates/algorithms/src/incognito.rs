//! Incognito: full-domain k-anonymity via subset-lattice pruning
//! (LeFevre, DeWitt & Ramakrishnan, SIGMOD 2005 — the paper's reference
//! [12]), extended here to p-sensitive k-anonymity at the final stage.
//!
//! Incognito's insight is *subset monotonicity*: if a full-domain
//! generalization is k-anonymous with respect to the quasi-identifier set
//! `Q`, it is k-anonymous with respect to every subset of `Q` (coarser
//! groupings only merge groups). The algorithm therefore works Apriori-
//! style: it finds the k-anonymous generalizations of every 1-attribute
//! subset, joins them into candidates for 2-attribute subsets, and so on —
//! pruning a candidate as soon as any projection failed. Within one subset's
//! lattice it walks bottom-up with **rollup**: once a node passes, all its
//! ancestors pass without evaluation.
//!
//! Subset pruning uses plain k-anonymity (with the suppression budget); the
//! p-sensitivity requirement is checked only on the full QI set, through the
//! code-mapped evaluation kernel. p-sensitivity is itself
//! subset-monotone, but k-based pruning is what the original algorithm
//! specifies and is sound for the combined property (a node failing
//! k-anonymity on a subset cannot satisfy p-sensitive k-anonymity on the
//! full set).

use crate::tuning::Tuning;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{ModelSpec, NoopObserver, SearchBudget, SearchObserver, Termination};
use psens_hierarchy::{Node, QiCodeMaps, QiSpace};
use psens_microdata::hash::{FxHashMap, FxHashSet};
use psens_microdata::{CodeCombiner, Table};
use serde::Serialize;
use std::ops::ControlFlow;

/// Work counters for the Incognito run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct IncognitoStats {
    /// Subset-lattice nodes whose frequency set was actually computed,
    /// indexed by subset size (entry 0 = 1-attribute subsets).
    pub evaluated_by_size: Vec<usize>,
    /// Candidates rejected by the Apriori join (a projection already
    /// failed) without any evaluation.
    pub pruned_apriori: usize,
    /// Nodes accepted by rollup (an evaluated descendant passed) without
    /// any evaluation.
    pub pruned_rollup: usize,
    /// Full-QI nodes that passed k-anonymity but failed p-sensitivity.
    pub failed_sensitivity: usize,
}

/// Result of an Incognito run.
#[derive(Debug, Clone)]
pub struct IncognitoOutcome {
    /// All p-k-minimal generalizations over the full QI set. Complete
    /// exactly when `termination` is [`Termination::Completed`]. When the
    /// budget trips during the final confirmation stage, each listed node is
    /// a genuine p-sensitive k-anonymous generalization (not necessarily
    /// minimal); when it trips during subset pruning, the list is empty.
    pub minimal: Vec<Node>,
    /// Work counters.
    pub stats: IncognitoStats,
    /// How the search ended.
    pub termination: Termination,
}

/// Key for one subset node: the levels of the attributes in the subset, in
/// ascending attribute order.
type SubsetNode = Vec<u8>;

/// Runs Incognito over the table's QI space.
///
/// Finds **all** p-sensitive k-anonymous full-domain generalizations'
/// minimal elements, like [`crate::levelwise::levelwise_minimal`], but prunes
/// through attribute subsets first — on wide QI sets this evaluates far
/// fewer frequency sets.
pub fn incognito_minimal(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
) -> Result<IncognitoOutcome, psens_hierarchy::Error> {
    incognito_minimal_observed(initial, qi, p, k, ts, &NoopObserver)
}

/// [`incognito_minimal`], reporting the full-QI confirmation stage's events
/// to `observer` (the subset-pruning phase does per-subset frequency-set
/// work, not node checks, and is tallied by [`IncognitoStats`] instead).
/// With a [`NoopObserver`] this monomorphizes to the unobserved search.
pub fn incognito_minimal_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    observer: &O,
) -> Result<IncognitoOutcome, psens_hierarchy::Error> {
    incognito_minimal_budgeted(initial, qi, p, k, ts, &SearchBudget::unlimited(), observer)
}

/// [`incognito_minimal_observed`] under a [`SearchBudget`]. Each subset
/// frequency-set evaluation and each full-QI confirmation check draws one
/// node from the budget.
#[allow(clippy::too_many_arguments)]
pub fn incognito_minimal_budgeted<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    observer: &O,
) -> Result<IncognitoOutcome, psens_hierarchy::Error> {
    incognito_minimal_tuned(initial, qi, p, k, ts, budget, Tuning::default(), observer)
}

/// [`incognito_minimal_budgeted`] consulting (and warming) the optional
/// shared [`psens_core::verdict::VerdictStore`] in `tuning.cache` during the
/// full-QI confirmation stage. Inferred verdicts are accepted — only the
/// satisfaction boolean matters here. The subset-pruning phase works on
/// projected frequency sets, which the full-lattice store cannot describe,
/// so it never consults the cache; `tuning.threads` is likewise ignored (the
/// subset walk is inherently sequential through `passing`).
#[allow(clippy::too_many_arguments)]
pub fn incognito_minimal_tuned<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<IncognitoOutcome, psens_hierarchy::Error> {
    incognito_minimal_model(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        budget,
        tuning,
        observer,
    )
}

/// [`incognito_minimal_tuned`] generalized over the pluggable privacy
/// models. Subset pruning stays pure k-anonymity (sound for any model that
/// requires k-anonymity); `spec` replaces the p-sensitivity check at the
/// full-QI confirmation stage. `ModelSpec::PSensitiveK` reproduces the
/// p-sensitive search bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn incognito_minimal_model<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<IncognitoOutcome, psens_hierarchy::Error> {
    let m = qi.len();
    assert!(m <= 16, "QI sets wider than 16 attributes are unsupported");
    let mut stats = IncognitoStats {
        evaluated_by_size: vec![0; m],
        ..Default::default()
    };

    // Per-(attribute, level) code maps, cached once: every subset frequency
    // set is then a pure u32 combine over them — no recoded columns, no
    // temporary tables.
    let max_levels: Vec<usize> = (0..m).map(|i| qi.hierarchy(i).max_level()).collect();
    let maps = qi.code_maps(initial)?;
    let mut combiner = CodeCombiner::new();
    let mut current: Vec<u32> = Vec::new();
    let mut sizes: Vec<u32> = Vec::new();

    // passing[mask] = set of subset nodes that are k-anonymous (within ts)
    // w.r.t. the attributes of `mask`.
    let mut passing: FxHashMap<u16, FxHashSet<SubsetNode>> = FxHashMap::default();
    let state = budget.start();

    'subsets: for mask in 1u16..(1 << m) {
        let members: Vec<usize> = (0..m).filter(|&i| mask & (1 << i) != 0).collect();
        let size = members.len();
        let mut passed: FxHashSet<SubsetNode> = FxHashSet::default();
        // Enumerate this subset's lattice bottom-up by height.
        let dims: Vec<u8> = members.iter().map(|&i| max_levels[i] as u8).collect();
        let lattice = psens_hierarchy::Lattice::new(dims);
        for node in lattice.all_nodes() {
            let levels: SubsetNode = node.levels().to_vec();
            // Apriori: every (size-1)-projection must have passed.
            if size > 1 {
                let prunable = members.iter().enumerate().any(|(pos, &attr)| {
                    let sub_mask = mask & !(1 << attr);
                    let mut projection = levels.clone();
                    projection.remove(pos);
                    !passing[&sub_mask].contains(&projection)
                });
                if prunable {
                    stats.pruned_apriori += 1;
                    continue;
                }
            }
            // Rollup: a passing child implies this node passes.
            let rolled_up = lattice
                .children(&node)
                .iter()
                .any(|child| passed.contains(child.levels()));
            if rolled_up {
                stats.pruned_rollup += 1;
                passed.insert(levels);
                continue;
            }
            // Evaluate: frequency set over the mapped subset codes. Each
            // one draws a node from the budget — it is the same order of
            // work as a kernel node check.
            if state.admit().is_err() {
                break 'subsets;
            }
            stats.evaluated_by_size[size - 1] += 1;
            if subset_is_anonymous(
                &members,
                &levels,
                &maps,
                k,
                ts,
                &mut combiner,
                &mut current,
                &mut sizes,
            ) {
                passed.insert(levels);
            }
        }
        passing.insert(mask, passed);
    }

    // Full-QI survivors: confirm the model's group property on the
    // materialized masking.
    let full_mask = (1u16 << m) - 1;
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p: spec.conditions_p(),
        ts,
    };
    let im_stats = ctx.initial_stats();
    let ectx = tuning
        .configure(EvalContext::build_observed(&ctx, observer)?)
        .with_model(spec);
    let mut eval = ectx.evaluator();
    let mut satisfying: Vec<Node> = Vec::new();
    // `full_mask` is the last subset processed; it is absent exactly when
    // the budget tripped during subset pruning — nothing to confirm then.
    let mut survivors: Vec<&SubsetNode> = passing
        .get(&full_mask)
        .map(|set| set.iter().collect())
        .unwrap_or_default();
    survivors.sort();
    for levels in survivors {
        let node = Node(levels.clone());
        match eval.check_cached(&node, &im_stats, &state, tuning.cache, true, observer)? {
            ControlFlow::Break(_) => break,
            ControlFlow::Continue(cc) => {
                if cc.satisfied {
                    satisfying.push(node);
                } else {
                    // Survivors already pass subset k-anonymity, so an
                    // unsatisfied verdict here — fresh or replayed — means
                    // the p-sensitivity stage rejected the masking.
                    stats.failed_sensitivity += 1;
                }
            }
        }
    }
    let lattice = qi.lattice();
    let minimal = lattice.minimal_elements(&satisfying);
    Ok(IncognitoOutcome {
        minimal,
        stats,
        termination: state.termination(),
    })
}

/// Is the projection of the masking onto `members` (at `levels`) k-anonymous
/// after suppressing at most `ts` tuples?
///
/// Pure code work: refine the row partition with each member's level map,
/// then count rows in undersized groups. `combiner`/`current`/`sizes` are
/// caller-owned scratch, reused across the thousands of subset nodes a run
/// visits.
#[allow(clippy::too_many_arguments)]
fn subset_is_anonymous(
    members: &[usize],
    levels: &[u8],
    maps: &QiCodeMaps,
    k: u32,
    ts: usize,
    combiner: &mut CodeCombiner,
    current: &mut Vec<u32>,
    sizes: &mut Vec<u32>,
) -> bool {
    let n = maps.n_rows();
    current.clear();
    current.resize(n, 0);
    let mut n_groups = u32::from(n > 0);
    for (&attr, &level) in members.iter().zip(levels) {
        let am = maps.attr(attr);
        let lm = am.level(level as usize);
        n_groups = combiner.refine_mapped(current, n_groups, am.base(), lm.map(), lm.n_codes());
    }
    sizes.clear();
    sizes.resize(n_groups as usize, 0);
    for &g in current.iter() {
        sizes[g as usize] += 1;
    }
    let violating: usize = sizes.iter().filter(|&&s| s < k).map(|&s| s as usize).sum();
    violating <= ts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_scan;
    use psens_datasets::hierarchies::{adult_qi_space, figure2_qi_space};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn matches_exhaustive_on_table4() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for ts in 0..=10usize {
            let mut truth = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap().minimal;
            let mut ours = incognito_minimal(&im, &qi, 1, 3, ts).unwrap().minimal;
            truth.sort();
            ours.sort();
            assert_eq!(truth, ours, "TS = {ts}");
        }
    }

    #[test]
    fn matches_exhaustive_with_p_sensitivity() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for p in 1..=3u32 {
            let mut truth = exhaustive_scan(&im, &qi, p, 2, 2).unwrap().minimal;
            let mut ours = incognito_minimal(&im, &qi, p, 2, 2).unwrap().minimal;
            truth.sort();
            ours.sort();
            assert_eq!(truth, ours, "p = {p}");
        }
    }

    #[test]
    fn matches_exhaustive_on_adult_sample() {
        let im = AdultGenerator::new(41).generate(250);
        let qi = adult_qi_space();
        for (p, k, ts) in [(1u32, 2u32, 0usize), (2, 2, 12)] {
            let mut truth = exhaustive_scan(&im, &qi, p, k, ts).unwrap().minimal;
            let mut ours = incognito_minimal(&im, &qi, p, k, ts).unwrap().minimal;
            truth.sort();
            ours.sort();
            assert_eq!(truth, ours, "p={p} k={k} ts={ts}");
        }
    }

    #[test]
    fn pruning_counters_are_active() {
        let im = AdultGenerator::new(43).generate(300);
        let qi = adult_qi_space();
        let outcome = incognito_minimal(&im, &qi, 1, 3, 0).unwrap();
        assert!(outcome.stats.pruned_apriori > 0, "{:?}", outcome.stats);
        assert!(outcome.stats.pruned_rollup > 0, "{:?}", outcome.stats);
        // The full-QI stratum must evaluate fewer nodes than the lattice has.
        assert!(outcome.stats.evaluated_by_size[3] < 96);
    }

    #[test]
    fn unsatisfiable_instances_return_empty() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = incognito_minimal(&im, &qi, 1, 11, 0).unwrap();
        assert!(outcome.minimal.is_empty());
        assert_eq!(outcome.termination, Termination::Completed);
    }

    #[test]
    fn node_budget_interrupts_soundly() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let keys = im.schema().key_indices();
        let conf = im.schema().confidential_indices();
        let full = incognito_minimal(&im, &qi, 2, 2, 2).unwrap();
        assert_eq!(full.termination, Termination::Completed);
        let evaluated: u64 = full.stats.evaluated_by_size.iter().sum::<usize>() as u64
            + full.minimal.len() as u64
            + full.stats.failed_sensitivity as u64;
        for max_nodes in 0..evaluated {
            let budget = SearchBudget::unlimited().with_max_nodes(max_nodes);
            let outcome =
                incognito_minimal_budgeted(&im, &qi, 2, 2, 2, &budget, &NoopObserver).unwrap();
            assert_eq!(outcome.termination, Termination::NodeBudgetExhausted);
            // Anytime guarantee: anything reported satisfies the property.
            let ctx = MaskingContext {
                initial: &im,
                qi: &qi,
                k: 2,
                p: 2,
                ts: 2,
            };
            let im_stats = ctx.initial_stats();
            for node in &outcome.minimal {
                let masked = ctx.evaluate(node, &im_stats).unwrap().masked;
                assert!(
                    psens_core::is_p_sensitive_k_anonymous(&masked, &keys, &conf, 2, 2),
                    "budget {max_nodes}: {node}"
                );
            }
        }
    }
}
