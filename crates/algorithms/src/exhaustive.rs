//! Exhaustive lattice scan: evaluates every node and reports the complete
//! set of (p-)k-minimal generalizations.
//!
//! Quadratic in the lattice size but exact — the ground truth the paper's
//! Table 4 tabulates, and the oracle our other search algorithms are tested
//! against.

use crate::stats::SearchStats;
use crate::tuning::Tuning;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{ModelSpec, NoopObserver, SearchBudget, SearchObserver, Termination};
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::Table;
use std::ops::ControlFlow;

/// Result of an exhaustive scan.
#[derive(Debug, Clone)]
pub struct ExhaustiveOutcome {
    /// Every satisfying node found, in ascending height order. Complete
    /// exactly when `termination` is [`Termination::Completed`]; otherwise
    /// best-so-far over the nodes evaluated before the budget tripped.
    pub satisfying: Vec<Node>,
    /// The minimal elements of `satisfying` — all (p-)k-minimal
    /// generalizations (paper Definition 3) on a completed run.
    pub minimal: Vec<Node>,
    /// Per-node annotations: `(node, violating_tuples)` for every evaluated
    /// lattice node, the numbers the paper's Figure 3 writes next to each
    /// node.
    pub annotations: Vec<(Node, usize)>,
    /// Work counters.
    pub stats: SearchStats,
    /// How the scan ended.
    pub termination: Termination,
}

/// Scans the whole lattice for maskings satisfying p-sensitive k-anonymity
/// with suppression threshold `ts` (use `p = 1` for plain k-anonymity).
pub fn exhaustive_scan(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    exhaustive_scan_observed(initial, qi, p, k, ts, &NoopObserver)
}

/// [`exhaustive_scan`], reporting per-node events to `observer`. With a
/// [`NoopObserver`] this monomorphizes to the unobserved scan.
pub fn exhaustive_scan_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    exhaustive_scan_budgeted(initial, qi, p, k, ts, &SearchBudget::unlimited(), observer)
}

/// [`exhaustive_scan_observed`] under a [`SearchBudget`]: the scan stops at
/// the first refused node admission and returns everything evaluated up to
/// that point, labelled by the outcome's `termination`.
#[allow(clippy::too_many_arguments)]
pub fn exhaustive_scan_budgeted<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    exhaustive_scan_tuned(initial, qi, p, k, ts, budget, Tuning::default(), observer)
}

/// [`exhaustive_scan_budgeted`] consulting (and warming) the optional
/// [`psens_core::verdict::VerdictStore`] in `tuning.cache`.
///
/// The scan replays only **exact** cached verdicts (`allow_inferred` off):
/// its per-node annotations need the exact `violating_tuples` count, which
/// monotonicity inference cannot supply. An inferred-only entry therefore
/// misses and is upgraded to an exact record by the fresh check. The thread
/// count in `tuning` is ignored — [`crate::parallel`] is the parallel scan.
#[allow(clippy::too_many_arguments)]
pub fn exhaustive_scan_tuned<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    exhaustive_scan_model(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        budget,
        tuning,
        observer,
    )
}

/// [`exhaustive_scan_tuned`] generalized over the pluggable privacy models:
/// annotates and classifies every lattice node under `spec` instead of
/// p-sensitivity. `ModelSpec::PSensitiveK` reproduces the p-sensitive scan
/// bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn exhaustive_scan_model<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p: spec.conditions_p(),
        ts,
    };
    let stats_im = ctx.initial_stats();
    // Code-mapped kernel: hoist per-(attribute, level) code maps out of the
    // scan, then check each node on u32 vectors — no table materialization.
    let ectx = tuning
        .configure(EvalContext::build_observed(&ctx, observer)?)
        .with_model(spec);
    let mut eval = ectx.evaluator();
    let lattice = qi.lattice();
    let state = budget.start();
    let mut satisfying = Vec::new();
    let mut annotations = Vec::new();
    let mut stats = SearchStats {
        lattice_nodes: lattice.node_count(),
        requested_threads: tuning.threads,
        effective_threads: tuning.effective_threads(),
        ..Default::default()
    };
    for node in lattice.all_nodes() {
        match eval.check_cached(&node, &stats_im, &state, tuning.cache, false, observer)? {
            ControlFlow::Break(_) => break,
            ControlFlow::Continue(cc) => {
                stats.record_cached(&cc);
                let check = cc
                    .check
                    .as_ref()
                    .expect("exact-only lookups always carry a NodeCheck");
                annotations.push((node.clone(), check.violating_tuples));
                if cc.satisfied {
                    satisfying.push(node);
                }
            }
        }
    }
    let minimal = lattice.minimal_elements(&satisfying);
    Ok(ExhaustiveOutcome {
        satisfying,
        minimal,
        annotations,
        stats,
        termination: state.termination(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::hierarchies::figure2_qi_space;
    use psens_datasets::paper::figure3_microdata;

    #[test]
    fn figure3_annotations_match_paper() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = exhaustive_scan(&im, &qi, 1, 3, 0).unwrap();
        let expect = [
            (Node(vec![0, 0]), 10),
            (Node(vec![1, 0]), 7),
            (Node(vec![0, 1]), 7),
            (Node(vec![1, 1]), 2),
            (Node(vec![0, 2]), 0),
            (Node(vec![1, 2]), 0),
        ];
        for (node, violations) in expect {
            let found = outcome
                .annotations
                .iter()
                .find(|(n, _)| *n == node)
                .map(|(_, v)| *v);
            assert_eq!(found, Some(violations), "node {node}");
        }
    }

    #[test]
    fn table4_minimal_sets_exact() {
        // The paper's Table 4, cell for cell.
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let expect: &[(&[usize], &[Node])] = &[
            (&[0, 1], &[Node(vec![0, 2])]),
            (&[2, 3, 4, 5, 6], &[Node(vec![0, 2]), Node(vec![1, 1])]),
            (&[7, 8, 9], &[Node(vec![0, 1]), Node(vec![1, 0])]),
            (&[10], &[Node(vec![0, 0])]),
        ];
        for (ts_values, nodes) in expect {
            for &ts in *ts_values {
                let outcome = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap();
                let mut minimal = outcome.minimal.clone();
                minimal.sort();
                let mut expected = nodes.to_vec();
                expected.sort();
                assert_eq!(minimal, expected, "TS = {ts}");
            }
        }
    }

    #[test]
    fn satisfying_set_is_upward_closed() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = exhaustive_scan(&im, &qi, 1, 3, 4).unwrap();
        let lattice = qi.lattice();
        for node in &outcome.satisfying {
            for parent in lattice.parents(node) {
                assert!(
                    outcome.satisfying.contains(&parent),
                    "parent {parent} of satisfying {node} must satisfy"
                );
            }
        }
    }

    #[test]
    fn minimal_nodes_are_minimal() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = exhaustive_scan(&im, &qi, 2, 2, 3).unwrap();
        for a in &outcome.minimal {
            for b in &outcome.satisfying {
                assert!(
                    !a.strictly_dominates(b),
                    "minimal {a} dominates satisfying {b}"
                );
            }
        }
    }
}
