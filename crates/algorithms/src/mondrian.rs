//! Mondrian-style multidimensional partitioning, extended with the
//! p-sensitivity constraint.
//!
//! The paper's approach is *full-domain* (global) recoding; modern toolkits
//! (ARX, Mondrian) favour *local* recoding: greedily split the dataset into
//! multidimensional boxes as long as every box still satisfies the privacy
//! constraint, then recode each box to its bounding ranges. We implement
//! LeFevre et al.'s greedy median Mondrian with the split feasibility test
//! extended to demand `p` distinct values of every confidential attribute in
//! both halves — making it a local-recoding baseline for p-sensitive
//! k-anonymity. Finer partitions than any single lattice node can offer mean
//! less information loss, at the cost of non-uniform recoding.

use crate::recode::recode_partitions;
use psens_core::observe::{elapsed_since, start_timer};
use psens_core::{NoopObserver, SearchBudget, SearchObserver, Termination};
use psens_microdata::hash::FxHashSet;
use psens_microdata::{Table, Value};
use serde::Serialize;

/// Configuration for the Mondrian search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MondrianConfig {
    /// Minimum partition size (k-anonymity).
    pub k: u32,
    /// Minimum distinct confidential values per partition (p-sensitivity;
    /// use 1 for plain k-anonymity).
    pub p: u32,
}

/// Result of Mondrian partitioning.
#[derive(Debug, Clone)]
pub struct MondrianOutcome {
    /// The locally-recoded masked table (identifiers dropped, key attributes
    /// replaced by partition labels).
    pub masked: Table,
    /// Row index sets of the final partitions (into the identifier-free
    /// input ordering).
    pub partitions: Vec<Vec<usize>>,
    /// Number of median splits performed.
    pub splits: usize,
    /// How the run ended. An interrupted run finalizes every pending
    /// partition unsplit, so the output is still a disjoint cover — coarser
    /// (more information loss) than a completed run, never less private.
    pub termination: Termination,
}

/// Runs Mondrian over `initial`, using its schema's key and confidential
/// roles.
///
/// # Errors
/// Fails only when the masked table cannot be rebuilt, which cannot happen
/// for well-formed inputs. An input smaller than `k` simply yields a single
/// unsplittable partition (which then fails the constraint — callers should
/// check the output with `psens_core`).
pub fn mondrian_anonymize(
    initial: &Table,
    config: MondrianConfig,
) -> Result<MondrianOutcome, psens_microdata::Error> {
    mondrian_anonymize_observed(initial, config, &NoopObserver)
}

/// [`mondrian_anonymize`], reporting each finalized partition (row count and
/// the time spent deciding it cannot split further) to `observer`. With a
/// [`NoopObserver`] this monomorphizes to the unobserved run.
pub fn mondrian_anonymize_observed<O: SearchObserver>(
    initial: &Table,
    config: MondrianConfig,
    observer: &O,
) -> Result<MondrianOutcome, psens_microdata::Error> {
    mondrian_anonymize_budgeted(initial, config, &SearchBudget::unlimited(), observer)
}

/// [`mondrian_anonymize_observed`] under a [`SearchBudget`]. Each split
/// attempt draws one (coarse) budget unit — a split attempt sorts the
/// partition, so the deadline and cancel token are polled on every unit
/// rather than every [`SearchBudget::check_interval`] units. When the budget
/// trips, splitting stops and all pending partitions are finalized as they
/// stand: the result is a valid, coarser cover (anytime behaviour).
pub fn mondrian_anonymize_budgeted<O: SearchObserver>(
    initial: &Table,
    config: MondrianConfig,
    budget: &SearchBudget,
    observer: &O,
) -> Result<MondrianOutcome, psens_microdata::Error> {
    let table = initial.drop_identifiers();
    let keys = table.schema().key_indices();
    let confidential = table.schema().confidential_indices();

    let state = budget.start();
    let mut final_partitions: Vec<Vec<usize>> = Vec::new();
    let mut splits = 0usize;
    let mut work: Vec<Vec<usize>> = vec![(0..table.n_rows()).collect()];
    while let Some(rows) = work.pop() {
        if state.admit_coarse().is_err() {
            // Interrupted: everything still queued becomes final as-is.
            final_partitions.push(rows);
            final_partitions.append(&mut work);
            break;
        }
        let timer = start_timer::<O>();
        match try_split(&table, &keys, &confidential, &rows, config) {
            Some((lhs, rhs)) => {
                splits += 1;
                work.push(lhs);
                work.push(rhs);
            }
            None => {
                if O::ENABLED {
                    observer.partition_finalized(rows.len(), elapsed_since(timer));
                }
                final_partitions.push(rows);
            }
        }
    }
    final_partitions.sort_by_key(|rows| rows.first().copied().unwrap_or(usize::MAX));

    let masked = recode_partitions(&table, &keys, &final_partitions)?;
    Ok(MondrianOutcome {
        masked,
        partitions: final_partitions,
        splits,
        termination: state.termination(),
    })
}

/// A partition is admissible when it meets the size and sensitivity floor.
fn admissible(
    table: &Table,
    confidential: &[usize],
    rows: &[usize],
    config: MondrianConfig,
) -> bool {
    if (rows.len() as u32) < config.k {
        return false;
    }
    confidential.iter().all(|&attr| {
        let column = table.column(attr);
        let mut seen: FxHashSet<Value> = FxHashSet::default();
        for &row in rows {
            seen.insert(column.value(row));
            if seen.len() >= config.p as usize {
                return true;
            }
        }
        (seen.len() as u32) >= config.p
    })
}

/// Attempts the best admissible median split of `rows`.
///
/// Dimensions are ranked by distinct-value count within the partition (the
/// "widest" dimension first, the classic Mondrian heuristic); the first
/// dimension yielding two admissible halves wins.
fn try_split(
    table: &Table,
    keys: &[usize],
    confidential: &[usize],
    rows: &[usize],
    config: MondrianConfig,
) -> Option<(Vec<usize>, Vec<usize>)> {
    let mut dims: Vec<(usize, usize)> = keys
        .iter()
        .map(|&attr| {
            let column = table.column(attr);
            let mut seen: FxHashSet<Value> = FxHashSet::default();
            for &row in rows {
                seen.insert(column.value(row));
            }
            (attr, seen.len())
        })
        .filter(|&(_, distinct)| distinct > 1)
        .collect();
    dims.sort_by_key(|&(attr, distinct)| (std::cmp::Reverse(distinct), attr));

    for (attr, _) in dims {
        let column = table.column(attr);
        let mut ordered: Vec<usize> = rows.to_vec();
        ordered.sort_by(|&a, &b| column.value(a).cmp(&column.value(b)).then(a.cmp(&b)));
        let median_value = column.value(ordered[ordered.len() / 2]);
        // Strict median cut: values below the median left, the rest right.
        let (lhs, rhs): (Vec<usize>, Vec<usize>) = ordered
            .iter()
            .partition(|&&row| column.value(row) < median_value);
        for (a, b) in [(&lhs, &rhs)] {
            if !a.is_empty()
                && !b.is_empty()
                && admissible(table, confidential, a, config)
                && admissible(table, confidential, b, config)
            {
                return Some((a.clone(), b.clone()));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_core::{is_k_anonymous, is_p_sensitive_k_anonymous};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn partitions_are_a_disjoint_cover() {
        let im = AdultGenerator::new(5).generate(500);
        let outcome = mondrian_anonymize(&im, MondrianConfig { k: 5, p: 1 }).unwrap();
        let mut seen = vec![false; 500];
        for partition in &outcome.partitions {
            for &row in partition {
                assert!(!seen[row], "row {row} in two partitions");
                seen[row] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "rows must be covered");
    }

    #[test]
    fn output_satisfies_k() {
        let im = AdultGenerator::new(6).generate(500);
        let outcome = mondrian_anonymize(&im, MondrianConfig { k: 5, p: 1 }).unwrap();
        for partition in &outcome.partitions {
            assert!(partition.len() >= 5);
        }
        let keys = outcome.masked.schema().key_indices();
        assert!(is_k_anonymous(&outcome.masked, &keys, 5));
    }

    #[test]
    fn output_satisfies_p_sensitivity_when_requested() {
        let im = AdultGenerator::new(7).generate(500);
        let outcome = mondrian_anonymize(&im, MondrianConfig { k: 4, p: 2 }).unwrap();
        let keys = outcome.masked.schema().key_indices();
        let conf = outcome.masked.schema().confidential_indices();
        assert!(is_p_sensitive_k_anonymous(
            &outcome.masked,
            &keys,
            &conf,
            2,
            4
        ));
    }

    #[test]
    fn finer_than_full_domain_on_figure3() {
        // On Figure 3's data, k = 2: full-domain needs <S0,Z1>-level recoding
        // (7 suppressed at lower nodes); Mondrian keeps more detail by
        // splitting locally.
        let im = figure3_microdata();
        let outcome = mondrian_anonymize(&im, MondrianConfig { k: 2, p: 1 }).unwrap();
        assert!(outcome.partitions.len() >= 2);
        let keys = outcome.masked.schema().key_indices();
        assert!(is_k_anonymous(&outcome.masked, &keys, 2));
        // No rows are suppressed by Mondrian.
        assert_eq!(outcome.masked.n_rows(), im.n_rows());
    }

    #[test]
    fn small_input_yields_one_partition() {
        let im = figure3_microdata();
        let outcome = mondrian_anonymize(&im, MondrianConfig { k: 10, p: 1 }).unwrap();
        assert_eq!(outcome.partitions.len(), 1);
        assert_eq!(outcome.splits, 0);
        // One partition means one QI-group: trivially 10-anonymous.
        let keys = outcome.masked.schema().key_indices();
        assert!(is_k_anonymous(&outcome.masked, &keys, 10));
    }

    #[test]
    fn identifiers_are_dropped() {
        let im = AdultGenerator::new(8).generate(100);
        let outcome = mondrian_anonymize(&im, MondrianConfig { k: 5, p: 1 }).unwrap();
        assert!(outcome.masked.schema().index_of("Id").is_err());
    }

    #[test]
    fn labels_are_ranges_and_sets() {
        let im = AdultGenerator::new(9).generate(300);
        let outcome = mondrian_anonymize(&im, MondrianConfig { k: 50, p: 1 }).unwrap();
        let age = outcome.masked.column_by_name("Age").unwrap();
        let label = age.value(0).to_string();
        assert!(
            label.contains('-') || label.parse::<i64>().is_ok(),
            "unexpected age label {label}"
        );
    }

    #[test]
    fn interrupted_run_is_a_coarser_valid_cover() {
        let im = AdultGenerator::new(10).generate(500);
        let config = MondrianConfig { k: 5, p: 1 };
        let full = mondrian_anonymize(&im, config).unwrap();
        assert_eq!(full.termination, Termination::Completed);
        // One unit per split attempt: completed runs draw splits + finals.
        let attempts = (full.splits + full.partitions.len()) as u64;
        for max_nodes in [0u64, 1, attempts / 2] {
            let budget = SearchBudget::unlimited().with_max_nodes(max_nodes);
            let outcome = mondrian_anonymize_budgeted(&im, config, &budget, &NoopObserver).unwrap();
            assert_eq!(outcome.termination, Termination::NodeBudgetExhausted);
            assert!(outcome.splits <= full.splits);
            // Still a disjoint cover of every row.
            let mut seen = vec![false; 500];
            for partition in &outcome.partitions {
                for &row in partition {
                    assert!(!seen[row], "row {row} in two partitions");
                    seen[row] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
            // Coarser never breaks k: partitions only get bigger.
            let keys = outcome.masked.schema().key_indices();
            assert!(is_k_anonymous(&outcome.masked, &keys, 5));
        }
    }
}
