//! Execution tuning shared by the lattice searches: worker-thread count and
//! an optional shared [`VerdictStore`].
//!
//! The defaults reproduce the pre-tuning behaviour exactly — one thread, no
//! cache — so the `*_budgeted` entry points keep their historical semantics
//! (including bit-identical [`crate::stats::SearchStats`]) by delegating
//! with [`Tuning::default`].

use psens_core::evaluator::EvalContext;
use psens_core::verdict::VerdictStore;
use psens_microdata::resolve_threads;

/// Knobs for the `*_tuned` search entry points.
#[derive(Debug, Clone, Copy)]
pub struct Tuning<'a> {
    /// Worker threads for per-stratum evaluation and the chunked partition
    /// kernel. `1` means serial (the historical code path, bit-identical
    /// stats); `0` means one worker per available core
    /// ([`std::thread::available_parallelism`], the same convention as the
    /// CLI's `--threads 0`); with more threads each lattice stratum is
    /// chunked across scoped workers.
    pub threads: usize,
    /// Shared verdict store consulted before every kernel check and updated
    /// with every fresh verdict. The store must have been built for the
    /// same `(table, QI space, p, k, ts)` configuration; sharing one store
    /// across runs (or across strategies) is what makes verdicts reusable.
    pub cache: Option<&'a VerdictStore>,
    /// Rows per chunk for the evaluator's chunk-parallel partition kernel.
    /// `0` (the default) keeps the serial kernel; any other value makes
    /// every node check partition in chunks of this many rows across the
    /// same `threads` workers. Verdicts are identical either way — the
    /// chunked merge reproduces the serial group ids exactly.
    pub chunk_rows: usize,
}

impl Default for Tuning<'_> {
    fn default() -> Self {
        Tuning {
            threads: 1,
            cache: None,
            chunk_rows: 0,
        }
    }
}

impl<'a> Tuning<'a> {
    /// Effective worker count: at least one; `0` resolves to the available
    /// parallelism (see [`resolve_threads`]).
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads).max(1)
    }

    /// Applies the chunked-partition setting to a freshly built evaluator
    /// context. With `chunk_rows == 0` the context is returned untouched,
    /// preserving the historical serial kernel.
    pub fn configure(&self, ectx: EvalContext) -> EvalContext {
        if self.chunk_rows > 0 {
            ectx.with_chunked_partition(self.chunk_rows, self.effective_threads())
        } else {
            ectx
        }
    }
}
