//! Machine-readable run reports: the JSON artifact the CLI's `--report`
//! flag emits.
//!
//! A [`RunReport`] bundles the request parameters, the verdict, the search's
//! [`SearchStats`] counters, and the [`Telemetry`] collected by a
//! [`psens_core::RecordingObserver`] — everything needed to reproduce the
//! paper's Table 7/8 pruning-efficiency numbers from a single file (see
//! EXPERIMENTS.md) and to scrape timings in a service deployment. The schema
//! is documented in DESIGN.md.

use crate::stats::SearchStats;
use psens_core::Telemetry;
use psens_microdata::JsonValue;

/// One CLI run's machine-readable summary.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The command that produced the report (`check`, `analyze`,
    /// `anonymize`).
    pub command: String,
    /// Rows in the input microdata.
    pub rows: usize,
    /// Requested group size k.
    pub k: u32,
    /// Requested sensitivity p.
    pub p: u32,
    /// Suppression threshold TS, when the command takes one.
    pub ts: Option<usize>,
    /// The verdict, when the command produces one (`check`: property holds;
    /// `anonymize`: a masking was found).
    pub satisfied: Option<bool>,
    /// The winning lattice node, when a search produced one.
    pub node: Option<String>,
    /// Search work counters, when a lattice search ran.
    pub search: Option<SearchStats>,
    /// Observer telemetry (per-stage/per-height timings).
    pub telemetry: Option<Telemetry>,
    /// End-to-end wall-clock time of the command, nanoseconds.
    pub wall_ns: u64,
}

impl RunReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set("command", JsonValue::Str(self.command.clone()));
        out.set("rows", JsonValue::Int(self.rows as i64));
        out.set("k", JsonValue::Int(i64::from(self.k)));
        out.set("p", JsonValue::Int(i64::from(self.p)));
        out.set(
            "ts",
            match self.ts {
                Some(ts) => JsonValue::Int(ts as i64),
                None => JsonValue::Null,
            },
        );
        out.set(
            "satisfied",
            match self.satisfied {
                Some(s) => JsonValue::Bool(s),
                None => JsonValue::Null,
            },
        );
        out.set(
            "node",
            match &self.node {
                Some(n) => JsonValue::Str(n.clone()),
                None => JsonValue::Null,
            },
        );
        out.set(
            "search",
            match &self.search {
                Some(stats) => stats.to_json(),
                None => JsonValue::Null,
            },
        );
        out.set(
            "telemetry",
            match &self.telemetry {
                Some(t) => t.to_json(),
                None => JsonValue::Null,
            },
        );
        out.set("wall_ns", JsonValue::Int(self.wall_ns as i64));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_core::{RecordingObserver, SearchObserver};

    #[test]
    fn report_json_roundtrips_and_sums() {
        let obs = RecordingObserver::new();
        obs.node_checked(
            1,
            psens_core::CheckStage::Passed,
            2,
            std::time::Duration::from_nanos(7),
        );
        obs.node_checked(
            0,
            psens_core::CheckStage::KAnonymity,
            0,
            std::time::Duration::from_nanos(3),
        );
        let report = RunReport {
            command: "check".into(),
            rows: 10,
            k: 3,
            p: 2,
            ts: Some(2),
            satisfied: Some(true),
            node: Some("<1, 1>".into()),
            search: Some(SearchStats {
                lattice_nodes: 6,
                nodes_evaluated: 2,
                nodes_passed: 1,
                rejected_k: 1,
                ..Default::default()
            }),
            telemetry: Some(obs.telemetry()),
            wall_ns: 1234,
        };
        let parsed = JsonValue::parse(&report.to_json().to_json_pretty()).unwrap();
        assert_eq!(
            parsed.require("command").unwrap().as_str().unwrap(),
            "check"
        );
        let search = parsed.require("search").unwrap();
        let stage_total = search
            .require("rejected_condition1")
            .unwrap()
            .as_u64()
            .unwrap()
            + search
                .require("rejected_condition2")
                .unwrap()
                .as_u64()
                .unwrap()
            + search.require("rejected_k").unwrap().as_u64().unwrap()
            + search
                .require("rejected_detailed")
                .unwrap()
                .as_u64()
                .unwrap()
            + search.require("nodes_passed").unwrap().as_u64().unwrap();
        assert_eq!(
            stage_total,
            search.require("nodes_evaluated").unwrap().as_u64().unwrap()
        );
        // Telemetry stage counts sum to its nodes_checked total.
        let telemetry = parsed.require("telemetry").unwrap();
        let stage_nodes: u64 = telemetry
            .require("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.require("nodes").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(
            stage_nodes,
            telemetry
                .require("nodes_checked")
                .unwrap()
                .as_u64()
                .unwrap()
        );
    }

    #[test]
    fn absent_fields_render_as_null() {
        let report = RunReport {
            command: "analyze".into(),
            rows: 0,
            k: 1,
            p: 1,
            ts: None,
            satisfied: None,
            node: None,
            search: None,
            telemetry: None,
            wall_ns: 0,
        };
        let parsed = JsonValue::parse(&report.to_json().to_json()).unwrap();
        assert!(matches!(parsed.require("ts").unwrap(), JsonValue::Null));
        assert!(matches!(parsed.require("search").unwrap(), JsonValue::Null));
    }
}
