//! Machine-readable run reports: the JSON artifact the CLI's `--report`
//! flag emits.
//!
//! A [`RunReport`] bundles the request parameters, the verdict, the search's
//! [`SearchStats`] counters, and the [`Telemetry`] collected by a
//! [`psens_core::RecordingObserver`] — everything needed to reproduce the
//! paper's Table 7/8 pruning-efficiency numbers from a single file (see
//! EXPERIMENTS.md) and to scrape timings in a service deployment. The schema
//! is documented in DESIGN.md.

use crate::stats::SearchStats;
use psens_core::Telemetry;
use psens_microdata::JsonValue;

/// The `termination` section of a [`RunReport`]: how a budget-bounded run
/// ended and which limits were in force. Present whenever the command ran
/// under a [`psens_core::SearchBudget`] — including completed runs, so
/// consumers can distinguish "no budget support" from "budgeted, finished".
#[derive(Debug, Clone)]
pub struct TerminationReport {
    /// Machine-readable cause: `completed`, `deadline_exceeded`,
    /// `node_budget_exhausted`, or `cancelled`
    /// ([`psens_core::Termination::as_str`]).
    pub reason: String,
    /// The `--timeout` limit in seconds, when one was set.
    pub timeout_secs: Option<u64>,
    /// The `--max-nodes` limit, when one was set.
    pub max_nodes: Option<u64>,
    /// Height-bounded searches only: every lattice height below this is
    /// proven to hold no satisfying node. Exact on completed runs; a lower
    /// bound on interrupted ones.
    pub proven_min_height: Option<usize>,
}

impl TerminationReport {
    /// Renders the section as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set("reason", JsonValue::Str(self.reason.clone()));
        out.set(
            "timeout_secs",
            match self.timeout_secs {
                Some(s) => JsonValue::Int(s as i64),
                None => JsonValue::Null,
            },
        );
        out.set(
            "max_nodes",
            match self.max_nodes {
                Some(n) => JsonValue::Int(n as i64),
                None => JsonValue::Null,
            },
        );
        out.set(
            "proven_min_height",
            match self.proven_min_height {
                Some(h) => JsonValue::Int(h as i64),
                None => JsonValue::Null,
            },
        );
        out
    }
}

/// One CLI run's machine-readable summary.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The command that produced the report (`check`, `analyze`,
    /// `anonymize`).
    pub command: String,
    /// Rows in the input microdata.
    pub rows: usize,
    /// Requested group size k.
    pub k: u32,
    /// Requested sensitivity p.
    pub p: u32,
    /// Suppression threshold TS, when the command takes one.
    pub ts: Option<usize>,
    /// The verdict, when the command produces one (`check`: property holds;
    /// `anonymize`: a masking was found).
    pub satisfied: Option<bool>,
    /// The winning lattice node, when a search produced one.
    pub node: Option<String>,
    /// Search work counters, when a lattice search ran.
    pub search: Option<SearchStats>,
    /// Observer telemetry (per-stage/per-height timings).
    pub telemetry: Option<Telemetry>,
    /// How a budget-bounded run ended (`None` for commands that do not run
    /// under a budget).
    pub termination: Option<TerminationReport>,
    /// End-to-end wall-clock time of the command, nanoseconds.
    pub wall_ns: u64,
}

impl RunReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set("command", JsonValue::Str(self.command.clone()));
        out.set("rows", JsonValue::Int(self.rows as i64));
        out.set("k", JsonValue::Int(i64::from(self.k)));
        out.set("p", JsonValue::Int(i64::from(self.p)));
        out.set(
            "ts",
            match self.ts {
                Some(ts) => JsonValue::Int(ts as i64),
                None => JsonValue::Null,
            },
        );
        out.set(
            "satisfied",
            match self.satisfied {
                Some(s) => JsonValue::Bool(s),
                None => JsonValue::Null,
            },
        );
        out.set(
            "node",
            match &self.node {
                Some(n) => JsonValue::Str(n.clone()),
                None => JsonValue::Null,
            },
        );
        out.set(
            "search",
            match &self.search {
                Some(stats) => stats.to_json(),
                None => JsonValue::Null,
            },
        );
        out.set(
            "telemetry",
            match &self.telemetry {
                Some(t) => t.to_json(),
                None => JsonValue::Null,
            },
        );
        out.set(
            "termination",
            match &self.termination {
                Some(t) => t.to_json(),
                None => JsonValue::Null,
            },
        );
        out.set("wall_ns", JsonValue::Int(self.wall_ns as i64));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_core::{RecordingObserver, SearchObserver};

    #[test]
    fn report_json_roundtrips_and_sums() {
        let obs = RecordingObserver::new();
        obs.node_checked(
            1,
            psens_core::CheckStage::Passed,
            2,
            std::time::Duration::from_nanos(7),
        );
        obs.node_checked(
            0,
            psens_core::CheckStage::KAnonymity,
            0,
            std::time::Duration::from_nanos(3),
        );
        let report = RunReport {
            command: "check".into(),
            rows: 10,
            k: 3,
            p: 2,
            ts: Some(2),
            satisfied: Some(true),
            node: Some("<1, 1>".into()),
            search: Some(SearchStats {
                lattice_nodes: 6,
                nodes_evaluated: 2,
                nodes_passed: 1,
                rejected_k: 1,
                ..Default::default()
            }),
            telemetry: Some(obs.telemetry()),
            termination: Some(TerminationReport {
                reason: "completed".into(),
                timeout_secs: None,
                max_nodes: Some(100),
                proven_min_height: Some(1),
            }),
            wall_ns: 1234,
        };
        let parsed = JsonValue::parse(&report.to_json().to_json_pretty()).unwrap();
        assert_eq!(
            parsed.require("command").unwrap().as_str().unwrap(),
            "check"
        );
        let search = parsed.require("search").unwrap();
        let stage_total = search
            .require("rejected_condition1")
            .unwrap()
            .as_u64()
            .unwrap()
            + search
                .require("rejected_condition2")
                .unwrap()
                .as_u64()
                .unwrap()
            + search.require("rejected_k").unwrap().as_u64().unwrap()
            + search
                .require("rejected_detailed")
                .unwrap()
                .as_u64()
                .unwrap()
            + search.require("nodes_passed").unwrap().as_u64().unwrap();
        assert_eq!(
            stage_total,
            search.require("nodes_evaluated").unwrap().as_u64().unwrap()
        );
        // Telemetry stage counts sum to its nodes_checked total.
        let telemetry = parsed.require("telemetry").unwrap();
        let stage_nodes: u64 = telemetry
            .require("stages")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|s| s.require("nodes").unwrap().as_u64().unwrap())
            .sum();
        assert_eq!(
            stage_nodes,
            telemetry
                .require("nodes_checked")
                .unwrap()
                .as_u64()
                .unwrap()
        );
    }

    #[test]
    fn absent_fields_render_as_null() {
        let report = RunReport {
            command: "analyze".into(),
            rows: 0,
            k: 1,
            p: 1,
            ts: None,
            satisfied: None,
            node: None,
            search: None,
            telemetry: None,
            termination: None,
            wall_ns: 0,
        };
        let parsed = JsonValue::parse(&report.to_json().to_json()).unwrap();
        assert!(matches!(parsed.require("ts").unwrap(), JsonValue::Null));
        assert!(matches!(parsed.require("search").unwrap(), JsonValue::Null));
        assert!(matches!(
            parsed.require("termination").unwrap(),
            JsonValue::Null
        ));
    }

    #[test]
    fn termination_section_renders_reason_and_limits() {
        let section = TerminationReport {
            reason: "deadline_exceeded".into(),
            timeout_secs: Some(5),
            max_nodes: None,
            proven_min_height: Some(3),
        };
        let parsed = JsonValue::parse(&section.to_json().to_json()).unwrap();
        assert_eq!(
            parsed.require("reason").unwrap().as_str().unwrap(),
            "deadline_exceeded"
        );
        assert_eq!(parsed.require("timeout_secs").unwrap().as_u64().unwrap(), 5);
        assert!(matches!(
            parsed.require("max_nodes").unwrap(),
            JsonValue::Null
        ));
        assert_eq!(
            parsed
                .require("proven_min_height")
                .unwrap()
                .as_u64()
                .unwrap(),
            3
        );
    }
}
