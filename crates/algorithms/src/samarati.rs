//! Samarati's binary search for a (p-)k-minimal generalization, and the
//! paper's **Algorithm 3** extension with the two necessary conditions.
//!
//! The search exploits monotonicity: if a node satisfies the property, so
//! does every node above it [19]. Binary search on *height* therefore finds
//! the smallest height at which some node satisfies; any satisfying node at
//! that height is a minimal generalization. Algorithm 3 adds, underlined in
//! the paper: an up-front Condition 1 abort, and a per-node Condition 2 skip
//! that avoids the detailed scan for nodes with too many QI-groups.

use crate::stats::SearchStats;
use crate::tuning::Tuning;
use psens_core::budget::BudgetState;
use psens_core::conditions::ConfidentialStats;
use psens_core::evaluator::{EvalContext, NodeEvaluator};
use psens_core::masking::MaskingContext;
use psens_core::{ModelSpec, NoopObserver, SearchBudget, SearchObserver, Termination};
use psens_hierarchy::{Lattice, Node, QiSpace};
use psens_microdata::Table;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Whether Algorithm 3's necessary-condition pruning is active — the ablation
/// knob for the paper's future-work comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pruning {
    /// Plain Samarati + Algorithm 1: every candidate gets the full check.
    None,
    /// Algorithm 3: Condition 1 aborts, Condition 2 skips candidates.
    NecessaryConditions,
}

/// Result of a lattice search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// A minimal satisfying node, or `None` when the property is
    /// unachievable (even the lattice top fails). On an interrupted run
    /// this is the best feasible node proven so far (anytime behaviour) —
    /// satisfying, but not necessarily minimal.
    pub node: Option<Node>,
    /// The masked microdata at `node` (generalized + suppressed).
    pub masked: Option<Table>,
    /// Number of tuples suppressed at `node`.
    pub suppressed: usize,
    /// Tightest proven lower bound on the minimal satisfiable height: every
    /// height below this is proven to hold no satisfying node (a failed
    /// probe at height `h` rules out all heights `<= h` by monotonicity).
    /// On a completed run this equals the found node's height, or
    /// `lattice.height() + 1` when the instance is unsatisfiable; on an
    /// interrupted run it is the bound established before the budget
    /// tripped.
    pub proven_min_height: usize,
    /// Work counters.
    pub stats: SearchStats,
    /// How the search ended. `node`/`proven_min_height` are exact iff this
    /// is [`Termination::Completed`].
    pub termination: Termination,
}

/// Confidential statistics that disable both necessary conditions — used to
/// run the unpruned baseline through the same code path.
fn unbounded_stats(n: usize) -> ConfidentialStats {
    ConfidentialStats {
        n,
        per_attribute: Vec::new(),
        cf: Vec::new(),
    }
}

/// Finds a **k-minimal generalization with suppression threshold** `ts`
/// (Samarati [19]): binary search over heights for the lowest node whose
/// masked microdata is k-anonymous after suppressing at most `ts` tuples.
pub fn k_minimal_generalization(
    initial: &Table,
    qi: &QiSpace,
    k: u32,
    ts: usize,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    // k-anonymity alone is p-sensitive k-anonymity with p = 1.
    search(
        initial,
        qi,
        ModelSpec::PSensitiveK { p: 1 },
        k,
        ts,
        Pruning::None,
        &SearchBudget::unlimited(),
        Tuning::default(),
        &NoopObserver,
        None,
    )
}

/// The paper's **Algorithm 3**: finds a **p-k-minimal generalization**
/// (Definition 3) by binary search, optionally pruned by the two necessary
/// conditions.
pub fn pk_minimal_generalization(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    pruning: Pruning,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    search(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        pruning,
        &SearchBudget::unlimited(),
        Tuning::default(),
        &NoopObserver,
        None,
    )
}

/// [`pk_minimal_generalization`], reporting search events (height probes,
/// node checks, winner materializations) to `observer`. With a
/// [`NoopObserver`] this monomorphizes to the unobserved search.
pub fn pk_minimal_generalization_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    pruning: Pruning,
    observer: &O,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    search(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        pruning,
        &SearchBudget::unlimited(),
        Tuning::default(),
        observer,
        None,
    )
}

/// [`pk_minimal_generalization_observed`] under a [`SearchBudget`]. An
/// interrupted search is *anytime*: it returns the best satisfying node
/// proven so far (if any probe succeeded) together with the tightest height
/// bound proven by the failed probes, labelled by `termination`.
#[allow(clippy::too_many_arguments)]
pub fn pk_minimal_generalization_budgeted<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    pruning: Pruning,
    budget: &SearchBudget,
    observer: &O,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    search(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        pruning,
        budget,
        Tuning::default(),
        observer,
        None,
    )
}

/// [`pk_minimal_generalization_budgeted`] with execution [`Tuning`]: a
/// worker-thread count for the per-height probes and an optional shared
/// [`psens_core::verdict::VerdictStore`].
///
/// With multiple threads each probed stratum is chunked across scoped
/// workers; every worker stops at its chunk's first satisfier, and the
/// lowest-index hit wins, so the returned node (and `proven_min_height`)
/// is identical to the serial search for any thread count. A panicked
/// worker's chunk is re-run on the calling thread (tallied in
/// `worker_failures`) — dropping it could hide a satisfier and falsify the
/// height bound.
#[allow(clippy::too_many_arguments)]
pub fn pk_minimal_generalization_tuned<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    pruning: Pruning,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    search(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        pruning,
        budget,
        tuning,
        observer,
        None,
    )
}

/// [`pk_minimal_generalization_tuned`] generalized over the pluggable
/// privacy models: finds a minimal generalization whose masked microdata is
/// k-anonymous within `ts` suppressions **and** satisfies `spec` in every
/// surviving QI-group. `ModelSpec::PSensitiveK` reproduces the p-sensitive
/// search bit-for-bit; the other models swap the per-group verdict while
/// keeping the paper's search skeleton (Condition 1 aborts through each
/// model's [`ModelSpec::conditions_p`] implication).
#[allow(clippy::too_many_arguments)]
pub fn pk_minimal_generalization_model<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    pruning: Pruning,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    search(
        initial, qi, spec, k, ts, pruning, budget, tuning, observer, None,
    )
}

/// [`pk_minimal_generalization_model`] with caller-supplied confidential
/// statistics, skipping the from-scratch [`ConfidentialStats`] recompute.
/// The incremental update path maintains these statistics across deltas
/// (`psens-core::incremental::LiveTable::stats`) byte-identically to
/// [`ConfidentialStats::compute`], so supplying them changes nothing but
/// the startup cost; passing statistics that do not match `initial` is a
/// logic error and yields unspecified verdicts.
#[allow(clippy::too_many_arguments)]
pub fn pk_minimal_generalization_model_with_stats<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    pruning: Pruning,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
    stats: &ConfidentialStats,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    search(
        initial,
        qi,
        spec,
        k,
        ts,
        pruning,
        budget,
        tuning,
        observer,
        Some(stats),
    )
}

#[allow(clippy::too_many_arguments)]
fn search<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    pruning: Pruning,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
    precomputed: Option<&ConfidentialStats>,
) -> Result<SearchOutcome, psens_hierarchy::Error> {
    // Every model's group verdict implies p-sensitivity at `conditions_p`,
    // which is what keeps Conditions 1-2 (and winner materialization) sound
    // below.
    let p = spec.conditions_p();
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p,
        ts,
    };
    let mut stats = SearchStats {
        requested_threads: tuning.threads,
        effective_threads: tuning.effective_threads(),
        ..Default::default()
    };
    let real_stats = match precomputed {
        Some(stats) => stats.clone(),
        None => ctx.initial_stats(),
    };
    let check_stats = match pruning {
        Pruning::NecessaryConditions => real_stats.clone(),
        Pruning::None => unbounded_stats(initial.n_rows()),
    };

    let lattice = qi.lattice();

    // Algorithm 3: "first necessary condition can be checked from the
    // beginning" — one comparison settles unsatisfiable instances.
    if pruning == Pruning::NecessaryConditions && !real_stats.condition1(p) {
        stats.aborted_condition1 = true;
        return Ok(SearchOutcome {
            node: None,
            masked: None,
            suppressed: 0,
            // Condition 1 is height-independent: no height can satisfy.
            proven_min_height: lattice.height() + 1,
            stats,
            termination: Termination::Completed,
        });
    }

    stats.lattice_nodes = lattice.node_count();
    // Candidate nodes run through the code-mapped kernel; a table is
    // materialized only for each probe's winning node.
    let ectx = tuning
        .configure(psens_core::evaluator::EvalContext::build_observed(
            &ctx, observer,
        )?)
        .with_model(spec);
    let mut eval = ectx.evaluator();
    let state = budget.start();
    let mut low = 0usize;
    let mut high = lattice.height();
    let mut best: Option<(Node, Table, usize)> = None;

    // Monotonicity makes "some node at height h satisfies" monotone in h, so
    // binary search converges on the minimal satisfiable height. Invariant:
    // every height `< low` has been proven infeasible by a failed probe, and
    // `best` (when set) is a satisfying node at height `high`.
    'search: {
        while low < high {
            let try_height = (low + high) / 2;
            stats.heights_probed.push(try_height);
            observer.height_entered(try_height);
            let found = probe_height(
                &ctx,
                &ectx,
                &mut eval,
                &lattice,
                try_height,
                &check_stats,
                &state,
                tuning,
                &mut stats,
                observer,
            )?;
            match found {
                ControlFlow::Break(_) => break 'search,
                ControlFlow::Continue(Some(hit)) => {
                    best = Some(hit);
                    high = try_height;
                }
                ControlFlow::Continue(None) => low = try_height + 1,
            }
        }
        // `low == high`: verify the final height (binary search never probes
        // the initial `high`, and for unsatisfiable instances no height
        // works).
        if best.as_ref().map(|(n, _, _)| n.height()) != Some(low) {
            stats.heights_probed.push(low);
            observer.height_entered(low);
            match probe_height(
                &ctx,
                &ectx,
                &mut eval,
                &lattice,
                low,
                &check_stats,
                &state,
                tuning,
                &mut stats,
                observer,
            )? {
                ControlFlow::Break(_) => break 'search,
                ControlFlow::Continue(Some(hit)) => best = Some(hit),
                // A complete failed probe at `low` rules that height out too
                // (here `low == lattice.height()`: proven unsatisfiable).
                ControlFlow::Continue(None) => low += 1,
            }
        }
    }

    Ok(match best {
        Some((node, masked, suppressed)) => SearchOutcome {
            node: Some(node),
            masked: Some(masked),
            suppressed,
            proven_min_height: low,
            stats,
            termination: state.termination(),
        },
        None => SearchOutcome {
            node: None,
            masked: None,
            suppressed: 0,
            proven_min_height: low,
            stats,
            termination: state.termination(),
        },
    })
}

/// A probe's hit: the satisfying node, its masked table, and the suppressed
/// tuple count.
type ProbeHit = (Node, Table, usize);

/// Evaluates the nodes of one lattice stratum; returns the first satisfier,
/// materializing its masked table (candidates that fail cost no tables).
/// Breaks as soon as the budget refuses a node admission — an interrupted
/// probe proves nothing about its height.
///
/// With `tuning.threads > 1` the stratum is chunked across scoped workers;
/// serial and parallel probes return the same node (the lowest-index
/// satisfier), the serial path keeping its historical stats bit-for-bit.
#[allow(clippy::too_many_arguments)]
fn probe_height<O: SearchObserver>(
    ctx: &MaskingContext<'_>,
    ectx: &EvalContext,
    eval: &mut NodeEvaluator<'_>,
    lattice: &Lattice,
    height: usize,
    check_stats: &ConfidentialStats,
    state: &BudgetState,
    tuning: Tuning<'_>,
    stats: &mut SearchStats,
    observer: &O,
) -> Result<ControlFlow<Termination, Option<ProbeHit>>, psens_hierarchy::Error> {
    let nodes = lattice.nodes_at_height(height);
    if tuning.effective_threads() == 1 {
        for node in nodes {
            let cc =
                match eval.check_cached(&node, check_stats, state, tuning.cache, true, observer)? {
                    ControlFlow::Break(cause) => return Ok(ControlFlow::Break(cause)),
                    ControlFlow::Continue(cc) => cc,
                };
            stats.record_cached(&cc);
            if cc.satisfied {
                let outcome = ctx.evaluate_observed(&node, check_stats, observer)?;
                return Ok(ControlFlow::Continue(Some((
                    node,
                    outcome.masked,
                    outcome.suppressed,
                ))));
            }
        }
        return Ok(ControlFlow::Continue(None));
    }

    let winner =
        match probe_stratum_parallel(ectx, &nodes, check_stats, state, tuning, stats, observer)? {
            ControlFlow::Break(cause) => return Ok(ControlFlow::Break(cause)),
            ControlFlow::Continue(winner) => winner,
        };
    match winner {
        Some(ix) => {
            let node = nodes[ix].clone();
            let outcome = ctx.evaluate_observed(&node, check_stats, observer)?;
            Ok(ControlFlow::Continue(Some((
                node,
                outcome.masked,
                outcome.suppressed,
            ))))
        }
        None => Ok(ControlFlow::Continue(None)),
    }
}

/// Chunk-level result of a parallel probe worker: the chunk's first
/// satisfier (as a stratum-wide node index), whether the budget tripped
/// mid-chunk, and the worker's private stats.
type ProbeChunk = Result<(Option<usize>, bool, SearchStats), psens_hierarchy::Error>;

/// Evaluates one stratum across `tuning.threads` scoped workers sharing the
/// budget, the observer, and (when present) the verdict store. Returns the
/// stratum index of the lexicographically first satisfier.
///
/// Fault isolation differs from the exhaustive scan's: a panicked chunk is
/// **re-run serially** on the calling thread instead of dropped, because a
/// lost chunk could hide the only satisfier at this height and unsoundly
/// extend the proven lower bound. The panic is still counted in
/// `worker_failures`; a deterministic panic simply resurfaces on the re-run.
fn probe_stratum_parallel<O: SearchObserver>(
    ectx: &EvalContext,
    nodes: &[Node],
    check_stats: &ConfidentialStats,
    state: &BudgetState,
    tuning: Tuning<'_>,
    stats: &mut SearchStats,
    observer: &O,
) -> Result<ControlFlow<Termination, Option<usize>>, psens_hierarchy::Error> {
    let chunk_size = nodes.len().div_ceil(tuning.effective_threads()).max(1);
    let cache = tuning.cache;
    // Each worker walks its chunk in node order and may stop at its first
    // in-chunk satisfier: the global minimum over chunk-first hits is the
    // stratum's lexicographically first satisfier, which is what the serial
    // probe returns.
    let run_chunk = |start: usize, chunk: &[Node]| -> ProbeChunk {
        let mut eval = ectx.evaluator();
        let mut part = SearchStats::default();
        let mut hit = None;
        let mut tripped = false;
        for (i, node) in chunk.iter().enumerate() {
            match eval.check_cached(node, check_stats, state, cache, true, observer)? {
                ControlFlow::Break(_) => {
                    tripped = true;
                    break;
                }
                ControlFlow::Continue(cc) => {
                    part.record_cached(&cc);
                    if cc.satisfied {
                        hit = Some(start + i);
                        break;
                    }
                }
            }
        }
        Ok((hit, tripped, part))
    };

    let partials: Vec<(usize, &[Node], Option<ProbeChunk>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| {
                let run_chunk = &run_chunk;
                let start = ci * chunk_size;
                let handle = scope
                    .spawn(move || catch_unwind(AssertUnwindSafe(|| run_chunk(start, chunk))).ok());
                (start, chunk, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(start, chunk, handle)| {
                let joined = handle.join().expect("worker panics are caught inside");
                (start, chunk, joined)
            })
            .collect()
    });

    let mut winner: Option<usize> = None;
    let mut any_tripped = false;
    for (start, chunk, partial) in partials {
        let outcome = match partial {
            Some(outcome) => outcome,
            None => {
                // Sound recovery: replay the lost chunk here, letting a
                // deterministic panic propagate the second time.
                stats.worker_failures += 1;
                run_chunk(start, chunk)
            }
        };
        let (hit, tripped, part) = outcome?;
        stats.merge(&part);
        any_tripped |= tripped;
        if let Some(ix) = hit {
            winner = Some(winner.map_or(ix, |w| w.min(ix)));
        }
    }
    if any_tripped {
        // An interrupted probe proves nothing about this height; the latched
        // cause is reported like a serial admission refusal.
        return Ok(ControlFlow::Break(state.termination()));
    }
    Ok(ControlFlow::Continue(winner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::hierarchies::figure2_qi_space;
    use psens_datasets::paper::figure3_microdata;

    /// The paper's Table 4: expected 3-minimal generalizations by TS.
    /// (Binary search returns *one* of them.)
    fn table4_expected(ts: usize) -> Vec<Node> {
        match ts {
            0 | 1 => vec![Node(vec![0, 2])],
            2..=6 => vec![Node(vec![0, 2]), Node(vec![1, 1])],
            7..=9 => vec![Node(vec![1, 0]), Node(vec![0, 1])],
            10 => vec![Node(vec![0, 0])],
            _ => unreachable!(),
        }
    }

    #[test]
    fn binary_search_reproduces_table4_heights() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for ts in 0..=10usize {
            let outcome = k_minimal_generalization(&im, &qi, 3, ts).unwrap();
            let node = outcome.node.expect("3-anonymity is achievable");
            let expected = table4_expected(ts);
            assert!(
                expected.contains(&node),
                "TS={ts}: got {node}, expected one of {expected:?}"
            );
            // All expected nodes share a height; ours must match it.
            assert_eq!(node.height(), expected[0].height(), "TS={ts}");
        }
    }

    #[test]
    fn masked_output_is_k_anonymous() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = k_minimal_generalization(&im, &qi, 3, 2).unwrap();
        let masked = outcome.masked.unwrap();
        let keys = masked.schema().key_indices();
        assert!(psens_core::is_k_anonymous(&masked, &keys, 3));
        assert!(outcome.suppressed <= 2);
    }

    #[test]
    fn pk_search_finds_sensitive_node() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        // p = 2: groups must carry >= 2 illnesses.
        for pruning in [Pruning::None, Pruning::NecessaryConditions] {
            let outcome = pk_minimal_generalization(&im, &qi, 2, 2, 0, pruning).unwrap();
            assert!(outcome.node.is_some(), "achievable");
            let masked = outcome.masked.unwrap();
            let keys = masked.schema().key_indices();
            let conf = masked.schema().confidential_indices();
            assert!(psens_core::is_p_sensitive_k_anonymous(
                &masked, &keys, &conf, 2, 2
            ));
        }
    }

    #[test]
    fn pruned_and_unpruned_agree_on_node_height() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for p in 1..=3u32 {
            for k in [2u32, 3] {
                for ts in [0usize, 2, 5] {
                    let a = pk_minimal_generalization(&im, &qi, p, k, ts, Pruning::None).unwrap();
                    let b =
                        pk_minimal_generalization(&im, &qi, p, k, ts, Pruning::NecessaryConditions)
                            .unwrap();
                    assert_eq!(
                        a.node.as_ref().map(Node::height),
                        b.node.as_ref().map(Node::height),
                        "p={p} k={k} ts={ts}"
                    );
                }
            }
        }
    }

    #[test]
    fn condition1_aborts_impossible_p() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        // Illness has 3 distinct values; p = 4 is impossible.
        let outcome =
            pk_minimal_generalization(&im, &qi, 4, 2, 0, Pruning::NecessaryConditions).unwrap();
        assert!(outcome.node.is_none());
        assert!(outcome.stats.aborted_condition1);
        assert_eq!(outcome.stats.nodes_evaluated, 0);
        // The unpruned search grinds through the lattice to learn the same.
        let outcome = pk_minimal_generalization(&im, &qi, 4, 2, 0, Pruning::None).unwrap();
        assert!(outcome.node.is_none());
        assert!(outcome.stats.nodes_evaluated > 0);
    }

    #[test]
    fn unsatisfiable_k_returns_none() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        // k = 11 with 10 tuples and TS = 0 cannot hold even at the top.
        let outcome = k_minimal_generalization(&im, &qi, 11, 0).unwrap();
        assert!(outcome.node.is_none());
    }

    #[test]
    fn stats_record_probes() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = k_minimal_generalization(&im, &qi, 3, 0).unwrap();
        assert!(!outcome.stats.heights_probed.is_empty());
        assert!(outcome.stats.nodes_evaluated >= 1);
    }

    #[test]
    fn completed_runs_prove_the_minimal_height() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for ts in 0..=10usize {
            let outcome = k_minimal_generalization(&im, &qi, 3, ts).unwrap();
            assert_eq!(outcome.termination, Termination::Completed);
            assert_eq!(
                Some(outcome.proven_min_height),
                outcome.node.as_ref().map(Node::height),
                "TS={ts}"
            );
        }
        // Unsatisfiable: the bound walks past the lattice top.
        let outcome = k_minimal_generalization(&im, &qi, 11, 0).unwrap();
        assert_eq!(outcome.termination, Termination::Completed);
        assert_eq!(outcome.proven_min_height, qi.lattice().height() + 1);
    }

    #[test]
    fn node_budget_interrupts_with_a_sound_bound() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let full = k_minimal_generalization(&im, &qi, 3, 0).unwrap();
        let minimal_height = full.node.unwrap().height();
        for max_nodes in 0..full.stats.nodes_evaluated as u64 {
            let budget = SearchBudget::unlimited().with_max_nodes(max_nodes);
            let outcome = pk_minimal_generalization_budgeted(
                &im,
                &qi,
                1,
                3,
                0,
                Pruning::None,
                &budget,
                &NoopObserver,
            )
            .unwrap();
            assert_eq!(outcome.termination, Termination::NodeBudgetExhausted);
            assert!(outcome.stats.nodes_evaluated as u64 <= max_nodes);
            // The bound never overshoots the true answer, and any
            // best-so-far node genuinely satisfies.
            assert!(outcome.proven_min_height <= minimal_height);
            if let Some(masked) = &outcome.masked {
                let keys = masked.schema().key_indices();
                assert!(psens_core::is_k_anonymous(masked, &keys, 3));
            }
        }
    }

    #[test]
    fn cancelled_before_start_returns_cancelled() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let token = psens_core::CancelToken::new();
        token.cancel();
        let budget = SearchBudget::unlimited()
            .with_cancel(token)
            .with_check_interval(1);
        let outcome = pk_minimal_generalization_budgeted(
            &im,
            &qi,
            1,
            3,
            0,
            Pruning::None,
            &budget,
            &NoopObserver,
        )
        .unwrap();
        assert_eq!(outcome.termination, Termination::Cancelled);
        assert!(outcome.node.is_none());
        assert_eq!(outcome.proven_min_height, 0);
    }
}
