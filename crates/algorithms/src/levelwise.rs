//! Incognito-style bottom-up level-wise search [12].
//!
//! LeFevre et al.'s Incognito enumerates the lattice breadth-first from the
//! bottom, exploiting the *generalization property* (rollup): once a node is
//! known to satisfy the property, every ancestor satisfies it too and need
//! never be evaluated. Unlike binary search it finds **all** minimal nodes,
//! evaluating only the "frontier" below and at the minimal boundary.
//!
//! As in the paper's Algorithm 3, the per-node check is Algorithm 2, so the
//! two necessary conditions prune candidates here as well.

use crate::stats::SearchStats;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{NoopObserver, SearchBudget, SearchObserver, Termination};
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::hash::FxHashSet;
use psens_microdata::Table;
use std::ops::ControlFlow;

/// Result of the level-wise search.
#[derive(Debug, Clone)]
pub struct LevelWiseOutcome {
    /// All (p-)k-minimal generalizations, in ascending height order.
    /// Every listed node is genuinely minimal even on an interrupted run
    /// (its children were all evaluated before it); the list is *complete*
    /// only for heights up to [`LevelWiseOutcome::completed_height`].
    pub minimal: Vec<Node>,
    /// Highest lattice height whose stratum was fully evaluated; `minimal`
    /// provably contains every minimal node at or below it. `None` when the
    /// budget tripped inside height 0; `Some(lattice.height())` on a
    /// completed run.
    pub completed_height: Option<usize>,
    /// Work counters.
    pub stats: SearchStats,
    /// How the search ended.
    pub termination: Termination,
}

/// Bottom-up search for all minimal satisfying nodes.
///
/// Relies on the same monotonicity assumption as Samarati's binary search
/// and the paper's Algorithm 3: a node dominated by a satisfying node also
/// satisfies.
pub fn levelwise_minimal(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    levelwise_minimal_observed(initial, qi, p, k, ts, &NoopObserver)
}

/// [`levelwise_minimal`], reporting search events to `observer`. With a
/// [`NoopObserver`] this monomorphizes to the unobserved search.
pub fn levelwise_minimal_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    observer: &O,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    levelwise_minimal_budgeted(initial, qi, p, k, ts, &SearchBudget::unlimited(), observer)
}

/// [`levelwise_minimal_observed`] under a [`SearchBudget`]. Heights are
/// processed bottom-up, so an interrupted search is *anytime*: every node in
/// `minimal` is correct, and the set is complete through `completed_height`.
#[allow(clippy::too_many_arguments)]
pub fn levelwise_minimal_budgeted<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    observer: &O,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p,
        ts,
    };
    let stats_im = ctx.initial_stats();
    let lattice = qi.lattice();
    let mut stats = SearchStats {
        lattice_nodes: lattice.node_count(),
        ..Default::default()
    };

    // Condition 1 settles unsatisfiable p before any lattice work.
    if !stats_im.condition1(p) {
        stats.aborted_condition1 = true;
        return Ok(LevelWiseOutcome {
            minimal: Vec::new(),
            // The empty answer is exact, no stratum needed evaluation.
            completed_height: Some(lattice.height()),
            stats,
            termination: Termination::Completed,
        });
    }

    let ectx = EvalContext::build_observed(&ctx, observer)?;
    let mut eval = ectx.evaluator();
    let state = budget.start();
    let mut satisfying: FxHashSet<Node> = FxHashSet::default();
    let mut minimal = Vec::new();
    let mut completed_height = None;
    'levels: for height in 0..=lattice.height() {
        stats.heights_probed.push(height);
        observer.height_entered(height);
        for node in lattice.nodes_at_height(height) {
            // Rollup: a satisfied child implies this node satisfies; it is
            // then satisfying-but-not-minimal and needs no evaluation.
            let rolled_up = lattice
                .children(&node)
                .iter()
                .any(|child| satisfying.contains(child));
            if rolled_up {
                satisfying.insert(node);
                continue;
            }
            match eval.check_budgeted(&node, &stats_im, &state, observer)? {
                ControlFlow::Break(_) => break 'levels,
                ControlFlow::Continue(outcome) => {
                    stats.nodes_evaluated += 1;
                    stats.record(outcome.stage);
                    if outcome.satisfied {
                        minimal.push(node.clone());
                        satisfying.insert(node);
                    }
                }
            }
        }
        completed_height = Some(height);
    }
    Ok(LevelWiseOutcome {
        minimal,
        completed_height,
        stats,
        termination: state.termination(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_scan;
    use psens_datasets::hierarchies::{adult_qi_space, figure2_qi_space};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn agrees_with_exhaustive_on_table4() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for ts in 0..=10usize {
            let exhaustive = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap();
            let levelwise = levelwise_minimal(&im, &qi, 1, 3, ts).unwrap();
            let mut a = exhaustive.minimal.clone();
            let mut b = levelwise.minimal.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "TS = {ts}");
        }
    }

    #[test]
    fn agrees_with_exhaustive_for_p_sensitivity() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for p in 1..=3u32 {
            for ts in [0usize, 3] {
                let exhaustive = exhaustive_scan(&im, &qi, p, 2, ts).unwrap();
                let levelwise = levelwise_minimal(&im, &qi, p, 2, ts).unwrap();
                let mut a = exhaustive.minimal.clone();
                let mut b = levelwise.minimal.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "p = {p}, TS = {ts}");
            }
        }
    }

    #[test]
    fn rollup_saves_evaluations() {
        // On the Adult lattice (96 nodes) the level-wise search must evaluate
        // strictly fewer nodes than the exhaustive scan whenever minimal
        // nodes sit below the top.
        let im = AdultGenerator::new(42).generate(300);
        let qi = adult_qi_space();
        let levelwise = levelwise_minimal(&im, &qi, 1, 2, 30).unwrap();
        assert!(!levelwise.minimal.is_empty());
        assert!(
            levelwise.stats.nodes_evaluated < 96,
            "rollup should skip ancestors ({} evaluated)",
            levelwise.stats.nodes_evaluated
        );
    }

    #[test]
    fn impossible_p_aborts() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = levelwise_minimal(&im, &qi, 9, 2, 0).unwrap();
        assert!(outcome.minimal.is_empty());
        assert!(outcome.stats.aborted_condition1);
        assert_eq!(outcome.stats.nodes_evaluated, 0);
        assert_eq!(outcome.termination, Termination::Completed);
        assert_eq!(outcome.completed_height, Some(qi.lattice().height()));
    }

    #[test]
    fn interrupted_minimal_set_is_a_sound_prefix() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let full = levelwise_minimal(&im, &qi, 1, 3, 4).unwrap();
        assert_eq!(full.termination, Termination::Completed);
        assert_eq!(full.completed_height, Some(qi.lattice().height()));
        for max_nodes in 0..full.stats.nodes_evaluated as u64 {
            let budget = SearchBudget::unlimited().with_max_nodes(max_nodes);
            let outcome =
                levelwise_minimal_budgeted(&im, &qi, 1, 3, 4, &budget, &NoopObserver).unwrap();
            assert_eq!(outcome.termination, Termination::NodeBudgetExhausted);
            assert!(outcome.stats.nodes_evaluated as u64 <= max_nodes);
            // Anytime guarantee: everything reported minimal really is.
            for node in &outcome.minimal {
                assert!(full.minimal.contains(node), "budget {max_nodes}: {node}");
            }
            // And complete through the completed height.
            if let Some(h) = outcome.completed_height {
                for node in full.minimal.iter().filter(|n| n.height() <= h) {
                    assert!(outcome.minimal.contains(node), "budget {max_nodes}: {node}");
                }
            }
        }
    }
}
