//! Incognito-style bottom-up level-wise search [12].
//!
//! LeFevre et al.'s Incognito enumerates the lattice breadth-first from the
//! bottom, exploiting the *generalization property* (rollup): once a node is
//! known to satisfy the property, every ancestor satisfies it too and need
//! never be evaluated. Unlike binary search it finds **all** minimal nodes,
//! evaluating only the "frontier" below and at the minimal boundary.
//!
//! As in the paper's Algorithm 3, the per-node check is Algorithm 2, so the
//! two necessary conditions prune candidates here as well.

use crate::stats::SearchStats;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{NoopObserver, SearchObserver};
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::hash::FxHashSet;
use psens_microdata::Table;

/// Result of the level-wise search.
#[derive(Debug, Clone)]
pub struct LevelWiseOutcome {
    /// All (p-)k-minimal generalizations, in ascending height order.
    pub minimal: Vec<Node>,
    /// Work counters.
    pub stats: SearchStats,
}

/// Bottom-up search for all minimal satisfying nodes.
///
/// Relies on the same monotonicity assumption as Samarati's binary search
/// and the paper's Algorithm 3: a node dominated by a satisfying node also
/// satisfies.
pub fn levelwise_minimal(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    levelwise_minimal_observed(initial, qi, p, k, ts, &NoopObserver)
}

/// [`levelwise_minimal`], reporting search events to `observer`. With a
/// [`NoopObserver`] this monomorphizes to the unobserved search.
pub fn levelwise_minimal_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    observer: &O,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p,
        ts,
    };
    let stats_im = ctx.initial_stats();
    let lattice = qi.lattice();
    let mut stats = SearchStats {
        lattice_nodes: lattice.node_count(),
        ..Default::default()
    };

    // Condition 1 settles unsatisfiable p before any lattice work.
    if !stats_im.condition1(p) {
        stats.aborted_condition1 = true;
        return Ok(LevelWiseOutcome {
            minimal: Vec::new(),
            stats,
        });
    }

    let ectx = EvalContext::build_observed(&ctx, observer)?;
    let mut eval = ectx.evaluator();
    let mut satisfying: FxHashSet<Node> = FxHashSet::default();
    let mut minimal = Vec::new();
    for height in 0..=lattice.height() {
        stats.heights_probed.push(height);
        observer.height_entered(height);
        for node in lattice.nodes_at_height(height) {
            // Rollup: a satisfied child implies this node satisfies; it is
            // then satisfying-but-not-minimal and needs no evaluation.
            let rolled_up = lattice
                .children(&node)
                .iter()
                .any(|child| satisfying.contains(child));
            if rolled_up {
                satisfying.insert(node);
                continue;
            }
            stats.nodes_evaluated += 1;
            let outcome = eval.check_observed(&node, &stats_im, observer)?;
            stats.record(outcome.stage);
            if outcome.satisfied {
                minimal.push(node.clone());
                satisfying.insert(node);
            }
        }
    }
    Ok(LevelWiseOutcome { minimal, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_scan;
    use psens_datasets::hierarchies::{adult_qi_space, figure2_qi_space};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn agrees_with_exhaustive_on_table4() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for ts in 0..=10usize {
            let exhaustive = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap();
            let levelwise = levelwise_minimal(&im, &qi, 1, 3, ts).unwrap();
            let mut a = exhaustive.minimal.clone();
            let mut b = levelwise.minimal.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "TS = {ts}");
        }
    }

    #[test]
    fn agrees_with_exhaustive_for_p_sensitivity() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for p in 1..=3u32 {
            for ts in [0usize, 3] {
                let exhaustive = exhaustive_scan(&im, &qi, p, 2, ts).unwrap();
                let levelwise = levelwise_minimal(&im, &qi, p, 2, ts).unwrap();
                let mut a = exhaustive.minimal.clone();
                let mut b = levelwise.minimal.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "p = {p}, TS = {ts}");
            }
        }
    }

    #[test]
    fn rollup_saves_evaluations() {
        // On the Adult lattice (96 nodes) the level-wise search must evaluate
        // strictly fewer nodes than the exhaustive scan whenever minimal
        // nodes sit below the top.
        let im = AdultGenerator::new(42).generate(300);
        let qi = adult_qi_space();
        let levelwise = levelwise_minimal(&im, &qi, 1, 2, 30).unwrap();
        assert!(!levelwise.minimal.is_empty());
        assert!(
            levelwise.stats.nodes_evaluated < 96,
            "rollup should skip ancestors ({} evaluated)",
            levelwise.stats.nodes_evaluated
        );
    }

    #[test]
    fn impossible_p_aborts() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = levelwise_minimal(&im, &qi, 9, 2, 0).unwrap();
        assert!(outcome.minimal.is_empty());
        assert!(outcome.stats.aborted_condition1);
        assert_eq!(outcome.stats.nodes_evaluated, 0);
    }
}
