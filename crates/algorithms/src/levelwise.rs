//! Incognito-style bottom-up level-wise search [12].
//!
//! LeFevre et al.'s Incognito enumerates the lattice breadth-first from the
//! bottom, exploiting the *generalization property* (rollup): once a node is
//! known to satisfy the property, every ancestor satisfies it too and need
//! never be evaluated. Unlike binary search it finds **all** minimal nodes,
//! evaluating only the "frontier" below and at the minimal boundary.
//!
//! As in the paper's Algorithm 3, the per-node check is Algorithm 2, so the
//! two necessary conditions prune candidates here as well.

use crate::stats::SearchStats;
use crate::tuning::Tuning;
use psens_core::budget::BudgetState;
use psens_core::conditions::ConfidentialStats;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{ModelSpec, NoopObserver, SearchBudget, SearchObserver, Termination};
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::hash::FxHashSet;
use psens_microdata::Table;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of the level-wise search.
#[derive(Debug, Clone)]
pub struct LevelWiseOutcome {
    /// All (p-)k-minimal generalizations, in ascending height order.
    /// Every listed node is genuinely minimal even on an interrupted run
    /// (its children were all evaluated before it); the list is *complete*
    /// only for heights up to [`LevelWiseOutcome::completed_height`].
    pub minimal: Vec<Node>,
    /// Highest lattice height whose stratum was fully evaluated; `minimal`
    /// provably contains every minimal node at or below it. `None` when the
    /// budget tripped inside height 0; `Some(lattice.height())` on a
    /// completed run.
    pub completed_height: Option<usize>,
    /// Work counters.
    pub stats: SearchStats,
    /// How the search ended.
    pub termination: Termination,
}

/// Bottom-up search for all minimal satisfying nodes.
///
/// Relies on the same monotonicity assumption as Samarati's binary search
/// and the paper's Algorithm 3: a node dominated by a satisfying node also
/// satisfies.
pub fn levelwise_minimal(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    levelwise_minimal_observed(initial, qi, p, k, ts, &NoopObserver)
}

/// [`levelwise_minimal`], reporting search events to `observer`. With a
/// [`NoopObserver`] this monomorphizes to the unobserved search.
pub fn levelwise_minimal_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    observer: &O,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    levelwise_minimal_budgeted(initial, qi, p, k, ts, &SearchBudget::unlimited(), observer)
}

/// [`levelwise_minimal_observed`] under a [`SearchBudget`]. Heights are
/// processed bottom-up, so an interrupted search is *anytime*: every node in
/// `minimal` is correct, and the set is complete through `completed_height`.
#[allow(clippy::too_many_arguments)]
pub fn levelwise_minimal_budgeted<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    observer: &O,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    levelwise_minimal_tuned(initial, qi, p, k, ts, budget, Tuning::default(), observer)
}

/// [`levelwise_minimal_budgeted`] with execution [`Tuning`]: a worker-thread
/// count for per-stratum evaluation and an optional shared
/// [`psens_core::verdict::VerdictStore`].
///
/// Rollup is precomputed on the calling thread before each stratum fans out
/// (children live one height below, so intra-stratum insertions can never
/// change it), workers evaluate the remainder in chunks, and results merge
/// back in node order — the `minimal` set and its order are identical to the
/// serial search for any thread count. A panicked worker's chunk is re-run
/// on the calling thread (tallied in `worker_failures`): dropping it would
/// break the completeness guarantee behind `completed_height`.
#[allow(clippy::too_many_arguments)]
pub fn levelwise_minimal_tuned<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    levelwise_minimal_model(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        budget,
        tuning,
        observer,
    )
}

/// [`levelwise_minimal_tuned`] generalized over the pluggable privacy
/// models. Rollup relies on monotonicity, which every built-in
/// [`ModelSpec`] declares; `ModelSpec::PSensitiveK` reproduces the
/// p-sensitive search bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn levelwise_minimal_model<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<LevelWiseOutcome, psens_hierarchy::Error> {
    let p = spec.conditions_p();
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p,
        ts,
    };
    let stats_im = ctx.initial_stats();
    let lattice = qi.lattice();
    let mut stats = SearchStats {
        lattice_nodes: lattice.node_count(),
        requested_threads: tuning.threads,
        effective_threads: tuning.effective_threads(),
        ..Default::default()
    };

    // Condition 1 settles unsatisfiable p before any lattice work.
    if !stats_im.condition1(p) {
        stats.aborted_condition1 = true;
        return Ok(LevelWiseOutcome {
            minimal: Vec::new(),
            // The empty answer is exact, no stratum needed evaluation.
            completed_height: Some(lattice.height()),
            stats,
            termination: Termination::Completed,
        });
    }

    let ectx = tuning
        .configure(EvalContext::build_observed(&ctx, observer)?)
        .with_model(spec);
    let mut eval = ectx.evaluator();
    let state = budget.start();
    let mut satisfying: FxHashSet<Node> = FxHashSet::default();
    let mut minimal = Vec::new();
    let mut completed_height = None;
    'levels: for height in 0..=lattice.height() {
        stats.heights_probed.push(height);
        observer.height_entered(height);
        // Rollup first: a satisfied child implies a node satisfies, making
        // it satisfying-but-not-minimal with no evaluation needed. Children
        // live one height below, so the rolled-up set is fixed before any
        // evaluation at this height — which is what lets the remainder fan
        // out to workers without changing the result.
        let mut to_eval = Vec::new();
        for node in lattice.nodes_at_height(height) {
            let rolled_up = lattice
                .children(&node)
                .iter()
                .any(|child| satisfying.contains(child));
            if rolled_up {
                satisfying.insert(node);
            } else {
                to_eval.push(node);
            }
        }
        if tuning.effective_threads() == 1 {
            for node in to_eval {
                match eval.check_cached(&node, &stats_im, &state, tuning.cache, true, observer)? {
                    ControlFlow::Break(_) => break 'levels,
                    ControlFlow::Continue(cc) => {
                        stats.record_cached(&cc);
                        if cc.satisfied {
                            minimal.push(node.clone());
                            satisfying.insert(node);
                        }
                    }
                }
            }
        } else {
            let (sat, tripped) = evaluate_stratum_parallel(
                &ectx, &to_eval, &stats_im, &state, tuning, &mut stats, observer,
            )?;
            for node in sat {
                minimal.push(node.clone());
                satisfying.insert(node);
            }
            if tripped {
                break 'levels;
            }
        }
        completed_height = Some(height);
    }
    Ok(LevelWiseOutcome {
        minimal,
        completed_height,
        stats,
        termination: state.termination(),
    })
}

/// Chunk-level result of a parallel stratum worker: indices (into the
/// stratum's evaluation list) of satisfying nodes, whether the budget
/// tripped mid-chunk, and the worker's private stats.
type LevelChunk = Result<(Vec<usize>, bool, SearchStats), psens_hierarchy::Error>;

/// Evaluates one stratum's non-rolled-up nodes across `tuning.threads`
/// scoped workers sharing the budget, observer, and (when present) the
/// verdict store. Satisfying nodes come back in stratum node order, so the
/// caller appends them to `minimal` exactly as the serial loop would. A
/// panicked chunk is re-run serially on the calling thread (counted in
/// `worker_failures`); dropping it would silently break the completeness
/// guarantee behind `completed_height`.
fn evaluate_stratum_parallel<O: SearchObserver>(
    ectx: &EvalContext,
    nodes: &[Node],
    check_stats: &ConfidentialStats,
    state: &BudgetState,
    tuning: Tuning<'_>,
    stats: &mut SearchStats,
    observer: &O,
) -> Result<(Vec<Node>, bool), psens_hierarchy::Error> {
    if nodes.is_empty() {
        return Ok((Vec::new(), false));
    }
    let chunk_size = nodes.len().div_ceil(tuning.effective_threads()).max(1);
    let cache = tuning.cache;
    let run_chunk = |start: usize, chunk: &[Node]| -> LevelChunk {
        let mut eval = ectx.evaluator();
        let mut part = SearchStats::default();
        let mut satisfied = Vec::new();
        let mut tripped = false;
        for (i, node) in chunk.iter().enumerate() {
            match eval.check_cached(node, check_stats, state, cache, true, observer)? {
                ControlFlow::Break(_) => {
                    tripped = true;
                    break;
                }
                ControlFlow::Continue(cc) => {
                    part.record_cached(&cc);
                    if cc.satisfied {
                        satisfied.push(start + i);
                    }
                }
            }
        }
        Ok((satisfied, tripped, part))
    };

    let partials: Vec<(usize, &[Node], Option<LevelChunk>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk_size)
            .enumerate()
            .map(|(ci, chunk)| {
                let run_chunk = &run_chunk;
                let start = ci * chunk_size;
                let handle = scope
                    .spawn(move || catch_unwind(AssertUnwindSafe(|| run_chunk(start, chunk))).ok());
                (start, chunk, handle)
            })
            .collect();
        handles
            .into_iter()
            .map(|(start, chunk, handle)| {
                let joined = handle.join().expect("worker panics are caught inside");
                (start, chunk, joined)
            })
            .collect()
    });

    let mut satisfied = Vec::new();
    let mut any_tripped = false;
    for (start, chunk, partial) in partials {
        let outcome = match partial {
            Some(outcome) => outcome,
            None => {
                // Sound recovery: replay the lost chunk here, letting a
                // deterministic panic propagate the second time.
                stats.worker_failures += 1;
                run_chunk(start, chunk)
            }
        };
        let (sat, tripped, part) = outcome?;
        stats.merge(&part);
        any_tripped |= tripped;
        satisfied.extend(sat);
    }
    // Chunks are contiguous and each chunk reports ascending indices, so
    // the concatenation is already in stratum node order.
    let picked = satisfied.into_iter().map(|ix| nodes[ix].clone()).collect();
    Ok((picked, any_tripped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_scan;
    use psens_datasets::hierarchies::{adult_qi_space, figure2_qi_space};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn agrees_with_exhaustive_on_table4() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for ts in 0..=10usize {
            let exhaustive = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap();
            let levelwise = levelwise_minimal(&im, &qi, 1, 3, ts).unwrap();
            let mut a = exhaustive.minimal.clone();
            let mut b = levelwise.minimal.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b, "TS = {ts}");
        }
    }

    #[test]
    fn agrees_with_exhaustive_for_p_sensitivity() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for p in 1..=3u32 {
            for ts in [0usize, 3] {
                let exhaustive = exhaustive_scan(&im, &qi, p, 2, ts).unwrap();
                let levelwise = levelwise_minimal(&im, &qi, p, 2, ts).unwrap();
                let mut a = exhaustive.minimal.clone();
                let mut b = levelwise.minimal.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "p = {p}, TS = {ts}");
            }
        }
    }

    #[test]
    fn rollup_saves_evaluations() {
        // On the Adult lattice (96 nodes) the level-wise search must evaluate
        // strictly fewer nodes than the exhaustive scan whenever minimal
        // nodes sit below the top.
        let im = AdultGenerator::new(42).generate(300);
        let qi = adult_qi_space();
        let levelwise = levelwise_minimal(&im, &qi, 1, 2, 30).unwrap();
        assert!(!levelwise.minimal.is_empty());
        assert!(
            levelwise.stats.nodes_evaluated < 96,
            "rollup should skip ancestors ({} evaluated)",
            levelwise.stats.nodes_evaluated
        );
    }

    #[test]
    fn impossible_p_aborts() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = levelwise_minimal(&im, &qi, 9, 2, 0).unwrap();
        assert!(outcome.minimal.is_empty());
        assert!(outcome.stats.aborted_condition1);
        assert_eq!(outcome.stats.nodes_evaluated, 0);
        assert_eq!(outcome.termination, Termination::Completed);
        assert_eq!(outcome.completed_height, Some(qi.lattice().height()));
    }

    #[test]
    fn interrupted_minimal_set_is_a_sound_prefix() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let full = levelwise_minimal(&im, &qi, 1, 3, 4).unwrap();
        assert_eq!(full.termination, Termination::Completed);
        assert_eq!(full.completed_height, Some(qi.lattice().height()));
        for max_nodes in 0..full.stats.nodes_evaluated as u64 {
            let budget = SearchBudget::unlimited().with_max_nodes(max_nodes);
            let outcome =
                levelwise_minimal_budgeted(&im, &qi, 1, 3, 4, &budget, &NoopObserver).unwrap();
            assert_eq!(outcome.termination, Termination::NodeBudgetExhausted);
            assert!(outcome.stats.nodes_evaluated as u64 <= max_nodes);
            // Anytime guarantee: everything reported minimal really is.
            for node in &outcome.minimal {
                assert!(full.minimal.contains(node), "budget {max_nodes}: {node}");
            }
            // And complete through the completed height.
            if let Some(h) = outcome.completed_height {
                for node in full.minimal.iter().filter(|n| n.height() <= h) {
                    assert!(outcome.minimal.contains(node), "budget {max_nodes}: {node}");
                }
            }
        }
    }
}
