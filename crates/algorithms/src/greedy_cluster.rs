//! Greedy p-k clustering — the masking algorithm of the authors' follow-up
//! paper (Campan & Truta, *Generating Microdata with P-Sensitive K-Anonymity
//! Property*), which the conclusions of the ICDE 2006 paper announce as
//! future work.
//!
//! Instead of searching the full-domain lattice, the records themselves are
//! clustered: each cluster must reach size `k` *and* `p` distinct values of
//! every confidential attribute, growing greedily by QI similarity — except
//! that while a cluster's sensitivity is still deficient, the nearest record
//! contributing a **new** value of a deficient attribute is preferred. Each
//! finished cluster is locally recoded to its extent, like Mondrian.

use crate::recode::recode_partitions;
use psens_core::observe::{elapsed_since, start_timer};
use psens_core::{NoopObserver, SearchBudget, SearchObserver, Termination};
use psens_microdata::hash::FxHashSet;
use psens_microdata::{Column, Table, Value};
use serde::Serialize;

/// Configuration for the greedy clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct GreedyClusterConfig {
    /// Minimum cluster size (k-anonymity).
    pub k: u32,
    /// Minimum distinct values of every confidential attribute per cluster.
    pub p: u32,
}

/// Why the clustering could not be completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Condition 1 fails: a confidential attribute has fewer than `p`
    /// distinct values overall.
    ImpossibleP {
        /// The offending attribute's name.
        attribute: String,
        /// Its overall distinct count.
        distinct: usize,
    },
    /// Fewer than `k` rows in total.
    TooFewRows {
        /// Rows available.
        rows: usize,
    },
    /// No complete cluster could be formed (the distribution is too skewed
    /// for these `p`/`k` even though Condition 1 holds).
    NoClusterFormed,
    /// The search budget tripped before the first complete cluster existed —
    /// there is no partial result to return.
    Interrupted(Termination),
    /// Rebuilding the masked table failed (malformed input table).
    Recode(psens_microdata::Error),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ImpossibleP {
                attribute,
                distinct,
            } => write!(
                f,
                "attribute `{attribute}` has only {distinct} distinct values"
            ),
            ClusterError::TooFewRows { rows } => {
                write!(f, "only {rows} rows available")
            }
            ClusterError::NoClusterFormed => {
                write!(f, "no cluster satisfying the constraints could be formed")
            }
            ClusterError::Interrupted(cause) => {
                write!(f, "interrupted ({cause}) before any cluster was complete")
            }
            ClusterError::Recode(err) => write!(f, "recoding the clusters failed: {err}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<psens_microdata::Error> for ClusterError {
    fn from(err: psens_microdata::Error) -> Self {
        ClusterError::Recode(err)
    }
}

/// Result of the greedy clustering.
#[derive(Debug, Clone)]
pub struct GreedyClusterOutcome {
    /// The locally-recoded masked table (identifiers dropped).
    pub masked: Table,
    /// Row index sets of the final clusters.
    pub partitions: Vec<Vec<usize>>,
    /// Rows that could not seed or complete a cluster and were merged into
    /// their nearest finished cluster.
    pub leftovers_merged: usize,
    /// How the run ended. An interrupted run stops forming new clusters and
    /// merges every remaining row into its nearest finished cluster, so the
    /// output still covers all rows and still satisfies the property —
    /// clusters are just fewer and larger than a completed run's.
    pub termination: Termination,
}

/// Per-row QI coordinates used for similarity: numeric attributes normalized
/// to `[0, 1]` by range, categorical attributes kept as dense codes with 0/1
/// mismatch distance. Missing numeric values stay `None` — they must not
/// enter the min/max normalization, and a present/missing pair counts as a
/// maximal (1.0) mismatch rather than pretending the missing value is 0.
struct QiSpaceView {
    numeric: Vec<Vec<Option<f64>>>,
    categorical: Vec<Vec<u32>>,
}

impl QiSpaceView {
    fn build(table: &Table, keys: &[usize]) -> QiSpaceView {
        let mut numeric = Vec::new();
        let mut categorical = Vec::new();
        for &attr in keys {
            let column = table.column(attr);
            match column {
                Column::Int(_) => {
                    let values: Vec<Option<f64>> = (0..table.n_rows())
                        .map(|r| column.value(r).as_int().map(|v| v as f64))
                        .collect();
                    let present = values.iter().flatten();
                    let lo = present.clone().fold(f64::INFINITY, |m, &v| m.min(v));
                    let hi = present.fold(f64::NEG_INFINITY, |m, &v| m.max(v));
                    let range = (hi - lo).max(1e-12);
                    numeric.push(
                        values
                            .into_iter()
                            .map(|v| v.map(|v| (v - lo) / range))
                            .collect(),
                    );
                }
                Column::Cat(_) => {
                    let (codes, _) = column.dense_codes();
                    categorical.push(codes);
                }
            }
        }
        QiSpaceView {
            numeric,
            categorical,
        }
    }

    /// Distance between two rows: L1 over normalized numerics plus 0/1 per
    /// categorical mismatch. Two missing values agree (0); a present/missing
    /// pair is a maximal mismatch (1, the width of the normalized range).
    fn distance(&self, a: usize, b: usize) -> f64 {
        let mut d = 0.0;
        for col in &self.numeric {
            d += match (col[a], col[b]) {
                (Some(x), Some(y)) => (x - y).abs(),
                (None, None) => 0.0,
                _ => 1.0,
            };
        }
        for col in &self.categorical {
            d += f64::from(col[a] != col[b]);
        }
        d
    }

    /// Average distance from `row` to the members of `cluster`.
    fn distance_to_cluster(&self, row: usize, cluster: &[usize]) -> f64 {
        cluster
            .iter()
            .map(|&member| self.distance(row, member))
            .sum::<f64>()
            / cluster.len() as f64
    }
}

/// Tracks how many distinct values of each confidential attribute a growing
/// cluster has, and which values.
struct SensitivityTracker<'a> {
    columns: Vec<&'a Column>,
    seen: Vec<FxHashSet<Value>>,
    p: usize,
}

impl<'a> SensitivityTracker<'a> {
    fn new(table: &'a Table, confidential: &[usize], p: u32) -> Self {
        SensitivityTracker {
            columns: confidential.iter().map(|&a| table.column(a)).collect(),
            seen: vec![FxHashSet::default(); confidential.len()],
            p: p as usize,
        }
    }

    fn add(&mut self, row: usize) {
        for (column, seen) in self.columns.iter().zip(&mut self.seen) {
            seen.insert(column.value(row));
        }
    }

    fn satisfied(&self) -> bool {
        self.seen.iter().all(|s| s.len() >= self.p)
    }

    /// True when `row` contributes a new value to some deficient attribute.
    fn helps(&self, row: usize) -> bool {
        self.columns
            .iter()
            .zip(&self.seen)
            .any(|(column, seen)| seen.len() < self.p && !seen.contains(&column.value(row)))
    }

    fn reset(&mut self) {
        for seen in &mut self.seen {
            seen.clear();
        }
    }
}

/// Runs greedy p-k clustering over `initial`, using its schema's roles.
pub fn greedy_pk_cluster(
    initial: &Table,
    config: GreedyClusterConfig,
) -> Result<GreedyClusterOutcome, ClusterError> {
    greedy_pk_cluster_observed(initial, config, &NoopObserver)
}

/// [`greedy_pk_cluster`], reporting each finished cluster (row count and
/// build time) to `observer`. With a [`NoopObserver`] this monomorphizes to
/// the unobserved run.
pub fn greedy_pk_cluster_observed<O: SearchObserver>(
    initial: &Table,
    config: GreedyClusterConfig,
    observer: &O,
) -> Result<GreedyClusterOutcome, ClusterError> {
    greedy_pk_cluster_budgeted(initial, config, &SearchBudget::unlimited(), observer)
}

/// [`greedy_pk_cluster_observed`] under a [`SearchBudget`]. Each record
/// assignment (seed or growth step) draws one coarse budget unit — every
/// assignment scans the unassigned pool, so the deadline and cancel token
/// are polled on each. A trip after the first complete cluster yields the
/// anytime result described on [`GreedyClusterOutcome::termination`]; a trip
/// before it is [`ClusterError::Interrupted`].
pub fn greedy_pk_cluster_budgeted<O: SearchObserver>(
    initial: &Table,
    config: GreedyClusterConfig,
    budget: &SearchBudget,
    observer: &O,
) -> Result<GreedyClusterOutcome, ClusterError> {
    let table = initial.drop_identifiers();
    let keys = table.schema().key_indices();
    let confidential = table.schema().confidential_indices();
    let n = table.n_rows();
    let k = config.k.max(1) as usize;

    if n < k {
        return Err(ClusterError::TooFewRows { rows: n });
    }
    // Condition 1, reused from the paper.
    for &attr in &confidential {
        let distinct = table.column(attr).n_distinct();
        if distinct < config.p as usize {
            return Err(ClusterError::ImpossibleP {
                attribute: table.schema().attribute(attr).name().to_owned(),
                distinct,
            });
        }
    }

    let view = QiSpaceView::build(&table, &keys);
    let state = budget.start();
    let mut unassigned: Vec<usize> = (0..n).collect();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut tracker = SensitivityTracker::new(&table, &confidential, config.p);

    'clusters: while unassigned.len() >= k {
        if state.admit_coarse().is_err() {
            break 'clusters;
        }
        let timer = start_timer::<O>();
        // Seed: the unassigned record farthest from the previous cluster
        // (spreads clusters out); the first cluster seeds from the front.
        let seed_pos = match clusters.last() {
            Some(last) => unassigned
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| {
                    view.distance_to_cluster(a, last)
                        .total_cmp(&view.distance_to_cluster(b, last))
                })
                .map(|(pos, _)| pos)
                .expect("nonempty"),
            None => 0,
        };
        let seed = unassigned.swap_remove(seed_pos);
        tracker.reset();
        tracker.add(seed);
        let mut cluster = vec![seed];

        while cluster.len() < k || !tracker.satisfied() {
            if unassigned.is_empty() {
                break;
            }
            if state.admit_coarse().is_err() {
                // Return the partial cluster's rows and stop clustering.
                unassigned.extend(cluster);
                break 'clusters;
            }
            // While sensitivity is deficient, prefer the nearest record that
            // adds a new value of a deficient attribute.
            let candidate_pos = if !tracker.satisfied() {
                let helpful = unassigned
                    .iter()
                    .enumerate()
                    .filter(|(_, &row)| tracker.helps(row))
                    .min_by(|(_, &a), (_, &b)| {
                        view.distance_to_cluster(a, &cluster)
                            .total_cmp(&view.distance_to_cluster(b, &cluster))
                    })
                    .map(|(pos, _)| pos);
                // `None` here means no record can raise diversity: the
                // cluster can never satisfy p — abandon it below.
                helpful
            } else {
                unassigned
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        view.distance_to_cluster(a, &cluster)
                            .total_cmp(&view.distance_to_cluster(b, &cluster))
                    })
                    .map(|(pos, _)| pos)
            };
            let Some(pos) = candidate_pos else {
                break;
            };
            let row = unassigned.swap_remove(pos);
            tracker.add(row);
            cluster.push(row);
        }

        if cluster.len() >= k && tracker.satisfied() {
            if O::ENABLED {
                observer.partition_finalized(cluster.len(), elapsed_since(timer));
            }
            clusters.push(cluster);
        } else {
            // Incomplete: return its rows to the leftover pool and stop —
            // the remaining unassigned records cannot form a cluster either
            // (the greedy exhausted every helpful record).
            unassigned.extend(cluster);
            break;
        }
    }

    let termination = state.termination();
    if clusters.is_empty() {
        return Err(if termination.is_complete() {
            ClusterError::NoClusterFormed
        } else {
            ClusterError::Interrupted(termination)
        });
    }

    // Leftovers join their nearest cluster; size and diversity only grow.
    let leftovers_merged = unassigned.len();
    for row in unassigned {
        let best = (0..clusters.len())
            .min_by(|&a, &b| {
                view.distance_to_cluster(row, &clusters[a])
                    .total_cmp(&view.distance_to_cluster(row, &clusters[b]))
            })
            .expect("clusters nonempty");
        clusters[best].push(row);
    }
    for cluster in &mut clusters {
        cluster.sort_unstable();
    }
    clusters.sort_by_key(|c| c[0]);

    let masked = recode_partitions(&table, &keys, &clusters)?;
    Ok(GreedyClusterOutcome {
        masked,
        partitions: clusters,
        leftovers_merged,
        termination,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_core::is_p_sensitive_k_anonymous;
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn output_satisfies_the_property() {
        let im = AdultGenerator::new(61).generate(400);
        let outcome = greedy_pk_cluster(&im, GreedyClusterConfig { k: 4, p: 2 }).unwrap();
        let keys = outcome.masked.schema().key_indices();
        let conf = outcome.masked.schema().confidential_indices();
        assert!(is_p_sensitive_k_anonymous(
            &outcome.masked,
            &keys,
            &conf,
            2,
            4
        ));
        assert_eq!(outcome.masked.n_rows(), 400, "no suppression");
    }

    #[test]
    fn partitions_are_a_disjoint_cover() {
        let im = AdultGenerator::new(62).generate(300);
        let outcome = greedy_pk_cluster(&im, GreedyClusterConfig { k: 5, p: 2 }).unwrap();
        let mut seen = vec![false; 300];
        for cluster in &outcome.partitions {
            assert!(cluster.len() >= 5);
            for &row in cluster {
                assert!(!seen[row]);
                seen[row] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_on_the_paper_fixture() {
        let im = figure3_microdata();
        let outcome = greedy_pk_cluster(&im, GreedyClusterConfig { k: 2, p: 2 }).unwrap();
        let keys = outcome.masked.schema().key_indices();
        let conf = outcome.masked.schema().confidential_indices();
        assert!(is_p_sensitive_k_anonymous(
            &outcome.masked,
            &keys,
            &conf,
            2,
            2
        ));
    }

    #[test]
    fn impossible_p_is_rejected_up_front() {
        let im = AdultGenerator::new(63).generate(100);
        // Pay has 2 distinct values.
        let err = greedy_pk_cluster(&im, GreedyClusterConfig { k: 2, p: 3 }).unwrap_err();
        assert!(matches!(err, ClusterError::ImpossibleP { .. }));
        assert!(err.to_string().contains("distinct"));
    }

    #[test]
    fn too_few_rows_is_rejected() {
        let im = AdultGenerator::new(64).generate(3);
        let err = greedy_pk_cluster(&im, GreedyClusterConfig { k: 10, p: 1 }).unwrap_err();
        assert!(matches!(err, ClusterError::TooFewRows { rows: 3 }));
    }

    #[test]
    fn interrupted_run_still_satisfies_the_property() {
        let im = AdultGenerator::new(66).generate(400);
        let config = GreedyClusterConfig { k: 4, p: 2 };
        let full = greedy_pk_cluster(&im, config).unwrap();
        assert_eq!(full.termination, Termination::Completed);
        // Enough budget for a few clusters, nowhere near all of them.
        let budget = SearchBudget::unlimited().with_max_nodes(30);
        let outcome = greedy_pk_cluster_budgeted(&im, config, &budget, &NoopObserver).unwrap();
        assert_eq!(outcome.termination, Termination::NodeBudgetExhausted);
        assert!(outcome.partitions.len() < full.partitions.len());
        // All rows covered, property intact (merging only grows clusters).
        let keys = outcome.masked.schema().key_indices();
        let conf = outcome.masked.schema().confidential_indices();
        assert!(is_p_sensitive_k_anonymous(
            &outcome.masked,
            &keys,
            &conf,
            2,
            4
        ));
        assert_eq!(outcome.masked.n_rows(), 400);
    }

    #[test]
    fn budget_too_small_for_one_cluster_is_interrupted() {
        let im = AdultGenerator::new(67).generate(100);
        let budget = SearchBudget::unlimited().with_max_nodes(2);
        let err = greedy_pk_cluster_budgeted(
            &im,
            GreedyClusterConfig { k: 10, p: 2 },
            &budget,
            &NoopObserver,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ClusterError::Interrupted(Termination::NodeBudgetExhausted)
        ));
    }

    #[test]
    fn finer_than_mondrian_or_comparable() {
        // Both local recoders must beat full-domain generalization on group
        // count; greedy clustering usually lands near n / k clusters.
        let im = AdultGenerator::new(65).generate(500);
        let greedy = greedy_pk_cluster(&im, GreedyClusterConfig { k: 5, p: 2 }).unwrap();
        // Clusters average a few multiples of k: the skewed confidential
        // attributes (CapitalGain is ~92% zero) force growth beyond k, but
        // nothing like the single-digit group counts of full-domain nodes.
        assert!(
            greedy.partitions.len() >= 500 / (5 * 5),
            "{} clusters is suspiciously coarse",
            greedy.partitions.len()
        );
    }
}
