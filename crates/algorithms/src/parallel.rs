//! Parallel exhaustive lattice scan using scoped threads.
//!
//! Node evaluations are embarrassingly parallel — workers share one
//! immutable [`EvalContext`] (the code-map cache) and each owns its private
//! evaluator scratch — so the exhaustive scan splits the node list across
//! `std::thread::scope` workers. Useful for ground-truthing larger lattices;
//! the Criterion bench `algorithms_compare` quantifies the speedup against
//! the serial scan.
//!
//! Workers are fault-isolated: each runs under [`std::panic::catch_unwind`],
//! so a panicking worker loses only its own chunk's results — the surviving
//! workers complete, the failure is tallied in
//! [`SearchStats::worker_failures`], and the scan degrades coverage instead
//! of aborting the process. All workers share one
//! [`BudgetState`](psens_core::BudgetState), making the node budget global
//! and a trip in one worker stop the others at their next admission.

use crate::exhaustive::ExhaustiveOutcome;
use crate::stats::SearchStats;
use crate::tuning::Tuning;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{ModelSpec, NoopObserver, SearchBudget, SearchObserver};
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::Table;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel variant of [`crate::exhaustive::exhaustive_scan`]: identical
/// results, work split across `threads` workers (clamped to at least 1).
pub fn parallel_exhaustive_scan(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    parallel_exhaustive_scan_observed(initial, qi, p, k, ts, threads, &NoopObserver)
}

/// [`parallel_exhaustive_scan`], reporting per-node events to `observer`.
/// One observer instance is shared by every worker (`SearchObserver: Sync`);
/// with a [`NoopObserver`] this monomorphizes to the unobserved scan.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    parallel_exhaustive_scan_budgeted(
        initial,
        qi,
        p,
        k,
        ts,
        threads,
        &SearchBudget::unlimited(),
        observer,
    )
}

/// [`parallel_exhaustive_scan_observed`] under a [`SearchBudget`] shared by
/// all workers: the node budget is global across threads, and once any limit
/// trips every worker stops at its next admission. Results cover the nodes
/// admitted before the trip, labelled by the outcome's `termination`.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_budgeted<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
    budget: &SearchBudget,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    let tuning = Tuning {
        threads,
        cache: None,
        chunk_rows: 0,
    };
    parallel_exhaustive_scan_tuned(initial, qi, p, k, ts, budget, tuning, observer)
}

/// [`parallel_exhaustive_scan_budgeted`] with execution [`Tuning`]; all
/// workers consult (and warm) the shared
/// [`psens_core::verdict::VerdictStore`] in `tuning.cache`. As in the serial
/// scan, only **exact** cached verdicts replay — the per-node annotations
/// need exact `violating_tuples` counts that inference cannot supply.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_tuned<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    parallel_exhaustive_scan_model(
        initial,
        qi,
        ModelSpec::PSensitiveK { p },
        k,
        ts,
        budget,
        tuning,
        observer,
    )
}

/// [`parallel_exhaustive_scan_tuned`] generalized over the pluggable privacy
/// models; identical results to [`crate::exhaustive::exhaustive_scan_model`]
/// for any thread count.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_model<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    let threads = tuning.effective_threads();
    let cache = tuning.cache;
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p: spec.conditions_p(),
        ts,
    };
    let stats_im = ctx.initial_stats();
    // One shared, immutable code-map cache; each worker owns its scratch.
    let ectx = tuning
        .configure(EvalContext::build_observed(&ctx, observer)?)
        .with_model(spec);
    let lattice = qi.lattice();
    let nodes = lattice.all_nodes();
    // Work is partitioned by the *requested* worker count (0 = all cores),
    // so chunk boundaries — and therefore exactly what one panicking worker
    // can lose — do not depend on which host the search happens to run on.
    // The oversubscription clamp applies to OS threads only: at most
    // `threads` executors drain those chunks from a shared cursor.
    let partitions = if tuning.threads == 0 {
        threads
    } else {
        tuning.threads.max(1)
    };
    let chunk_size = nodes.len().div_ceil(partitions);
    let chunks: Vec<&[Node]> = nodes.chunks(chunk_size.max(1)).collect();
    let state = budget.start();

    type ChunkResult = Result<(Vec<Node>, Vec<(Node, usize)>, SearchStats), psens_hierarchy::Error>;
    /// `None` marks a chunk whose worker panicked; its results are lost.
    type PartialResult = Option<ChunkResult>;

    let cursor = AtomicUsize::new(0);
    let partials: Vec<PartialResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(chunks.len()))
            .map(|_| {
                let chunks = &chunks;
                let cursor = &cursor;
                let ectx = &ectx;
                let stats_im = &stats_im;
                let state = &state;
                scope.spawn(move || -> Vec<(usize, PartialResult)> {
                    let mut claimed = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = chunks.get(index) else {
                            break;
                        };
                        // Fault isolation: a panic (from a poisoned chunk, a
                        // broken observer, ...) is caught at the chunk
                        // boundary, so sibling chunks and the caller keep
                        // going. `AssertUnwindSafe` is sound here because a
                        // panicking chunk's entire result is discarded — no
                        // partially-updated state crosses the boundary.
                        let partial = catch_unwind(AssertUnwindSafe(|| -> ChunkResult {
                            let mut eval = ectx.evaluator();
                            let mut satisfying = Vec::new();
                            let mut annotations = Vec::new();
                            let mut stats = SearchStats::default();
                            for node in *chunk {
                                match eval
                                    .check_cached(node, stats_im, state, cache, false, observer)?
                                {
                                    ControlFlow::Break(_) => break,
                                    ControlFlow::Continue(cc) => {
                                        stats.record_cached(&cc);
                                        let check = cc
                                            .check
                                            .as_ref()
                                            .expect("exact-only lookups always carry a NodeCheck");
                                        annotations.push((node.clone(), check.violating_tuples));
                                        if cc.satisfied {
                                            satisfying.push(node.clone());
                                        }
                                    }
                                }
                            }
                            Ok((satisfying, annotations, stats))
                        }))
                        .ok();
                        claimed.push((index, partial));
                    }
                    claimed
                })
            })
            .collect();
        // Every chunk is claimed by exactly one executor; re-assemble the
        // per-chunk results in node order so downstream merging stays
        // deterministic regardless of which executor ran which chunk.
        let mut slots: Vec<PartialResult> = (0..chunks.len()).map(|_| None).collect();
        for handle in handles {
            for (index, partial) in handle.join().expect("worker panics are caught inside") {
                slots[index] = partial;
            }
        }
        slots
    });

    let mut satisfying = Vec::new();
    let mut annotations = Vec::new();
    let mut stats = SearchStats {
        lattice_nodes: nodes.len(),
        requested_threads: tuning.threads,
        effective_threads: threads,
        ..Default::default()
    };
    for partial in partials {
        match partial {
            Some(chunk) => {
                let (s, a, st) = chunk?;
                satisfying.extend(s);
                annotations.extend(a);
                stats.merge(&st);
            }
            None => stats.worker_failures += 1,
        }
    }
    // Chunks are produced in node order, so results are already ordered.
    let minimal = lattice.minimal_elements(&satisfying);
    Ok(ExhaustiveOutcome {
        satisfying,
        minimal,
        annotations,
        stats,
        termination: state.termination(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_scan;
    use psens_datasets::hierarchies::{adult_qi_space, figure2_qi_space};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn matches_serial_scan_exactly() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for threads in [1usize, 2, 4, 16] {
            for ts in [0usize, 5, 10] {
                let serial = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap();
                let parallel = parallel_exhaustive_scan(&im, &qi, 1, 3, ts, threads).unwrap();
                assert_eq!(
                    serial.satisfying, parallel.satisfying,
                    "ts={ts} t={threads}"
                );
                assert_eq!(serial.minimal, parallel.minimal);
                assert_eq!(serial.annotations, parallel.annotations);
            }
        }
    }

    #[test]
    fn matches_serial_on_adult() {
        let im = AdultGenerator::new(51).generate(300);
        let qi = adult_qi_space();
        let serial = exhaustive_scan(&im, &qi, 2, 2, 15).unwrap();
        let parallel = parallel_exhaustive_scan(&im, &qi, 2, 2, 15, 4).unwrap();
        assert_eq!(serial.minimal, parallel.minimal);
        assert_eq!(serial.stats.nodes_evaluated, parallel.stats.nodes_evaluated);
    }

    #[test]
    fn oversubscribed_request_clamps_and_matches_single_thread() {
        // BENCH_6 regression: `--threads 8` on a 1-core host ran at
        // 0.60-0.74x of threads=1. Requesting more workers than cores must
        // now degrade to the available parallelism, produce identical
        // results, and report both counts honestly.
        let im = AdultGenerator::new(7).generate(200);
        let qi = adult_qi_space();
        let available = std::thread::available_parallelism().map_or(1, usize::from);
        let baseline = parallel_exhaustive_scan(&im, &qi, 2, 3, 10, 1).unwrap();
        let oversub = parallel_exhaustive_scan(&im, &qi, 2, 3, 10, 1024).unwrap();
        assert_eq!(baseline.minimal, oversub.minimal);
        assert_eq!(baseline.annotations, oversub.annotations);
        assert_eq!(oversub.stats.requested_threads, 1024);
        assert_eq!(oversub.stats.effective_threads, available);
        assert_eq!(baseline.stats.requested_threads, 1);
        assert_eq!(baseline.stats.effective_threads, 1);
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = parallel_exhaustive_scan(&im, &qi, 1, 3, 0, 64).unwrap();
        assert_eq!(outcome.stats.nodes_evaluated, 6);
        // Degenerate thread count clamps.
        let outcome = parallel_exhaustive_scan(&im, &qi, 1, 3, 0, 0).unwrap();
        assert_eq!(outcome.stats.nodes_evaluated, 6);
    }
}
