//! Parallel exhaustive lattice scan using scoped threads.
//!
//! Node evaluations are embarrassingly parallel — workers share one
//! immutable [`EvalContext`] (the code-map cache) and each owns its private
//! evaluator scratch — so the exhaustive scan splits the node list across
//! `std::thread::scope` workers. Useful for ground-truthing larger lattices;
//! the Criterion bench `algorithms_compare` quantifies the speedup against
//! the serial scan.
//!
//! Workers are fault-isolated: each runs under [`std::panic::catch_unwind`],
//! so a panicking worker loses only its own chunk's results — the surviving
//! workers complete, the failure is tallied in
//! [`SearchStats::worker_failures`], and the scan degrades coverage instead
//! of aborting the process. All workers share one
//! [`BudgetState`](psens_core::BudgetState), making the node budget global
//! and a trip in one worker stop the others at their next admission.

use crate::exhaustive::ExhaustiveOutcome;
use crate::stats::SearchStats;
use crate::tuning::Tuning;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{NoopObserver, SearchBudget, SearchObserver};
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::Table;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Parallel variant of [`crate::exhaustive::exhaustive_scan`]: identical
/// results, work split across `threads` workers (clamped to at least 1).
pub fn parallel_exhaustive_scan(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    parallel_exhaustive_scan_observed(initial, qi, p, k, ts, threads, &NoopObserver)
}

/// [`parallel_exhaustive_scan`], reporting per-node events to `observer`.
/// One observer instance is shared by every worker (`SearchObserver: Sync`);
/// with a [`NoopObserver`] this monomorphizes to the unobserved scan.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    parallel_exhaustive_scan_budgeted(
        initial,
        qi,
        p,
        k,
        ts,
        threads,
        &SearchBudget::unlimited(),
        observer,
    )
}

/// [`parallel_exhaustive_scan_observed`] under a [`SearchBudget`] shared by
/// all workers: the node budget is global across threads, and once any limit
/// trips every worker stops at its next admission. Results cover the nodes
/// admitted before the trip, labelled by the outcome's `termination`.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_budgeted<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
    budget: &SearchBudget,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    let tuning = Tuning {
        threads,
        cache: None,
        chunk_rows: 0,
    };
    parallel_exhaustive_scan_tuned(initial, qi, p, k, ts, budget, tuning, observer)
}

/// [`parallel_exhaustive_scan_budgeted`] with execution [`Tuning`]; all
/// workers consult (and warm) the shared
/// [`psens_core::verdict::VerdictStore`] in `tuning.cache`. As in the serial
/// scan, only **exact** cached verdicts replay — the per-node annotations
/// need exact `violating_tuples` counts that inference cannot supply.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_tuned<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    budget: &SearchBudget,
    tuning: Tuning<'_>,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    let threads = tuning.effective_threads();
    let cache = tuning.cache;
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p,
        ts,
    };
    let stats_im = ctx.initial_stats();
    // One shared, immutable code-map cache; each worker owns its scratch.
    let ectx = tuning.configure(EvalContext::build_observed(&ctx, observer)?);
    let lattice = qi.lattice();
    let nodes = lattice.all_nodes();
    let chunk_size = nodes.len().div_ceil(threads);
    let state = budget.start();

    type ChunkResult = Result<(Vec<Node>, Vec<(Node, usize)>, SearchStats), psens_hierarchy::Error>;
    /// `None` marks a worker that panicked; its chunk's results are lost.
    type PartialResult = Option<ChunkResult>;

    let partials: Vec<PartialResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk_size.max(1))
            .map(|chunk| {
                let ectx = &ectx;
                let stats_im = &stats_im;
                let state = &state;
                scope.spawn(move || -> PartialResult {
                    // Fault isolation: a panic (from a poisoned chunk, a
                    // broken observer, ...) is caught at the worker
                    // boundary, so the sibling workers and the caller keep
                    // going. `AssertUnwindSafe` is sound here because a
                    // panicking worker's entire result is discarded — no
                    // partially-updated state crosses the boundary.
                    catch_unwind(AssertUnwindSafe(|| -> ChunkResult {
                        let mut eval = ectx.evaluator();
                        let mut satisfying = Vec::new();
                        let mut annotations = Vec::new();
                        let mut stats = SearchStats::default();
                        for node in chunk {
                            match eval
                                .check_cached(node, stats_im, state, cache, false, observer)?
                            {
                                ControlFlow::Break(_) => break,
                                ControlFlow::Continue(cc) => {
                                    stats.record_cached(&cc);
                                    let check = cc
                                        .check
                                        .as_ref()
                                        .expect("exact-only lookups always carry a NodeCheck");
                                    annotations.push((node.clone(), check.violating_tuples));
                                    if cc.satisfied {
                                        satisfying.push(node.clone());
                                    }
                                }
                            }
                        }
                        Ok((satisfying, annotations, stats))
                    }))
                    .ok()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panics are caught inside"))
            .collect()
    });

    let mut satisfying = Vec::new();
    let mut annotations = Vec::new();
    let mut stats = SearchStats {
        lattice_nodes: nodes.len(),
        ..Default::default()
    };
    for partial in partials {
        match partial {
            Some(chunk) => {
                let (s, a, st) = chunk?;
                satisfying.extend(s);
                annotations.extend(a);
                stats.merge(&st);
            }
            None => stats.worker_failures += 1,
        }
    }
    // Chunks are produced in node order, so results are already ordered.
    let minimal = lattice.minimal_elements(&satisfying);
    Ok(ExhaustiveOutcome {
        satisfying,
        minimal,
        annotations,
        stats,
        termination: state.termination(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_scan;
    use psens_datasets::hierarchies::{adult_qi_space, figure2_qi_space};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn matches_serial_scan_exactly() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for threads in [1usize, 2, 4, 16] {
            for ts in [0usize, 5, 10] {
                let serial = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap();
                let parallel = parallel_exhaustive_scan(&im, &qi, 1, 3, ts, threads).unwrap();
                assert_eq!(
                    serial.satisfying, parallel.satisfying,
                    "ts={ts} t={threads}"
                );
                assert_eq!(serial.minimal, parallel.minimal);
                assert_eq!(serial.annotations, parallel.annotations);
            }
        }
    }

    #[test]
    fn matches_serial_on_adult() {
        let im = AdultGenerator::new(51).generate(300);
        let qi = adult_qi_space();
        let serial = exhaustive_scan(&im, &qi, 2, 2, 15).unwrap();
        let parallel = parallel_exhaustive_scan(&im, &qi, 2, 2, 15, 4).unwrap();
        assert_eq!(serial.minimal, parallel.minimal);
        assert_eq!(serial.stats.nodes_evaluated, parallel.stats.nodes_evaluated);
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = parallel_exhaustive_scan(&im, &qi, 1, 3, 0, 64).unwrap();
        assert_eq!(outcome.stats.nodes_evaluated, 6);
        // Degenerate thread count clamps.
        let outcome = parallel_exhaustive_scan(&im, &qi, 1, 3, 0, 0).unwrap();
        assert_eq!(outcome.stats.nodes_evaluated, 6);
    }
}
