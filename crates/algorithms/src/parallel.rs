//! Parallel exhaustive lattice scan using scoped threads.
//!
//! Node evaluations are embarrassingly parallel — workers share one
//! immutable [`EvalContext`] (the code-map cache) and each owns its private
//! evaluator scratch — so the exhaustive scan splits the node list across
//! `std::thread::scope` workers. Useful for ground-truthing larger lattices;
//! the Criterion bench `algorithms_compare` quantifies the speedup against
//! the serial scan.

use crate::exhaustive::ExhaustiveOutcome;
use crate::stats::SearchStats;
use psens_core::evaluator::EvalContext;
use psens_core::masking::MaskingContext;
use psens_core::{NoopObserver, SearchObserver};
use psens_hierarchy::{Node, QiSpace};
use psens_microdata::Table;

/// Parallel variant of [`crate::exhaustive::exhaustive_scan`]: identical
/// results, work split across `threads` workers (clamped to at least 1).
pub fn parallel_exhaustive_scan(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    parallel_exhaustive_scan_observed(initial, qi, p, k, ts, threads, &NoopObserver)
}

/// [`parallel_exhaustive_scan`], reporting per-node events to `observer`.
/// One observer instance is shared by every worker (`SearchObserver: Sync`);
/// with a [`NoopObserver`] this monomorphizes to the unobserved scan.
#[allow(clippy::too_many_arguments)]
pub fn parallel_exhaustive_scan_observed<O: SearchObserver>(
    initial: &Table,
    qi: &QiSpace,
    p: u32,
    k: u32,
    ts: usize,
    threads: usize,
    observer: &O,
) -> Result<ExhaustiveOutcome, psens_hierarchy::Error> {
    let threads = threads.max(1);
    let ctx = MaskingContext {
        initial,
        qi,
        k,
        p,
        ts,
    };
    let stats_im = ctx.initial_stats();
    // One shared, immutable code-map cache; each worker owns its scratch.
    let ectx = EvalContext::build_observed(&ctx, observer)?;
    let lattice = qi.lattice();
    let nodes = lattice.all_nodes();
    let chunk_size = nodes.len().div_ceil(threads);

    type PartialResult =
        Result<(Vec<Node>, Vec<(Node, usize)>, SearchStats), psens_hierarchy::Error>;

    let partials: Vec<PartialResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = nodes
            .chunks(chunk_size.max(1))
            .map(|chunk| {
                let ectx = &ectx;
                let stats_im = &stats_im;
                scope.spawn(move || -> PartialResult {
                    let mut eval = ectx.evaluator();
                    let mut satisfying = Vec::new();
                    let mut annotations = Vec::new();
                    let mut stats = SearchStats::default();
                    for node in chunk {
                        stats.nodes_evaluated += 1;
                        let outcome = eval.check_observed(node, stats_im, observer)?;
                        annotations.push((node.clone(), outcome.violating_tuples));
                        stats.record(outcome.stage);
                        if outcome.satisfied {
                            satisfying.push(node.clone());
                        }
                    }
                    Ok((satisfying, annotations, stats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker does not panic"))
            .collect()
    });

    let mut satisfying = Vec::new();
    let mut annotations = Vec::new();
    let mut stats = SearchStats {
        lattice_nodes: nodes.len(),
        ..Default::default()
    };
    for partial in partials {
        let (s, a, st) = partial?;
        satisfying.extend(s);
        annotations.extend(a);
        stats.merge(&st);
    }
    // Chunks are produced in node order, so results are already ordered.
    let minimal = lattice.minimal_elements(&satisfying);
    Ok(ExhaustiveOutcome {
        satisfying,
        minimal,
        annotations,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_scan;
    use psens_datasets::hierarchies::{adult_qi_space, figure2_qi_space};
    use psens_datasets::paper::figure3_microdata;
    use psens_datasets::AdultGenerator;

    #[test]
    fn matches_serial_scan_exactly() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        for threads in [1usize, 2, 4, 16] {
            for ts in [0usize, 5, 10] {
                let serial = exhaustive_scan(&im, &qi, 1, 3, ts).unwrap();
                let parallel = parallel_exhaustive_scan(&im, &qi, 1, 3, ts, threads).unwrap();
                assert_eq!(
                    serial.satisfying, parallel.satisfying,
                    "ts={ts} t={threads}"
                );
                assert_eq!(serial.minimal, parallel.minimal);
                assert_eq!(serial.annotations, parallel.annotations);
            }
        }
    }

    #[test]
    fn matches_serial_on_adult() {
        let im = AdultGenerator::new(51).generate(300);
        let qi = adult_qi_space();
        let serial = exhaustive_scan(&im, &qi, 2, 2, 15).unwrap();
        let parallel = parallel_exhaustive_scan(&im, &qi, 2, 2, 15, 4).unwrap();
        assert_eq!(serial.minimal, parallel.minimal);
        assert_eq!(serial.stats.nodes_evaluated, parallel.stats.nodes_evaluated);
    }

    #[test]
    fn more_threads_than_nodes_is_fine() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = parallel_exhaustive_scan(&im, &qi, 1, 3, 0, 64).unwrap();
        assert_eq!(outcome.stats.nodes_evaluated, 6);
        // Degenerate thread count clamps.
        let outcome = parallel_exhaustive_scan(&im, &qi, 1, 3, 0, 0).unwrap();
        assert_eq!(outcome.stats.nodes_evaluated, 6);
    }
}
