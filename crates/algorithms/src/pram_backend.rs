//! Greedy PRAM masking backend: repair the *confidential* attributes
//! instead of climbing the generalization lattice.
//!
//! The generalize+suppress pipeline buys sensitivity by coarsening the
//! quasi-identifiers until every surviving QI-group carries enough distinct
//! confidential values. This backend takes the opposite trade: fix the QI
//! masking at the **k-minimal** node (sensitivity ignored), then perturb the
//! confidential cells of the still-failing groups with PRAM
//! ([`psens_methods::pram`], the paper's reference [10]) until the requested
//! privacy model holds. Utility of the quasi-identifiers is maximal — they
//! are exactly as generalized as plain k-anonymity requires — at the price
//! of noise in the confidential column, published as a transition matrix so
//! analysts can correct estimates.
//!
//! PRAM only ever touches confidential attributes, so the QI partition — and
//! with it k-anonymity and the suppression count — is invariant across
//! repair sweeps.
//!
//! The backend applies to the models whose group verdict is *diversity-like*
//! (re-drawing values toward the uniform distribution can only help):
//! p-sensitive k-anonymity and distinct/entropy l-diversity. t-closeness
//! wants every group distribution *near the table's global* distribution,
//! which uniform-retention PRAM does not steer toward, so it is refused
//! rather than silently left to spin.

use crate::samarati::{pk_minimal_generalization_model, Pruning};
use crate::tuning::Tuning;
use psens_core::{ModelSpec, NoopObserver, SearchBudget, Termination};
use psens_hierarchy::{Node, QiSpace};
use psens_methods::pram::{pram, PramMatrix};
use psens_microdata::{CatColumn, Column, GroupBy, Table};

/// Knobs for the greedy PRAM repair loop.
#[derive(Debug, Clone, Copy)]
pub struct PramBackendConfig {
    /// Seed for the PRAM draws; equal seeds give byte-identical outputs.
    pub seed: u64,
    /// Retention probability of the uniform-retention matrix: each repaired
    /// cell keeps its value with this probability, otherwise re-draws
    /// uniformly over the attribute's observed domain.
    pub retain: f64,
    /// Cap on repair sweeps before giving up (an unsatisfiable model — e.g.
    /// `l` above the attribute's domain size — would otherwise loop
    /// forever).
    pub max_sweeps: usize,
}

impl Default for PramBackendConfig {
    fn default() -> Self {
        PramBackendConfig {
            seed: 0,
            retain: 0.5,
            max_sweeps: 64,
        }
    }
}

/// Result of a PRAM-backend masking.
#[derive(Debug, Clone)]
pub struct PramOutcome {
    /// The k-minimal generalization node the QI attributes were fixed at;
    /// `None` when even plain k-anonymity is unachievable.
    pub node: Option<Node>,
    /// The released table: generalized to `node`, suppressed within `ts`,
    /// confidential cells PRAM-repaired. `None` iff `node` is `None`.
    pub masked: Option<Table>,
    /// Tuples suppressed at `node` (identical to the k-anonymity search's
    /// count — PRAM never suppresses).
    pub suppressed: usize,
    /// Whether the released table satisfies the requested model. `false`
    /// after `max_sweeps` exhausted (or with no categorical confidential
    /// attribute to repair).
    pub satisfied: bool,
    /// PRAM repair sweeps actually run (0 when the k-minimal masking
    /// already satisfied the model).
    pub sweeps: usize,
    /// Confidential cells whose released value differs from the
    /// generalized-only table's value.
    pub perturbed_cells: usize,
}

/// Errors from the PRAM backend.
#[derive(Debug, Clone, PartialEq)]
pub enum PramBackendError {
    /// The model's group property is not diversity-like; PRAM repair does
    /// not converge toward it.
    Unsupported(String),
    /// The underlying k-anonymity lattice search failed.
    Search(psens_hierarchy::Error),
    /// A PRAM application failed (non-categorical attribute, bad matrix).
    Pram(psens_methods::pram::Error),
}

impl std::fmt::Display for PramBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PramBackendError::Unsupported(msg) => write!(f, "PRAM backend unsupported: {msg}"),
            PramBackendError::Search(e) => write!(f, "k-anonymity search failed: {e}"),
            PramBackendError::Pram(e) => write!(f, "PRAM failed: {e}"),
        }
    }
}

impl std::error::Error for PramBackendError {}

/// Masks `initial` for `spec` + k-anonymity by **generalizing only as far
/// as k-anonymity needs**, then greedily PRAM-repairing the confidential
/// attributes of failing QI-groups.
///
/// Each sweep re-draws the confidential cells of every currently-failing
/// group from a uniform-retention matrix over the attribute's observed
/// domain, then re-checks the model; untouched groups keep their exact
/// values. The loop stops at the first satisfying sweep or at
/// `config.max_sweeps`.
pub fn pram_minimal_masking(
    initial: &Table,
    qi: &QiSpace,
    spec: ModelSpec,
    k: u32,
    ts: usize,
    config: PramBackendConfig,
) -> Result<PramOutcome, PramBackendError> {
    if let ModelSpec::TCloseness { .. } = spec {
        return Err(PramBackendError::Unsupported(
            "t-closeness needs group distributions near the global one; \
             uniform-retention PRAM drives them toward uniform instead"
                .to_owned(),
        ));
    }
    // Stage 1: the cheapest QI masking that is k-anonymous within ts.
    let search = pk_minimal_generalization_model(
        initial,
        qi,
        ModelSpec::PSensitiveK { p: 1 },
        k,
        ts,
        Pruning::NecessaryConditions,
        &SearchBudget::unlimited(),
        Tuning::default(),
        &NoopObserver,
    )
    .map_err(PramBackendError::Search)?;
    debug_assert_eq!(search.termination, Termination::Completed);
    let (Some(node), Some(baseline)) = (search.node, search.masked) else {
        return Ok(PramOutcome {
            node: None,
            masked: None,
            suppressed: 0,
            satisfied: false,
            sweeps: 0,
            perturbed_cells: 0,
        });
    };

    let model = spec.instantiate();
    let schema = baseline.schema();
    let keys = schema.key_indices();
    let conf = schema.confidential_indices();
    // The QI partition is PRAM-invariant: compute it once.
    let groups = GroupBy::compute(&baseline, &keys);
    let rows_by_group = groups.rows_by_group();

    let mut current = baseline.clone();
    let mut sweeps = 0;
    let mut satisfied = failing_groups(&current, &conf, &rows_by_group, &*model).is_empty();
    while !satisfied && sweeps < config.max_sweeps {
        let failing = failing_groups(&current, &conf, &rows_by_group, &*model);
        let mut repair = vec![false; current.n_rows()];
        for &g in &failing {
            for &row in &rows_by_group[g] {
                repair[row as usize] = true;
            }
        }
        let mut repaired_any = false;
        for &attr in &conf {
            let Column::Cat(col) = current.column(attr) else {
                // Integer confidential attributes cannot be PRAMed; if the
                // failure lives there the sweep cap ends the loop honestly.
                continue;
            };
            let domain: Vec<String> = (0..col.dictionary().len() as u32)
                .filter_map(|code| col.dictionary().text(code).map(str::to_owned))
                .collect();
            if domain.len() < 2 {
                continue;
            }
            let matrix = PramMatrix::uniform_retention(domain, config.retain)
                .map_err(PramBackendError::Pram)?;
            // Deterministic per-(sweep, attribute) stream.
            let seed = config
                .seed
                .wrapping_add((sweeps as u64) << 32)
                .wrapping_add(attr as u64);
            let released = pram(&current, attr, &matrix, seed).map_err(PramBackendError::Pram)?;
            current = splice_repaired(&current, &released, attr, &repair);
            repaired_any = true;
        }
        if !repaired_any {
            break;
        }
        sweeps += 1;
        satisfied = failing_groups(&current, &conf, &rows_by_group, &*model).is_empty();
    }

    let perturbed_cells = (0..current.n_rows())
        .map(|row| {
            conf.iter()
                .filter(|&&attr| current.value(row, attr) != baseline.value(row, attr))
                .count()
        })
        .sum();
    Ok(PramOutcome {
        node: Some(node),
        masked: Some(current),
        suppressed: search.suppressed,
        satisfied,
        sweeps,
        perturbed_cells,
    })
}

/// Indices (into the fixed QI partition) of groups where any confidential
/// attribute fails the model's group verdict.
fn failing_groups(
    table: &Table,
    conf: &[usize],
    rows_by_group: &[Vec<u32>],
    model: &dyn psens_core::PrivacyModel,
) -> Vec<usize> {
    let mut failing = Vec::new();
    let mut counts: Vec<(u32, u32)> = Vec::new();
    for (g, rows) in rows_by_group.iter().enumerate() {
        let fails = conf.iter().any(|&attr| {
            let (codes, n_codes) = table.column(attr).dense_codes();
            let mut hist = vec![0u32; n_codes as usize];
            for &row in rows {
                hist[codes[row as usize] as usize] += 1;
            }
            counts.clear();
            counts.extend(
                hist.iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(code, &c)| (code as u32, c)),
            );
            // None for the global distribution: t-closeness (the only model
            // that needs it) is refused before this runs.
            !model.check_group(&counts, rows.len() as u32, None).passes
        });
        if fails {
            failing.push(g);
        }
    }
    failing
}

/// `current` with `attr` replaced by: `released`'s value on repair rows,
/// `current`'s value elsewhere.
fn splice_repaired(current: &Table, released: &Table, attr: usize, repair: &[bool]) -> Table {
    let Column::Cat(cur) = current.column(attr) else {
        unreachable!("splice only runs on categorical attributes");
    };
    let Column::Cat(rel) = released.column(attr) else {
        unreachable!("PRAM preserves the column kind");
    };
    let mut out = CatColumn::new();
    for (row, &repaired) in repair.iter().enumerate() {
        let col = if repaired { rel } else { cur };
        match col.code_at(row) {
            Some(code) => out.push(col.dictionary().text(code).expect("code from dictionary")),
            None => out.push_missing(),
        }
    }
    current
        .with_column_replaced(attr, Column::Cat(out))
        .expect("same kind and length")
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_core::{is_k_anonymous, is_p_sensitive_k_anonymous};
    use psens_datasets::hierarchies::figure2_qi_space;
    use psens_datasets::paper::figure3_microdata;
    use psens_microdata::{table_from_str_rows, Attribute, Schema, Value};

    /// A table whose k=2-minimal masking is the identity (both groups are
    /// large enough) but whose first group is homogeneous in Illness — the
    /// generalize+suppress pipeline would climb the lattice; the PRAM
    /// backend must repair in place.
    fn homogeneous_group_table() -> Table {
        let schema = Schema::new(vec![
            Attribute::cat_key("Sex"),
            Attribute::cat_key("ZipCode"),
            Attribute::cat_confidential("Illness"),
        ])
        .unwrap();
        table_from_str_rows(
            schema,
            &[
                &["M", "41076", "Flu"],
                &["M", "41076", "Flu"],
                &["F", "43102", "Flu"],
                &["F", "43102", "HIV"],
                &["F", "43102", "Asthma"],
            ],
        )
        .unwrap()
    }

    #[test]
    fn repairs_p_sensitivity_without_extra_generalization() {
        let im = homogeneous_group_table();
        let qi = figure2_qi_space();
        let outcome = pram_minimal_masking(
            &im,
            &qi,
            ModelSpec::PSensitiveK { p: 2 },
            2,
            0,
            PramBackendConfig::default(),
        )
        .unwrap();
        assert!(outcome.satisfied, "{outcome:?}");
        // The QI node is the k-minimal one — the identity, no
        // sensitivity-driven climb — and repair actually ran.
        let k_only = crate::samarati::k_minimal_generalization(&im, &qi, 2, 0).unwrap();
        assert_eq!(outcome.node, k_only.node);
        assert!(outcome.sweeps >= 1, "{outcome:?}");
        let masked = outcome.masked.unwrap();
        let keys = masked.schema().key_indices();
        let conf = masked.schema().confidential_indices();
        assert!(is_k_anonymous(&masked, &keys, 2));
        assert!(is_p_sensitive_k_anonymous(&masked, &keys, &conf, 2, 2));
        // Only the failing group's cells were touched: the (F, 43102)
        // group already carried 3 distinct illnesses.
        for (row, illness) in [(2, "Flu"), (3, "HIV"), (4, "Asthma")] {
            assert_eq!(masked.value(row, 2), Value::Text(illness.into()));
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let im = homogeneous_group_table();
        let qi = figure2_qi_space();
        let run = |seed| {
            pram_minimal_masking(
                &im,
                &qi,
                ModelSpec::DistinctL { l: 2 },
                2,
                0,
                PramBackendConfig {
                    seed,
                    ..PramBackendConfig::default()
                },
            )
            .unwrap()
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a.masked, b.masked);
        assert_eq!(a.sweeps, b.sweeps);
        assert_eq!(a.perturbed_cells, b.perturbed_cells);
        assert!(a.satisfied, "{a:?}");
    }

    #[test]
    fn untouched_when_model_already_holds() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let outcome = pram_minimal_masking(
            &im,
            &qi,
            ModelSpec::PSensitiveK { p: 1 },
            3,
            0,
            PramBackendConfig::default(),
        )
        .unwrap();
        assert!(outcome.satisfied);
        assert_eq!(outcome.sweeps, 0);
        assert_eq!(outcome.perturbed_cells, 0);
    }

    #[test]
    fn t_closeness_is_refused() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        let err = pram_minimal_masking(
            &im,
            &qi,
            ModelSpec::TCloseness { t_ppm: 300_000 },
            2,
            0,
            PramBackendConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, PramBackendError::Unsupported(_)));
    }

    #[test]
    fn impossible_model_gives_up_at_the_sweep_cap() {
        let im = figure3_microdata();
        let qi = figure2_qi_space();
        // Illness has 3 categories; 5 distinct values per group can never
        // hold, so the repair loop must terminate unsatisfied.
        let outcome = pram_minimal_masking(
            &im,
            &qi,
            ModelSpec::DistinctL { l: 5 },
            2,
            0,
            PramBackendConfig {
                max_sweeps: 4,
                ..PramBackendConfig::default()
            },
        )
        .unwrap();
        assert!(!outcome.satisfied);
        assert_eq!(outcome.sweeps, 4);
    }
}
