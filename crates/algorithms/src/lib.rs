//! # psens-algorithms
//!
//! Search algorithms producing masked microdata with (p-sensitive)
//! k-anonymity:
//!
//! - [`samarati`]: Samarati's binary search for a k-minimal generalization
//!   with suppression [19], and the paper's **Algorithm 3** — the same search
//!   for a *p-k-minimal* generalization, with the two necessary conditions as
//!   an optional pruning stage (the ablation the paper's future work
//!   proposes).
//! - [`exhaustive`]: full lattice scan; exact set of minimal generalizations
//!   (reproduces Table 4) and per-node violation annotations (Figure 3).
//! - [`levelwise`]: bottom-up search with rollup pruning; finds all minimal
//!   nodes without scanning the whole lattice.
//! - [`incognito`]: the full Incognito algorithm [12] — Apriori pruning
//!   through attribute-subset lattices plus rollup, extended with the
//!   p-sensitivity check at the full-QI stage.
//! - [`mondrian`]: multidimensional local-recoding baseline extended with
//!   the p-sensitivity constraint.
//! - [`parallel`]: scoped-thread parallel exhaustive scan.
//! - [`pram_backend`]: greedy PRAM repair — find the k-minimal node, then
//!   re-randomise confidential cells inside failing groups instead of
//!   climbing the lattice further (diversity-style models only).
//! - [`greedy_cluster`]: the authors' follow-up GreedyPKClustering — record
//!   clustering under the joint size/sensitivity constraint with local
//!   recoding.
//!
//! ## Example
//!
//! ```
//! use psens_algorithms::samarati::{pk_minimal_generalization, Pruning};
//! use psens_datasets::{hierarchies::figure2_qi_space, paper::figure3_microdata};
//!
//! let im = figure3_microdata();
//! let qi = figure2_qi_space();
//! let outcome =
//!     pk_minimal_generalization(&im, &qi, 2, 2, 0, Pruning::NecessaryConditions).unwrap();
//! let node = outcome.node.expect("achievable");
//! let masked = outcome.masked.unwrap();
//! let keys = masked.schema().key_indices();
//! let conf = masked.schema().confidential_indices();
//! assert!(psens_core::is_p_sensitive_k_anonymous(&masked, &keys, &conf, 2, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exhaustive;
pub mod greedy_cluster;
pub mod incognito;
pub mod levelwise;
pub mod mondrian;
pub mod parallel;
pub mod pram_backend;
mod recode;
pub mod report;
pub mod samarati;
pub mod stats;
pub mod tuning;

pub use exhaustive::{
    exhaustive_scan, exhaustive_scan_budgeted, exhaustive_scan_model, exhaustive_scan_observed,
    exhaustive_scan_tuned, ExhaustiveOutcome,
};
pub use greedy_cluster::{
    greedy_pk_cluster, greedy_pk_cluster_budgeted, greedy_pk_cluster_observed, ClusterError,
    GreedyClusterConfig, GreedyClusterOutcome,
};
pub use incognito::{
    incognito_minimal, incognito_minimal_budgeted, incognito_minimal_model,
    incognito_minimal_observed, incognito_minimal_tuned, IncognitoOutcome, IncognitoStats,
};
pub use levelwise::{
    levelwise_minimal, levelwise_minimal_budgeted, levelwise_minimal_model,
    levelwise_minimal_observed, levelwise_minimal_tuned, LevelWiseOutcome,
};
pub use mondrian::{
    mondrian_anonymize, mondrian_anonymize_budgeted, mondrian_anonymize_observed, MondrianConfig,
    MondrianOutcome,
};
pub use parallel::{
    parallel_exhaustive_scan, parallel_exhaustive_scan_budgeted, parallel_exhaustive_scan_model,
    parallel_exhaustive_scan_observed, parallel_exhaustive_scan_tuned,
};
pub use pram_backend::{pram_minimal_masking, PramBackendConfig, PramBackendError, PramOutcome};
pub use report::{RunReport, TerminationReport};
pub use samarati::{
    k_minimal_generalization, pk_minimal_generalization, pk_minimal_generalization_budgeted,
    pk_minimal_generalization_model, pk_minimal_generalization_model_with_stats,
    pk_minimal_generalization_observed, pk_minimal_generalization_tuned, Pruning, SearchOutcome,
};
pub use stats::SearchStats;
pub use tuning::Tuning;
