//! Instrumentation shared by the lattice-search algorithms.

use serde::Serialize;

/// Counters describing how much work a lattice search performed — the
/// quantities the paper's future-work experiment compares ("the running time
/// of these modified algorithms against the existing algorithms").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SearchStats {
    /// Lattice heights probed by the search, in probe order.
    pub heights_probed: Vec<usize>,
    /// Nodes for which a masked table was materialized and checked.
    pub nodes_evaluated: usize,
    /// Candidate nodes skipped because Condition 2 rejected their group
    /// count before the detailed scan.
    pub rejected_condition2: usize,
    /// Candidate maskings rejected at the k-anonymity stage.
    pub rejected_k: usize,
    /// Candidate maskings rejected by the detailed per-group scan.
    pub rejected_detailed: usize,
    /// True when Condition 1 proved the whole search unsatisfiable up front.
    pub aborted_condition1: bool,
}

impl SearchStats {
    /// Total rejections across all stages.
    pub fn total_rejections(&self) -> usize {
        self.rejected_condition2 + self.rejected_k + self.rejected_detailed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let stats = SearchStats {
            heights_probed: vec![4, 2, 1],
            nodes_evaluated: 10,
            rejected_condition2: 3,
            rejected_k: 4,
            rejected_detailed: 2,
            aborted_condition1: false,
        };
        assert_eq!(stats.total_rejections(), 9);
    }

    #[test]
    fn default_is_zeroed() {
        let stats = SearchStats::default();
        assert_eq!(stats.nodes_evaluated, 0);
        assert!(stats.heights_probed.is_empty());
        assert!(!stats.aborted_condition1);
    }
}
