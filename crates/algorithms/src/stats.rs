//! Instrumentation shared by the lattice-search algorithms.

use psens_core::evaluator::{CacheCheck, VerdictSource};
use psens_core::CheckStage;
use psens_microdata::JsonValue;
use serde::Serialize;

/// Counters describing how much work a lattice search performed — the
/// quantities the paper's future-work experiment compares ("the running time
/// of these modified algorithms against the existing algorithms").
///
/// The five per-stage counters partition the evaluated nodes:
/// `rejected_condition1 + rejected_condition2 + rejected_k +
/// rejected_detailed + nodes_passed == nodes_evaluated` — every check settles
/// in exactly one Algorithm 2 stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct SearchStats {
    /// Total nodes in the searched lattice (the denominator for pruning
    /// efficiency; 0 when the search is not lattice-based).
    pub lattice_nodes: usize,
    /// Lattice heights probed by the search, in probe order.
    pub heights_probed: Vec<usize>,
    /// Nodes for which a masked table was materialized and checked.
    pub nodes_evaluated: usize,
    /// Node checks settled by Condition 1 (`p > maxP`).
    pub rejected_condition1: usize,
    /// Candidate nodes skipped because Condition 2 rejected their group
    /// count before the detailed scan.
    pub rejected_condition2: usize,
    /// Candidate maskings rejected at the k-anonymity stage.
    pub rejected_k: usize,
    /// Candidate maskings rejected by the detailed per-group scan.
    pub rejected_detailed: usize,
    /// Node checks that passed every stage.
    pub nodes_passed: usize,
    /// True when Condition 1 proved the whole search unsatisfiable up front.
    pub aborted_condition1: bool,
    /// Parallel-scan workers that panicked and were isolated (their chunk's
    /// results are lost; the scan completed on the survivors). Always 0 for
    /// serial searches.
    pub worker_failures: usize,
    /// Node verdicts replayed exactly from a shared verdict store. Outside
    /// the stage partition: no kernel check ran and no budget was consumed.
    pub cache_hits: usize,
    /// Node verdicts served by monotonicity inference from the store.
    pub cache_inferred: usize,
    /// Worker threads the caller requested (`Tuning::threads`, CLI
    /// `--threads`); `0` means "auto" (one per available core).
    pub requested_threads: usize,
    /// Worker threads actually used after resolving `0` and clamping
    /// oversubscribed requests to the available parallelism
    /// ([`psens_microdata::resolve_threads`]). A report showing
    /// `requested_threads: 8, effective_threads: 1` documents that the
    /// clamp fired rather than hiding it.
    pub effective_threads: usize,
}

impl SearchStats {
    /// Tallies one settled node check into the matching stage counter.
    pub fn record(&mut self, stage: CheckStage) {
        match stage {
            CheckStage::Condition1 => {
                self.rejected_condition1 += 1;
                self.aborted_condition1 = true;
            }
            CheckStage::Condition2 => self.rejected_condition2 += 1,
            CheckStage::KAnonymity => self.rejected_k += 1,
            CheckStage::DetailedScan => self.rejected_detailed += 1,
            CheckStage::Passed => self.nodes_passed += 1,
        }
    }

    /// Tallies one cache-aware check: a fresh check lands in the stage
    /// partition (and in `nodes_evaluated`); replayed and inferred verdicts
    /// land in their own counters, keeping the partition invariant
    /// `total_rejections() + nodes_passed == nodes_evaluated` intact.
    pub fn record_cached(&mut self, cc: &CacheCheck) {
        match cc.source {
            VerdictSource::Fresh => {
                self.nodes_evaluated += 1;
                self.record(
                    cc.check
                        .as_ref()
                        .expect("fresh checks carry a NodeCheck")
                        .stage,
                );
            }
            VerdictSource::Cached => self.cache_hits += 1,
            VerdictSource::Inferred => self.cache_inferred += 1,
        }
    }

    /// Folds another worker's counters into this one (parallel scans).
    pub fn merge(&mut self, other: &SearchStats) {
        self.lattice_nodes = self.lattice_nodes.max(other.lattice_nodes);
        self.heights_probed.extend(&other.heights_probed);
        self.nodes_evaluated += other.nodes_evaluated;
        self.rejected_condition1 += other.rejected_condition1;
        self.rejected_condition2 += other.rejected_condition2;
        self.rejected_k += other.rejected_k;
        self.rejected_detailed += other.rejected_detailed;
        self.nodes_passed += other.nodes_passed;
        self.aborted_condition1 |= other.aborted_condition1;
        self.worker_failures += other.worker_failures;
        self.cache_hits += other.cache_hits;
        self.cache_inferred += other.cache_inferred;
        // Run-level settings, set once at the entry point: worker partials
        // carry zeros, so `max` keeps the run's values through a merge.
        self.requested_threads = self.requested_threads.max(other.requested_threads);
        self.effective_threads = self.effective_threads.max(other.effective_threads);
    }

    /// Total rejections across all stages.
    pub fn total_rejections(&self) -> usize {
        self.rejected_condition1
            + self.rejected_condition2
            + self.rejected_k
            + self.rejected_detailed
    }

    /// Renders the counters as a JSON object (the `search` field of a
    /// `RunReport`; schema documented in DESIGN.md).
    pub fn to_json(&self) -> JsonValue {
        let mut out = JsonValue::object();
        out.set("lattice_nodes", JsonValue::Int(self.lattice_nodes as i64));
        out.set(
            "heights_probed",
            JsonValue::Array(
                self.heights_probed
                    .iter()
                    .map(|&h| JsonValue::Int(h as i64))
                    .collect(),
            ),
        );
        out.set(
            "nodes_evaluated",
            JsonValue::Int(self.nodes_evaluated as i64),
        );
        out.set(
            "rejected_condition1",
            JsonValue::Int(self.rejected_condition1 as i64),
        );
        out.set(
            "rejected_condition2",
            JsonValue::Int(self.rejected_condition2 as i64),
        );
        out.set("rejected_k", JsonValue::Int(self.rejected_k as i64));
        out.set(
            "rejected_detailed",
            JsonValue::Int(self.rejected_detailed as i64),
        );
        out.set("nodes_passed", JsonValue::Int(self.nodes_passed as i64));
        out.set(
            "aborted_condition1",
            JsonValue::Bool(self.aborted_condition1),
        );
        out.set(
            "worker_failures",
            JsonValue::Int(self.worker_failures as i64),
        );
        out.set("cache_hits", JsonValue::Int(self.cache_hits as i64));
        out.set("cache_inferred", JsonValue::Int(self.cache_inferred as i64));
        out.set(
            "requested_threads",
            JsonValue::Int(self.requested_threads as i64),
        );
        out.set(
            "effective_threads",
            JsonValue::Int(self.effective_threads as i64),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let stats = SearchStats {
            lattice_nodes: 96,
            heights_probed: vec![4, 2, 1],
            nodes_evaluated: 10,
            rejected_condition1: 0,
            rejected_condition2: 3,
            rejected_k: 4,
            rejected_detailed: 2,
            nodes_passed: 1,
            aborted_condition1: false,
            worker_failures: 0,
            cache_hits: 5,
            cache_inferred: 2,
            requested_threads: 8,
            effective_threads: 1,
        };
        assert_eq!(stats.total_rejections(), 9);
        assert_eq!(
            stats.total_rejections() + stats.nodes_passed,
            stats.nodes_evaluated
        );
    }

    #[test]
    fn default_is_zeroed() {
        let stats = SearchStats::default();
        assert_eq!(stats.nodes_evaluated, 0);
        assert!(stats.heights_probed.is_empty());
        assert!(!stats.aborted_condition1);
    }

    #[test]
    fn record_partitions_by_stage() {
        let mut stats = SearchStats::default();
        for stage in [
            CheckStage::Condition1,
            CheckStage::Condition2,
            CheckStage::KAnonymity,
            CheckStage::DetailedScan,
            CheckStage::Passed,
        ] {
            stats.nodes_evaluated += 1;
            stats.record(stage);
        }
        assert_eq!(stats.rejected_condition1, 1);
        assert_eq!(stats.rejected_condition2, 1);
        assert_eq!(stats.rejected_k, 1);
        assert_eq!(stats.rejected_detailed, 1);
        assert_eq!(stats.nodes_passed, 1);
        assert!(stats.aborted_condition1);
        assert_eq!(
            stats.total_rejections() + stats.nodes_passed,
            stats.nodes_evaluated
        );
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = SearchStats {
            lattice_nodes: 96,
            nodes_evaluated: 3,
            nodes_passed: 1,
            rejected_k: 2,
            ..Default::default()
        };
        let b = SearchStats {
            lattice_nodes: 96,
            nodes_evaluated: 2,
            rejected_condition2: 2,
            aborted_condition1: true,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lattice_nodes, 96);
        assert_eq!(a.nodes_evaluated, 5);
        assert_eq!(a.total_rejections() + a.nodes_passed, a.nodes_evaluated);
        assert!(a.aborted_condition1);
    }

    #[test]
    fn merge_keeps_run_level_thread_counts() {
        let mut run = SearchStats {
            requested_threads: 8,
            effective_threads: 2,
            ..Default::default()
        };
        // Worker partials are zeroed; merging them must not erase the run's
        // settings.
        run.merge(&SearchStats::default());
        assert_eq!(run.requested_threads, 8);
        assert_eq!(run.effective_threads, 2);
    }

    #[test]
    fn json_has_all_stage_counters() {
        let stats = SearchStats {
            lattice_nodes: 6,
            nodes_evaluated: 6,
            nodes_passed: 2,
            rejected_k: 4,
            ..Default::default()
        };
        let parsed = JsonValue::parse(&stats.to_json().to_json()).unwrap();
        assert_eq!(
            parsed.require("lattice_nodes").unwrap().as_u64().unwrap(),
            6
        );
        assert_eq!(parsed.require("nodes_passed").unwrap().as_u64().unwrap(), 2);
        assert_eq!(parsed.require("rejected_k").unwrap().as_u64().unwrap(), 4);
    }
}
