//! Additive random noise (paper Section 2's survey, ref [9] Kim).
//!
//! Each numeric value is perturbed by zero-mean Gaussian noise whose
//! standard deviation is a fraction `eps` of the attribute's own standard
//! deviation — preserving means and approximately preserving variances
//! while making exact linkage on the attribute impossible.

use psens_microdata::{Column, IntColumn, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Errors from noise addition.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The attribute is not an integer column.
    NotNumeric(String),
    /// The attribute has missing values.
    HasMissing(String),
    /// `eps` was not a positive finite number.
    BadEpsilon(f64),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NotNumeric(name) => write!(f, "attribute `{name}` is not numeric"),
            Error::HasMissing(name) => write!(f, "attribute `{name}` has missing values"),
            Error::BadEpsilon(e) => write!(f, "epsilon {e} must be positive and finite"),
        }
    }
}

impl std::error::Error for Error {}

/// One standard normal draw via Box–Muller.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Adds `N(0, (eps * sd)^2)` noise to `attribute`, rounding to integers.
pub fn add_noise(table: &Table, attribute: usize, eps: f64, seed: u64) -> Result<Table, Error> {
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(Error::BadEpsilon(eps));
    }
    let name = table.schema().attribute(attribute).name().to_owned();
    let Column::Int(column) = table.column(attribute) else {
        return Err(Error::NotNumeric(name));
    };
    let values: Vec<i64> = column
        .iter()
        .map(|v| v.ok_or_else(|| Error::HasMissing(name.clone())))
        .collect::<Result<_, _>>()?;
    let n = values.len();
    if n == 0 {
        return Ok(table.clone());
    }
    let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
    let sd = (values
        .iter()
        .map(|&v| (v as f64 - mean).powi(2))
        .sum::<f64>()
        / n as f64)
        .sqrt();
    let scale = eps * sd;
    let mut rng = StdRng::seed_from_u64(seed);
    let noisy: Vec<i64> = values
        .iter()
        .map(|&v| {
            let noise = standard_normal(&mut rng) * scale;
            (v as f64 + noise).round() as i64
        })
        .collect();
    Ok(table
        .with_column_replaced(attribute, Column::Int(IntColumn::from_values(noisy)))
        .expect("same kind and length"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    fn table(values: &[i64]) -> Table {
        let schema = Schema::new(vec![Attribute::int_confidential("Income")]).unwrap();
        let rows: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let refs: Vec<Vec<&str>> = rows.iter().map(|r| vec![r.as_str()]).collect();
        let slices: Vec<&[&str]> = refs.iter().map(Vec::as_slice).collect();
        table_from_str_rows(schema, &slices).unwrap()
    }

    #[test]
    fn mean_is_approximately_preserved() {
        let values: Vec<i64> = (0..2000).map(|i| 1000 + (i * 17 % 400)).collect();
        let t = table(&values);
        let noisy = add_noise(&t, 0, 0.1, 3).unwrap();
        let before = values.iter().sum::<i64>() as f64 / 2000.0;
        let after = (0..2000)
            .map(|r| noisy.value(r, 0).as_int().unwrap())
            .sum::<i64>() as f64
            / 2000.0;
        assert!(
            (before - after).abs() / before < 0.01,
            "{before} vs {after}"
        );
    }

    #[test]
    fn noise_magnitude_scales_with_eps() {
        let values: Vec<i64> = (0..500).map(|i| i * 10).collect();
        let t = table(&values);
        let spread = |eps: f64| -> f64 {
            let noisy = add_noise(&t, 0, eps, 5).unwrap();
            (0..500)
                .map(|r| (noisy.value(r, 0).as_int().unwrap() - values[r]).abs() as f64)
                .sum::<f64>()
                / 500.0
        };
        let small = spread(0.01);
        let large = spread(0.5);
        assert!(large > small * 5.0, "small {small}, large {large}");
    }

    #[test]
    fn deterministic_given_seed() {
        let t = table(&(0..100).collect::<Vec<_>>());
        assert_eq!(
            add_noise(&t, 0, 0.2, 9).unwrap(),
            add_noise(&t, 0, 0.2, 9).unwrap()
        );
        assert_ne!(
            add_noise(&t, 0, 0.2, 9).unwrap(),
            add_noise(&t, 0, 0.2, 10).unwrap()
        );
    }

    #[test]
    fn errors_and_edges() {
        let t = table(&[1, 2, 3]);
        assert!(matches!(
            add_noise(&t, 0, 0.0, 1),
            Err(Error::BadEpsilon(_))
        ));
        assert!(matches!(
            add_noise(&t, 0, f64::NAN, 1),
            Err(Error::BadEpsilon(_))
        ));
        let empty = t.filter(|_| false);
        assert_eq!(add_noise(&empty, 0, 0.1, 1).unwrap().n_rows(), 0);
        // Constant column: sd = 0 => released unchanged.
        let constant = table(&[7, 7, 7]);
        assert_eq!(add_noise(&constant, 0, 0.5, 1).unwrap(), constant);
    }
}
