//! Microaggregation (paper Section 2's survey, ref [5] Domingo-Ferrer &
//! Mateo-Sanz).
//!
//! Numeric values are clustered into groups of at least `k` similar records
//! and replaced by the group centroid, so each released value is shared by
//! `>= k` records — k-anonymity for the aggregated attribute by
//! construction, with far less information loss than coarse global ranges.

use psens_microdata::{Column, IntColumn, Table};

/// Errors from microaggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The attribute is not an integer column.
    NotNumeric(String),
    /// The attribute has missing values (aggregate after imputation).
    HasMissing(String),
    /// `k` was zero.
    ZeroK,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NotNumeric(name) => write!(f, "attribute `{name}` is not numeric"),
            Error::HasMissing(name) => write!(f, "attribute `{name}` has missing values"),
            Error::ZeroK => write!(f, "k must be at least 1"),
        }
    }
}

impl std::error::Error for Error {}

fn int_values(table: &Table, attribute: usize) -> Result<Vec<i64>, Error> {
    let name = table.schema().attribute(attribute).name().to_owned();
    let Column::Int(column) = table.column(attribute) else {
        return Err(Error::NotNumeric(name));
    };
    column
        .iter()
        .map(|v| v.ok_or_else(|| Error::HasMissing(name.clone())))
        .collect()
}

fn replace_int_column(table: &Table, attribute: usize, values: Vec<i64>) -> Table {
    table
        .with_column_replaced(attribute, Column::Int(IntColumn::from_values(values)))
        .expect("same kind and length")
}

/// Rounded mean of the values at `rows`.
fn centroid(values: &[i64], rows: &[usize]) -> i64 {
    let sum: i128 = rows.iter().map(|&r| i128::from(values[r])).sum();
    let n = rows.len() as i128;
    // Round half away from zero.
    let rounded = (2 * sum + n.signum() * n) / (2 * n);
    rounded as i64
}

/// Univariate microaggregation: sort by value, cut into consecutive runs of
/// `k` (the final run absorbs the remainder, size `k..2k`), and replace each
/// value with its run's rounded mean.
pub fn microaggregate_univariate(
    table: &Table,
    attribute: usize,
    k: usize,
) -> Result<Table, Error> {
    if k == 0 {
        return Err(Error::ZeroK);
    }
    let values = int_values(table, attribute)?;
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by_key(|&r| (values[r], r));
    let mut output = values.clone();
    let n = order.len();
    let mut start = 0;
    while start < n {
        // Last group absorbs a remainder smaller than k.
        let end = if n - start < 2 * k { n } else { start + k };
        let group = &order[start..end];
        let mean = centroid(&values, group);
        for &row in group {
            output[row] = mean;
        }
        start = end;
    }
    Ok(replace_int_column(table, attribute, output))
}

/// MDAV (Maximum Distance to Average Vector) multivariate microaggregation
/// over several integer attributes, with Euclidean distance on z-score
/// normalized coordinates.
pub fn microaggregate_mdav(table: &Table, attributes: &[usize], k: usize) -> Result<Table, Error> {
    if k == 0 {
        return Err(Error::ZeroK);
    }
    let columns: Vec<Vec<i64>> = attributes
        .iter()
        .map(|&a| int_values(table, a))
        .collect::<Result<_, _>>()?;
    let n = table.n_rows();
    if n == 0 {
        return Ok(table.clone());
    }
    // Normalize to zero mean / unit spread per attribute so distances are
    // comparable across scales.
    let normalized: Vec<Vec<f64>> = columns
        .iter()
        .map(|vals| {
            let mean = vals.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
            let var = vals.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n as f64;
            let sd = var.sqrt().max(1e-12);
            vals.iter().map(|&v| (v as f64 - mean) / sd).collect()
        })
        .collect();
    let distance2 = |a: usize, b: usize| -> f64 {
        normalized.iter().map(|col| (col[a] - col[b]).powi(2)).sum()
    };
    let centroid_dist2 = |rows: &[usize], point: usize| -> f64 {
        normalized
            .iter()
            .map(|col| {
                let c = rows.iter().map(|&r| col[r]).sum::<f64>() / rows.len() as f64;
                (col[point] - c).powi(2)
            })
            .sum()
    };

    let mut remaining: Vec<usize> = (0..n).collect();
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    while remaining.len() >= 3 * k {
        // r: farthest record from the centroid of the remaining set.
        let r = *remaining
            .iter()
            .max_by(|&&a, &&b| {
                centroid_dist2(&remaining, a)
                    .partial_cmp(&centroid_dist2(&remaining, b))
                    .expect("finite")
            })
            .expect("nonempty");
        // s: farthest record from r.
        let s = *remaining
            .iter()
            .max_by(|&&a, &&b| {
                distance2(r, a)
                    .partial_cmp(&distance2(r, b))
                    .expect("finite")
            })
            .expect("nonempty");
        for anchor in [r, s] {
            let mut by_distance = remaining.clone();
            by_distance.sort_by(|&a, &b| {
                distance2(anchor, a)
                    .partial_cmp(&distance2(anchor, b))
                    .expect("finite")
                    .then(a.cmp(&b))
            });
            let cluster: Vec<usize> = by_distance.into_iter().take(k).collect();
            remaining.retain(|row| !cluster.contains(row));
            clusters.push(cluster);
        }
    }
    if remaining.len() >= 2 * k {
        let r = *remaining
            .iter()
            .max_by(|&&a, &&b| {
                centroid_dist2(&remaining, a)
                    .partial_cmp(&centroid_dist2(&remaining, b))
                    .expect("finite")
            })
            .expect("nonempty");
        let mut by_distance = remaining.clone();
        by_distance.sort_by(|&a, &b| {
            distance2(r, a)
                .partial_cmp(&distance2(r, b))
                .expect("finite")
                .then(a.cmp(&b))
        });
        let cluster: Vec<usize> = by_distance.into_iter().take(k).collect();
        remaining.retain(|row| !cluster.contains(row));
        clusters.push(cluster);
    }
    if !remaining.is_empty() {
        clusters.push(remaining);
    }

    let mut result = table.clone();
    for (pos, &attr) in attributes.iter().enumerate() {
        let mut output = columns[pos].clone();
        for cluster in &clusters {
            let mean = centroid(&columns[pos], cluster);
            for &row in cluster {
                output[row] = mean;
            }
        }
        result = replace_int_column(&result, attr, output);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, FrequencySet, Schema, Value};

    fn income_table(values: &[i64]) -> Table {
        let schema = Schema::new(vec![
            Attribute::int_key("Income"),
            Attribute::int_key("Age"),
        ])
        .unwrap();
        let rows: Vec<Vec<String>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| vec![v.to_string(), (20 + (i as i64 % 40)).to_string()])
            .collect();
        let borrowed: Vec<Vec<&str>> = rows
            .iter()
            .map(|r| r.iter().map(String::as_str).collect())
            .collect();
        let slices: Vec<&[&str]> = borrowed.iter().map(Vec::as_slice).collect();
        table_from_str_rows(schema, &slices).unwrap()
    }

    #[test]
    fn univariate_groups_have_at_least_k_sharers() {
        let t = income_table(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 95]);
        let result = microaggregate_univariate(&t, 0, 3).unwrap();
        let fs = FrequencySet::of(&result, &[0]);
        for (_, count) in fs.iter() {
            assert!(count >= 3, "every released value is shared k times");
        }
        assert_eq!(result.n_rows(), 10);
    }

    #[test]
    fn univariate_replaces_with_run_means() {
        let t = income_table(&[1, 2, 3, 100, 200, 300]);
        let result = microaggregate_univariate(&t, 0, 3).unwrap();
        assert_eq!(result.value(0, 0), Value::Int(2)); // mean(1,2,3)
        assert_eq!(result.value(3, 0), Value::Int(200)); // mean(100,200,300)
    }

    #[test]
    fn univariate_total_mean_is_roughly_preserved() {
        let values: Vec<i64> = (0..100).map(|i| i * 37 % 1000).collect();
        let t = income_table(&values);
        let result = microaggregate_univariate(&t, 0, 5).unwrap();
        let before: i64 = values.iter().sum();
        let after: i64 = (0..100).map(|r| result.value(r, 0).as_int().unwrap()).sum();
        let drift = (before - after).abs() as f64 / before as f64;
        assert!(drift < 0.01, "mean drift {drift}");
    }

    #[test]
    fn errors_are_reported() {
        let t = income_table(&[1, 2, 3]);
        assert_eq!(microaggregate_univariate(&t, 0, 0), Err(Error::ZeroK));
        let schema = Schema::new(vec![Attribute::cat_key("C")]).unwrap();
        let cat = table_from_str_rows(schema, &[&["a"]]).unwrap();
        assert!(matches!(
            microaggregate_univariate(&cat, 0, 2),
            Err(Error::NotNumeric(_))
        ));
        let schema = Schema::new(vec![Attribute::int_key("I")]).unwrap();
        let missing = table_from_str_rows(schema, &[&["1"], &["?"]]).unwrap();
        assert!(matches!(
            microaggregate_univariate(&missing, 0, 2),
            Err(Error::HasMissing(_))
        ));
    }

    #[test]
    fn mdav_clusters_have_k_to_2k_minus_1_members() {
        let t = income_table(&[5, 7, 6, 300, 310, 305, 900, 905, 910, 8, 302, 912, 4, 307]);
        let result = microaggregate_mdav(&t, &[0], 3).unwrap();
        let fs = FrequencySet::of(&result, &[0]);
        for (_, count) in fs.iter() {
            assert!(count >= 3, "cluster of {count} < k");
        }
    }

    #[test]
    fn mdav_respects_multivariate_structure() {
        // Two tight 2-D clusters: MDAV must not mix them.
        let schema = Schema::new(vec![Attribute::int_key("A"), Attribute::int_key("B")]).unwrap();
        let t = table_from_str_rows(
            schema,
            &[
                &["0", "0"],
                &["1", "1"],
                &["2", "0"],
                &["100", "100"],
                &["101", "99"],
                &["102", "101"],
            ],
        )
        .unwrap();
        let result = microaggregate_mdav(&t, &[0, 1], 3).unwrap();
        // Rows 0-2 share one centroid, rows 3-5 another.
        assert_eq!(result.value(0, 0), result.value(1, 0));
        assert_eq!(result.value(0, 0), result.value(2, 0));
        assert_eq!(result.value(3, 0), result.value(4, 0));
        assert_ne!(result.value(0, 0), result.value(3, 0));
        assert_eq!(result.value(0, 0), Value::Int(1));
        assert_eq!(result.value(3, 0), Value::Int(101));
    }

    #[test]
    fn mdav_small_or_empty_inputs() {
        let t = income_table(&[1, 2]);
        // Fewer than 2k rows: one residual cluster.
        let result = microaggregate_mdav(&t, &[0], 3).unwrap();
        assert_eq!(result.value(0, 0), result.value(1, 0));
        let empty = t.filter(|_| false);
        assert_eq!(microaggregate_mdav(&empty, &[0], 3).unwrap().n_rows(), 0);
    }
}
