//! PRAM — the Post-RAndomisation Method (paper Section 2's survey, ref [10]
//! Kooiman, Willemborg & Gouweleeuw).
//!
//! Each categorical value is independently re-drawn from a row-stochastic
//! transition matrix `P` where `P[i][j]` is the probability of releasing
//! category `j` for a record whose true category is `i`. The data holder
//! publishes `P`, letting researchers correct estimates, while no individual
//! cell can be trusted — plausible deniability per record.

use psens_microdata::{CatColumn, Column, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A row-stochastic transition matrix over a categorical domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PramMatrix {
    domain: Vec<String>,
    /// `rows[i][j]` = P(release j | true i); each row sums to 1.
    rows: Vec<Vec<f64>>,
}

/// Errors from PRAM.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The matrix is not square over its domain, or a row does not sum to 1.
    BadMatrix(String),
    /// The attribute is not categorical.
    NotCategorical(String),
    /// A data value is missing from the matrix domain.
    UnknownCategory(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadMatrix(msg) => write!(f, "bad PRAM matrix: {msg}"),
            Error::NotCategorical(name) => write!(f, "attribute `{name}` is not categorical"),
            Error::UnknownCategory(v) => write!(f, "value `{v}` is not in the PRAM domain"),
        }
    }
}

impl std::error::Error for Error {}

impl PramMatrix {
    /// Builds a matrix, validating shape and row sums.
    pub fn new(domain: Vec<String>, rows: Vec<Vec<f64>>) -> Result<Self, Error> {
        let d = domain.len();
        if d == 0 {
            return Err(Error::BadMatrix("empty domain".into()));
        }
        if rows.len() != d {
            return Err(Error::BadMatrix(format!(
                "{} rows for a domain of {d}",
                rows.len()
            )));
        }
        for (i, row) in rows.iter().enumerate() {
            if row.len() != d {
                return Err(Error::BadMatrix(format!(
                    "row {i} has {} entries",
                    row.len()
                )));
            }
            if row.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
                return Err(Error::BadMatrix(format!(
                    "row {i} has out-of-range entries"
                )));
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(Error::BadMatrix(format!("row {i} sums to {sum}")));
            }
        }
        Ok(PramMatrix { domain, rows })
    }

    /// The "retain with probability `retain`, otherwise uniform over the
    /// other categories" matrix — the most common PRAM design.
    pub fn uniform_retention<S: Into<String>>(domain: Vec<S>, retain: f64) -> Result<Self, Error> {
        let domain: Vec<String> = domain.into_iter().map(Into::into).collect();
        let d = domain.len();
        if d == 0 {
            return Err(Error::BadMatrix("empty domain".into()));
        }
        if !(0.0..=1.0).contains(&retain) {
            return Err(Error::BadMatrix(format!(
                "retention {retain} not a probability"
            )));
        }
        let off = if d > 1 {
            (1.0 - retain) / (d as f64 - 1.0)
        } else {
            0.0
        };
        let rows = (0..d)
            .map(|i| {
                (0..d)
                    .map(|j| {
                        if i == j {
                            if d == 1 {
                                1.0
                            } else {
                                retain
                            }
                        } else {
                            off
                        }
                    })
                    .collect()
            })
            .collect();
        PramMatrix::new(domain, rows)
    }

    /// The domain, in matrix order.
    pub fn domain(&self) -> &[String] {
        &self.domain
    }

    /// Samples a released category for true category `i`.
    fn sample(&self, i: usize, rng: &mut StdRng) -> usize {
        let roll: f64 = rng.gen();
        let mut cumulative = 0.0;
        for (j, &p) in self.rows[i].iter().enumerate() {
            cumulative += p;
            if roll < cumulative {
                return j;
            }
        }
        self.rows[i].len() - 1
    }
}

/// Applies PRAM to `attribute`. Missing cells stay missing.
pub fn pram(
    table: &Table,
    attribute: usize,
    matrix: &PramMatrix,
    seed: u64,
) -> Result<Table, Error> {
    let name = table.schema().attribute(attribute).name().to_owned();
    let Column::Cat(column) = table.column(attribute) else {
        return Err(Error::NotCategorical(name));
    };
    // Map dictionary codes to matrix indices once.
    let mut code_to_matrix: Vec<Option<usize>> = vec![None; column.dictionary().len()];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = CatColumn::new();
    for row in 0..column.len() {
        match column.code_at(row) {
            Some(code) => {
                let i = match code_to_matrix[code as usize] {
                    Some(i) => i,
                    None => {
                        let text = column
                            .dictionary()
                            .text(code)
                            .expect("code from this dictionary");
                        let i = matrix
                            .domain
                            .iter()
                            .position(|d| d == text)
                            .ok_or_else(|| Error::UnknownCategory(text.to_owned()))?;
                        code_to_matrix[code as usize] = Some(i);
                        i
                    }
                };
                let j = matrix.sample(i, &mut rng);
                out.push(&matrix.domain[j]);
            }
            None => out.push_missing(),
        }
    }
    Ok(table
        .with_column_replaced(attribute, Column::Cat(out))
        .expect("same kind and length"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, FrequencySet, Schema, Value};

    fn table(values: &[&str]) -> Table {
        let schema = Schema::new(vec![Attribute::cat_confidential("Illness")]).unwrap();
        let rows: Vec<Vec<&str>> = values.iter().map(|v| vec![*v]).collect();
        let slices: Vec<&[&str]> = rows.iter().map(Vec::as_slice).collect();
        table_from_str_rows(schema, &slices).unwrap()
    }

    #[test]
    fn matrix_validation() {
        assert!(PramMatrix::new(vec![], vec![]).is_err());
        assert!(PramMatrix::new(vec!["a".into(), "b".into()], vec![vec![0.5, 0.5]],).is_err());
        assert!(PramMatrix::new(
            vec!["a".into(), "b".into()],
            vec![vec![0.9, 0.2], vec![0.5, 0.5]],
        )
        .is_err());
        assert!(PramMatrix::uniform_retention(vec!["a", "b", "c"], 0.8).is_ok());
        assert!(PramMatrix::uniform_retention(vec!["a"], 0.8).is_ok());
        assert!(PramMatrix::uniform_retention(Vec::<&str>::new(), 0.8).is_err());
        assert!(PramMatrix::uniform_retention(vec!["a"], 1.5).is_err());
    }

    #[test]
    fn identity_matrix_changes_nothing() {
        let t = table(&["Flu", "HIV", "Flu", "Asthma"]);
        let matrix = PramMatrix::uniform_retention(vec!["Flu", "HIV", "Asthma"], 1.0).unwrap();
        assert_eq!(pram(&t, 0, &matrix, 3).unwrap(), t);
    }

    #[test]
    fn retention_rate_is_respected() {
        let values: Vec<&str> = (0..3000)
            .map(|i| if i % 2 == 0 { "Flu" } else { "HIV" })
            .collect();
        let t = table(&values);
        let matrix = PramMatrix::uniform_retention(vec!["Flu", "HIV"], 0.8).unwrap();
        let released = pram(&t, 0, &matrix, 5).unwrap();
        let retained = (0..t.n_rows())
            .filter(|&r| released.value(r, 0) == t.value(r, 0))
            .count() as f64
            / t.n_rows() as f64;
        assert!((0.75..0.85).contains(&retained), "retained {retained}");
    }

    #[test]
    fn released_values_stay_in_domain_and_missing_is_kept() {
        let schema = Schema::new(vec![Attribute::cat_confidential("S")]).unwrap();
        let t = table_from_str_rows(schema, &[&["a"], &["?"], &["b"]]).unwrap();
        let matrix = PramMatrix::uniform_retention(vec!["a", "b"], 0.5).unwrap();
        let released = pram(&t, 0, &matrix, 1).unwrap();
        assert_eq!(released.value(1, 0), Value::Missing);
        for row in [0usize, 2] {
            let v = released.value(row, 0);
            assert!(
                v == Value::Text("a".into()) || v == Value::Text("b".into()),
                "{v}"
            );
        }
    }

    #[test]
    fn unknown_category_is_an_error() {
        let t = table(&["Plague"]);
        let matrix = PramMatrix::uniform_retention(vec!["Flu", "HIV"], 0.8).unwrap();
        assert!(matches!(
            pram(&t, 0, &matrix, 1),
            Err(Error::UnknownCategory(_))
        ));
    }

    #[test]
    fn marginals_approximately_invariant_under_symmetric_pram() {
        // A symmetric retention matrix keeps a uniform marginal uniform.
        let values: Vec<&str> = (0..3000).map(|i| ["a", "b", "c"][i % 3]).collect();
        let t = table(&values);
        let matrix = PramMatrix::uniform_retention(vec!["a", "b", "c"], 0.7).unwrap();
        let released = pram(&t, 0, &matrix, 9).unwrap();
        let fs = FrequencySet::of(&released, &[0]);
        for (_, count) in fs.iter() {
            let share = count as f64 / 3000.0;
            assert!((0.30..0.37).contains(&share), "share {share}");
        }
    }
}
