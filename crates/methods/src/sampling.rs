//! Sampling (paper Section 2's masking-method survey, ref [20]).
//!
//! Releasing a sample instead of the full microdata reduces the probability
//! that any given individual is in the release at all, lowering linkage
//! confidence before any recoding happens.

use psens_microdata::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws a simple random sample of `n` rows without replacement, preserving
/// the original row order. When `n >= table.n_rows()` the whole table is
/// returned.
pub fn simple_random_sample(table: &Table, n: usize, seed: u64) -> Table {
    let total = table.n_rows();
    if n >= total {
        return table.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Partial Fisher–Yates over the index vector.
    let mut indices: Vec<usize> = (0..total).collect();
    for i in 0..n {
        let j = rng.gen_range(i..total);
        indices.swap(i, j);
    }
    let mut chosen = indices[..n].to_vec();
    chosen.sort_unstable();
    table.take(&chosen)
}

/// Keeps each row independently with probability `prob` (Bernoulli /
/// Poisson sampling).
///
/// # Panics
/// Panics unless `0.0 <= prob <= 1.0`.
pub fn bernoulli_sample(table: &Table, prob: f64, seed: u64) -> Table {
    assert!((0.0..=1.0).contains(&prob), "prob must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let keep: Vec<bool> = (0..table.n_rows())
        .map(|_| rng.gen::<f64>() < prob)
        .collect();
    table.filter(|row| keep[row])
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::AdultGenerator;

    #[test]
    fn sample_size_and_determinism() {
        let t = AdultGenerator::new(1).generate(500);
        let a = simple_random_sample(&t, 100, 7);
        let b = simple_random_sample(&t, 100, 7);
        assert_eq!(a.n_rows(), 100);
        assert_eq!(a, b);
        let c = simple_random_sample(&t, 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_rows_come_from_the_source() {
        let t = AdultGenerator::new(2).generate(200);
        let s = simple_random_sample(&t, 50, 1);
        let ids: std::collections::HashSet<String> =
            (0..t.n_rows()).map(|r| t.value(r, 0).to_string()).collect();
        let mut seen = std::collections::HashSet::new();
        for r in 0..s.n_rows() {
            let id = s.value(r, 0).to_string();
            assert!(ids.contains(&id));
            assert!(seen.insert(id), "sampling is without replacement");
        }
    }

    #[test]
    fn oversized_request_returns_everything() {
        let t = AdultGenerator::new(3).generate(50);
        assert_eq!(simple_random_sample(&t, 500, 1), t);
        assert_eq!(simple_random_sample(&t, 50, 1), t);
    }

    #[test]
    fn bernoulli_rate_is_plausible() {
        let t = AdultGenerator::new(4).generate(4000);
        let s = bernoulli_sample(&t, 0.25, 11);
        let rate = s.n_rows() as f64 / 4000.0;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
        assert_eq!(bernoulli_sample(&t, 0.0, 1).n_rows(), 0);
        assert_eq!(bernoulli_sample(&t, 1.0, 1).n_rows(), 4000);
    }
}
