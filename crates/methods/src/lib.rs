//! # psens-methods
//!
//! The classical statistical disclosure-control toolbox the paper's
//! Section 2 surveys before settling on generalization + suppression:
//!
//! - [`sampling`]: simple random / Bernoulli sampling [20];
//! - [`microagg`]: univariate and MDAV multivariate microaggregation [5];
//! - [`swapping`]: rank swapping [4, 17];
//! - [`noise`]: additive Gaussian noise [9];
//! - [`pram`]: the Post-RAndomisation Method [10].
//!
//! These are *perturbative* or *subsampling* alternatives to the paper's
//! non-perturbative masking; having them executable lets examples and tests
//! place p-sensitive k-anonymity in its design space ("the data owner should
//! decide where to draw the line").
//!
//! ## Example
//!
//! ```
//! use psens_methods::{microaggregate_univariate, rank_swap};
//! use psens_microdata::{table_from_str_rows, Attribute, FrequencySet, Schema};
//!
//! let schema = Schema::new(vec![Attribute::int_key("Age")]).unwrap();
//! let table = table_from_str_rows(
//!     schema,
//!     &[&["21"], &["22"], &["23"], &["51"], &["52"], &["53"]],
//! ).unwrap();
//!
//! // Microaggregation with k = 3: each released age is shared by >= 3 rows.
//! let masked = microaggregate_univariate(&table, 0, 3).unwrap();
//! let fs = FrequencySet::of(&masked, &[0]);
//! assert!(fs.iter().all(|(_, count)| count >= 3));
//!
//! // Rank swapping preserves the marginal exactly.
//! let swapped = rank_swap(&table, 0, 50, 7).unwrap();
//! assert_eq!(
//!     FrequencySet::of(&swapped, &[0]).descending_counts(),
//!     FrequencySet::of(&table, &[0]).descending_counts(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod microagg;
pub mod noise;
pub mod pram;
pub mod sampling;
pub mod swapping;

pub use microagg::{microaggregate_mdav, microaggregate_univariate};
pub use noise::add_noise;
pub use pram::{pram, PramMatrix};
pub use sampling::{bernoulli_sample, simple_random_sample};
pub use swapping::rank_swap;
