//! Rank swapping (paper Section 2's survey, refs [4, 17] Dalenius & Reiss).
//!
//! Values of a numeric attribute are swapped between records whose *ranks*
//! are close (within a window of `p%` of the records), so the marginal
//! distribution is preserved exactly while record-level linkage is broken.

use psens_microdata::{Column, IntColumn, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Errors from rank swapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The attribute is not an integer column.
    NotNumeric(String),
    /// The attribute has missing values.
    HasMissing(String),
    /// The window percentage was outside `1..=100`.
    BadWindow(u32),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NotNumeric(name) => write!(f, "attribute `{name}` is not numeric"),
            Error::HasMissing(name) => write!(f, "attribute `{name}` has missing values"),
            Error::BadWindow(p) => write!(f, "window {p}% must be in 1..=100"),
        }
    }
}

impl std::error::Error for Error {}

/// Rank-swaps `attribute` with a window of `window_percent`% of the rows:
/// walking ranks in order, each not-yet-swapped value is exchanged with a
/// uniformly chosen partner at most `window` ranks above it.
///
/// The multiset of released values equals the original multiset exactly.
pub fn rank_swap(
    table: &Table,
    attribute: usize,
    window_percent: u32,
    seed: u64,
) -> Result<Table, Error> {
    if !(1..=100).contains(&window_percent) {
        return Err(Error::BadWindow(window_percent));
    }
    let name = table.schema().attribute(attribute).name().to_owned();
    let Column::Int(column) = table.column(attribute) else {
        return Err(Error::NotNumeric(name));
    };
    let values: Vec<i64> = column
        .iter()
        .map(|v| v.ok_or_else(|| Error::HasMissing(name.clone())))
        .collect::<Result<_, _>>()?;
    let n = values.len();
    if n < 2 {
        return Ok(table.clone());
    }
    let window = ((n as u64 * u64::from(window_percent)) / 100).max(1) as usize;

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&r| (values[r], r));
    let mut output = values.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut swapped = vec![false; n];
    for i in 0..n {
        if swapped[i] {
            continue;
        }
        let hi = (i + window).min(n - 1);
        if hi == i {
            break;
        }
        let j = rng.gen_range(i + 1..=hi);
        let (a, b) = (order[i], order[j]);
        output.swap(a, b);
        swapped[i] = true;
        swapped[j] = true;
    }
    Ok(table
        .with_column_replaced(attribute, Column::Int(IntColumn::from_values(output)))
        .expect("same kind and length"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_microdata::{table_from_str_rows, Attribute, Schema};

    fn table(values: &[i64]) -> Table {
        let schema = Schema::new(vec![Attribute::int_confidential("Income")]).unwrap();
        let rows: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        let refs: Vec<Vec<&str>> = rows.iter().map(|r| vec![r.as_str()]).collect();
        let slices: Vec<&[&str]> = refs.iter().map(Vec::as_slice).collect();
        table_from_str_rows(schema, &slices).unwrap()
    }

    fn sorted_values(t: &Table) -> Vec<i64> {
        let mut v: Vec<i64> = (0..t.n_rows())
            .map(|r| t.value(r, 0).as_int().unwrap())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn marginal_distribution_is_exactly_preserved() {
        let values: Vec<i64> = (0..200).map(|i| i * 13 % 500).collect();
        let t = table(&values);
        let swapped = rank_swap(&t, 0, 10, 42).unwrap();
        assert_eq!(sorted_values(&t), sorted_values(&swapped));
        // And something actually moved.
        assert_ne!(t, swapped);
    }

    #[test]
    fn swaps_stay_within_the_rank_window() {
        let values: Vec<i64> = (0..100).collect(); // value == rank
        let t = table(&values);
        let window_percent = 5; // window of 5 ranks
        let swapped = rank_swap(&t, 0, window_percent, 7).unwrap();
        for (row, &before) in values.iter().enumerate() {
            let after = swapped.value(row, 0).as_int().unwrap();
            assert!(
                (before - after).abs() <= 5,
                "row {row} moved {} ranks",
                (before - after).abs()
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let values: Vec<i64> = (0..50).map(|i| i * 7 % 97).collect();
        let t = table(&values);
        assert_eq!(
            rank_swap(&t, 0, 20, 1).unwrap(),
            rank_swap(&t, 0, 20, 1).unwrap()
        );
        assert_ne!(
            rank_swap(&t, 0, 20, 1).unwrap(),
            rank_swap(&t, 0, 20, 2).unwrap()
        );
    }

    #[test]
    fn degenerate_inputs() {
        let t = table(&[5]);
        assert_eq!(rank_swap(&t, 0, 10, 1).unwrap(), t);
        assert_eq!(rank_swap(&t, 0, 0, 1), Err(Error::BadWindow(0)));
        assert_eq!(rank_swap(&t, 0, 101, 1), Err(Error::BadWindow(101)));
        let schema = Schema::new(vec![Attribute::cat_key("C")]).unwrap();
        let cat = table_from_str_rows(schema, &[&["a"], &["b"]]).unwrap();
        assert!(matches!(
            rank_swap(&cat, 0, 10, 1),
            Err(Error::NotNumeric(_))
        ));
    }
}
