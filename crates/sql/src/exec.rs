//! Query execution over `psens_microdata::Table`s.

use crate::ast::*;
use crate::error::{Error, Result};
use psens_microdata::{Attribute, GroupBy, Kind, Role, Schema, Table, TableBuilder, Value};
use std::collections::BTreeMap;

/// A named collection of tables queries can reference in `FROM`.
#[derive(Debug, Clone, Default)]
pub struct Catalog<'a> {
    tables: BTreeMap<String, &'a Table>,
}

impl<'a> Catalog<'a> {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `table` under `name` (replacing any previous binding).
    pub fn register(&mut self, name: impl Into<String>, table: &'a Table) -> &mut Self {
        self.tables.insert(name.into(), table);
        self
    }

    /// Looks a table up by name.
    pub fn get(&self, name: &str) -> Result<&'a Table> {
        self.tables
            .get(name)
            .copied()
            .ok_or_else(|| Error::Plan(format!("unknown table `{name}`")))
    }
}

/// Parses and executes `sql` against the catalog, returning a result table.
pub fn execute(catalog: &Catalog<'_>, sql: &str) -> Result<Table> {
    let query = crate::parser::parse(sql)?;
    execute_query(catalog, &query)
}

/// Executes an already-parsed query.
pub fn execute_query(catalog: &Catalog<'_>, query: &Query) -> Result<Table> {
    let table = catalog.get(&query.from)?;

    // WHERE: row filter.
    let filtered: Table = match &query.where_clause {
        Some(predicate) => {
            // Resolve column names once.
            check_predicate_columns(predicate, table)?;
            table.filter(|row| evaluate_predicate(predicate, table, row))
        }
        None => table.clone(),
    };

    let has_aggregates = query
        .select
        .iter()
        .any(|item| matches!(item, SelectItem::Aggregate { .. }));

    let mut result = if !query.group_by.is_empty() {
        execute_grouped(&filtered, query)?
    } else if has_aggregates {
        execute_global_aggregates(&filtered, query)?
    } else {
        execute_projection(&filtered, query)?
    };

    // ORDER BY: stable sort on one output column.
    if let Some((index, order)) = query.order_by {
        if index >= result.schema().len() {
            return Err(Error::Plan(format!(
                "ORDER BY position {} exceeds the select list",
                index + 1
            )));
        }
        let mut rows: Vec<usize> = (0..result.n_rows()).collect();
        rows.sort_by(|&a, &b| {
            let ordering = result.value(a, index).cmp(&result.value(b, index));
            match order {
                SortOrder::Asc => ordering,
                SortOrder::Desc => ordering.reverse(),
            }
        });
        result = result.take(&rows);
    }
    if let Some(limit) = query.limit {
        let rows: Vec<usize> = (0..result.n_rows().min(limit)).collect();
        result = result.take(&rows);
    }
    Ok(result)
}

fn check_predicate_columns(predicate: &Predicate, table: &Table) -> Result<()> {
    match predicate {
        Predicate::Compare { column, .. }
        | Predicate::IsNull(column)
        | Predicate::IsNotNull(column) => {
            table.schema().index_of(column)?;
            Ok(())
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_predicate_columns(a, table)?;
            check_predicate_columns(b, table)
        }
        Predicate::Not(inner) => check_predicate_columns(inner, table),
    }
}

fn evaluate_predicate(predicate: &Predicate, table: &Table, row: usize) -> bool {
    match predicate {
        Predicate::Compare {
            column,
            op,
            literal,
        } => {
            let idx = table
                .schema()
                .index_of(column)
                .expect("columns checked before evaluation");
            let value = table.value(row, idx);
            match (&value, literal) {
                // SQL three-valued logic collapsed: NULL comparisons are false.
                (Value::Missing, _) => false,
                (Value::Int(a), Value::Int(b)) => op.evaluate(a.cmp(b)),
                (Value::Text(a), Value::Text(b)) => op.evaluate(a.as_str().cmp(b.as_str())),
                // Cross-type comparisons are false rather than errors, as in
                // dynamically-typed engines.
                _ => false,
            }
        }
        Predicate::IsNull(column) => {
            let idx = table.schema().index_of(column).expect("checked");
            table.value(row, idx).is_missing()
        }
        Predicate::IsNotNull(column) => {
            let idx = table.schema().index_of(column).expect("checked");
            !table.value(row, idx).is_missing()
        }
        Predicate::And(a, b) => {
            evaluate_predicate(a, table, row) && evaluate_predicate(b, table, row)
        }
        Predicate::Or(a, b) => {
            evaluate_predicate(a, table, row) || evaluate_predicate(b, table, row)
        }
        Predicate::Not(inner) => !evaluate_predicate(inner, table, row),
    }
}

/// Output column name for a select item.
fn item_name(item: &SelectItem) -> String {
    match item {
        SelectItem::Column(name) => name.clone(),
        SelectItem::Aggregate {
            func,
            column,
            distinct,
        } => {
            let func = match func {
                AggregateFn::Count => "COUNT",
                AggregateFn::Min => "MIN",
                AggregateFn::Max => "MAX",
                AggregateFn::Sum => "SUM",
            };
            match column {
                None => format!("{func}(*)"),
                Some(col) if *distinct => format!("{func}(DISTINCT {col})"),
                Some(col) => format!("{func}({col})"),
            }
        }
    }
}

/// Output kind of a select item.
fn item_kind(item: &SelectItem, table: &Table) -> Result<Kind> {
    match item {
        SelectItem::Column(name) => {
            let idx = table.schema().index_of(name)?;
            Ok(table.schema().attribute(idx).kind())
        }
        SelectItem::Aggregate { func, column, .. } => match func {
            AggregateFn::Count => Ok(Kind::Int),
            AggregateFn::Sum => {
                let name = column.as_ref().expect("parser enforces an argument");
                let idx = table.schema().index_of(name)?;
                if table.schema().attribute(idx).kind() != Kind::Int {
                    return Err(Error::Plan(format!("SUM({name}) needs an integer column")));
                }
                Ok(Kind::Int)
            }
            AggregateFn::Min | AggregateFn::Max => {
                let name = column.as_ref().expect("parser enforces an argument");
                let idx = table.schema().index_of(name)?;
                Ok(table.schema().attribute(idx).kind())
            }
        },
    }
}

/// Evaluates an aggregate over a set of row indices.
fn evaluate_aggregate(item: &SelectItem, table: &Table, rows: &[usize]) -> Result<Value> {
    let SelectItem::Aggregate {
        func,
        column,
        distinct,
    } = item
    else {
        unreachable!("caller dispatches on aggregates");
    };
    match func {
        AggregateFn::Count => match column {
            None => Ok(Value::Int(rows.len() as i64)),
            Some(name) => {
                let idx = table.schema().index_of(name)?;
                if *distinct {
                    let mut seen = std::collections::HashSet::new();
                    for &row in rows {
                        let value = table.value(row, idx);
                        if !value.is_missing() {
                            seen.insert(value);
                        }
                    }
                    Ok(Value::Int(seen.len() as i64))
                } else {
                    let present = rows
                        .iter()
                        .filter(|&&row| !table.value(row, idx).is_missing())
                        .count();
                    Ok(Value::Int(present as i64))
                }
            }
        },
        AggregateFn::Sum => {
            let idx = table.schema().index_of(column.as_ref().expect("arg"))?;
            let mut sum = 0i64;
            let mut any = false;
            for &row in rows {
                if let Value::Int(v) = table.value(row, idx) {
                    sum = sum
                        .checked_add(v)
                        .ok_or_else(|| Error::Plan("SUM overflowed 64 bits".into()))?;
                    any = true;
                }
            }
            Ok(if any { Value::Int(sum) } else { Value::Missing })
        }
        AggregateFn::Min | AggregateFn::Max => {
            let idx = table.schema().index_of(column.as_ref().expect("arg"))?;
            let mut best: Option<Value> = None;
            for &row in rows {
                let value = table.value(row, idx);
                if value.is_missing() {
                    continue;
                }
                best = Some(match best {
                    None => value,
                    Some(current) => {
                        let take_new = match func {
                            AggregateFn::Min => value < current,
                            AggregateFn::Max => value > current,
                            _ => unreachable!(),
                        };
                        if take_new {
                            value
                        } else {
                            current
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Missing))
        }
    }
}

fn output_schema(items: &[&SelectItem], table: &Table) -> Result<Schema> {
    let mut names = std::collections::HashMap::new();
    let mut attrs = Vec::with_capacity(items.len());
    for item in items {
        let base = item_name(item);
        let count = names.entry(base.clone()).or_insert(0usize);
        *count += 1;
        let name = if *count == 1 {
            base
        } else {
            format!("{base}_{count}")
        };
        attrs.push(Attribute::new(name, item_kind(item, table)?, Role::Other));
    }
    Ok(Schema::new(attrs)?)
}

fn execute_projection(filtered: &Table, query: &Query) -> Result<Table> {
    let items: Vec<&SelectItem> = query.select.iter().collect();
    let schema = output_schema(&items, filtered)?;
    let mut builder = TableBuilder::new(schema);
    let indices: Vec<usize> = items
        .iter()
        .map(|item| match item {
            SelectItem::Column(name) => filtered.schema().index_of(name).map_err(Error::from),
            SelectItem::Aggregate { .. } => unreachable!("no aggregates here"),
        })
        .collect::<Result<_>>()?;
    for row in 0..filtered.n_rows() {
        let values = indices.iter().map(|&i| filtered.value(row, i)).collect();
        builder.push_row(values)?;
    }
    Ok(builder.finish())
}

fn execute_global_aggregates(filtered: &Table, query: &Query) -> Result<Table> {
    for item in &query.select {
        if matches!(item, SelectItem::Column(_)) {
            return Err(Error::Plan(
                "bare columns need GROUP BY when aggregates are present".into(),
            ));
        }
    }
    let items: Vec<&SelectItem> = query.select.iter().collect();
    let schema = output_schema(&items, filtered)?;
    let rows: Vec<usize> = (0..filtered.n_rows()).collect();
    let mut builder = TableBuilder::new(schema);
    let values = items
        .iter()
        .map(|item| evaluate_aggregate(item, filtered, &rows))
        .collect::<Result<Vec<_>>>()?;
    builder.push_row(values)?;
    Ok(builder.finish())
}

fn execute_grouped(filtered: &Table, query: &Query) -> Result<Table> {
    let group_cols: Vec<usize> = query
        .group_by
        .iter()
        .map(|name| filtered.schema().index_of(name).map_err(Error::from))
        .collect::<Result<_>>()?;
    // Bare select columns must be grouping columns.
    for item in &query.select {
        if let SelectItem::Column(name) = item {
            if !query.group_by.iter().any(|g| g == name) {
                return Err(Error::Plan(format!(
                    "column `{name}` must appear in GROUP BY"
                )));
            }
        }
    }
    let groups = GroupBy::compute(filtered, &group_cols);
    let rows_by_group = groups.rows_by_group();
    let items: Vec<&SelectItem> = query.select.iter().collect();
    let schema = output_schema(&items, filtered)?;
    let mut builder = TableBuilder::new(schema);
    for (g, members) in rows_by_group.iter().enumerate() {
        let member_rows: Vec<usize> = members.iter().map(|&r| r as usize).collect();
        // HAVING: filter groups by one aggregate comparison.
        if let Some(having) = &query.having {
            let value = evaluate_aggregate(&having.aggregate, filtered, &member_rows)?;
            let keep = match (&value, &having.literal) {
                (Value::Int(a), Value::Int(b)) => having.op.evaluate(a.cmp(b)),
                (Value::Text(a), Value::Text(b)) => having.op.evaluate(a.as_str().cmp(b.as_str())),
                _ => false,
            };
            if !keep {
                continue;
            }
        }
        let representative = members[0] as usize;
        let values = items
            .iter()
            .map(|item| match item {
                SelectItem::Column(name) => {
                    let idx = filtered.schema().index_of(name)?;
                    Ok(filtered.value(representative, idx))
                }
                SelectItem::Aggregate { .. } => evaluate_aggregate(item, filtered, &member_rows),
            })
            .collect::<Result<Vec<_>>>()?;
        builder.push_row(values)?;
        let _ = g;
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use psens_datasets::paper::{table1_patients, table3_psensitive_example};

    fn catalog_with<'a>(name: &str, table: &'a Table) -> Catalog<'a> {
        let mut catalog = Catalog::new();
        catalog.register(name, table);
        catalog
    }

    #[test]
    fn the_papers_k_anonymity_check_runs_verbatim() {
        // "SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age" — if the
        // results include groups with count less than k, Patient is not
        // k-anonymous.
        let patient = table1_patients();
        let catalog = catalog_with("Patient", &patient);
        let result = execute(
            &catalog,
            "SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age",
        )
        .unwrap();
        assert_eq!(result.n_rows(), 3);
        for row in 0..result.n_rows() {
            assert!(result.value(row, 0).as_int().unwrap() >= 2, "2-anonymous");
        }
        // The HAVING form directly lists violating groups: none for k = 2.
        let violators = execute(
            &catalog,
            "SELECT Sex, ZipCode, Age, COUNT(*) FROM Patient \
             GROUP BY Sex, ZipCode, Age HAVING COUNT(*) < 2",
        )
        .unwrap();
        assert_eq!(violators.n_rows(), 0);
        // ...and three for k = 3.
        let violators = execute(
            &catalog,
            "SELECT Sex, COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age \
             HAVING COUNT(*) < 3",
        )
        .unwrap();
        assert_eq!(violators.n_rows(), 3);
    }

    #[test]
    fn the_papers_count_distinct_runs_verbatim() {
        // "SELECT COUNT (distinct Sj) FROM IM" — Condition 1's s_j.
        let im = table3_psensitive_example();
        let catalog = catalog_with("IM", &im);
        let result = execute(&catalog, "SELECT COUNT(DISTINCT Illness) FROM IM").unwrap();
        assert_eq!(result.value(0, 0), Value::Int(3));
        let result = execute(&catalog, "SELECT COUNT(DISTINCT Income) FROM IM").unwrap();
        assert_eq!(result.value(0, 0), Value::Int(3));
    }

    #[test]
    fn where_filters_rows() {
        let patient = table1_patients();
        let catalog = catalog_with("Patient", &patient);
        let result = execute(
            &catalog,
            "SELECT Illness FROM Patient WHERE Sex = 'M' AND Age <> '50'",
        )
        .unwrap();
        assert_eq!(result.n_rows(), 2);
        assert_eq!(result.value(0, 0), Value::Text("Diabetes".into()));
    }

    #[test]
    fn aggregates_min_max_sum() {
        let t = table3_psensitive_example();
        let catalog = catalog_with("T", &t);
        let result = execute(
            &catalog,
            "SELECT MIN(Income), MAX(Income), SUM(Income), COUNT(Income) FROM T",
        )
        .unwrap();
        assert_eq!(result.value(0, 0), Value::Int(30000));
        assert_eq!(result.value(0, 1), Value::Int(50000));
        assert_eq!(result.value(0, 2), Value::Int(290000));
        assert_eq!(result.value(0, 3), Value::Int(7));
    }

    #[test]
    fn group_by_with_keys_and_order() {
        let t = table3_psensitive_example();
        let catalog = catalog_with("T", &t);
        let result = execute(
            &catalog,
            "SELECT Sex, COUNT(*), COUNT(DISTINCT Illness) FROM T GROUP BY Sex \
             ORDER BY 2 DESC",
        )
        .unwrap();
        assert_eq!(result.n_rows(), 2);
        assert_eq!(result.value(0, 0), Value::Text("M".into()));
        assert_eq!(result.value(0, 1), Value::Int(4));
        assert_eq!(result.value(0, 2), Value::Int(2));
        assert_eq!(result.value(1, 1), Value::Int(3));
    }

    #[test]
    fn limit_and_order_on_projection() {
        let t = table1_patients();
        let catalog = catalog_with("T", &t);
        let result = execute(&catalog, "SELECT Illness FROM T ORDER BY 1 ASC LIMIT 2").unwrap();
        assert_eq!(result.n_rows(), 2);
        assert_eq!(result.value(0, 0), Value::Text("Breast Cancer".into()));
        assert_eq!(result.value(1, 0), Value::Text("Colon Cancer".into()));
    }

    #[test]
    fn null_semantics() {
        use psens_microdata::table_from_str_rows;
        let schema = Schema::new(vec![
            Attribute::new("A", Kind::Int, Role::Other),
            Attribute::new("B", Kind::Cat, Role::Other),
        ])
        .unwrap();
        let t = table_from_str_rows(schema, &[&["1", "x"], &["?", "y"], &["3", "?"]]).unwrap();
        let catalog = catalog_with("T", &t);
        // NULL never satisfies a comparison.
        let r = execute(&catalog, "SELECT B FROM T WHERE A > 0").unwrap();
        assert_eq!(r.n_rows(), 2);
        let r = execute(&catalog, "SELECT B FROM T WHERE A IS NULL").unwrap();
        assert_eq!(r.n_rows(), 1);
        assert_eq!(r.value(0, 0), Value::Text("y".into()));
        // COUNT(col) skips NULLs; COUNT(*) does not.
        let r = execute(&catalog, "SELECT COUNT(*), COUNT(A), COUNT(B) FROM T").unwrap();
        assert_eq!(r.value(0, 0), Value::Int(3));
        assert_eq!(r.value(0, 1), Value::Int(2));
        assert_eq!(r.value(0, 2), Value::Int(2));
        // MIN over an empty set is NULL.
        let r = execute(&catalog, "SELECT MIN(A) FROM T WHERE A > 100").unwrap();
        assert_eq!(r.value(0, 0), Value::Missing);
    }

    #[test]
    fn plan_errors() {
        let t = table1_patients();
        let catalog = catalog_with("T", &t);
        assert!(execute(&catalog, "SELECT X FROM T").is_err());
        assert!(execute(&catalog, "SELECT Age FROM Nope").is_err());
        assert!(execute(&catalog, "SELECT Age, COUNT(*) FROM T").is_err());
        assert!(execute(&catalog, "SELECT Illness FROM T GROUP BY Sex").is_err());
        assert!(execute(&catalog, "SELECT SUM(Illness) FROM T").is_err());
        assert!(execute(&catalog, "SELECT Age FROM T WHERE Nope = 1").is_err());
        assert!(execute(&catalog, "SELECT Age FROM T ORDER BY 5").is_err());
    }

    #[test]
    fn duplicate_select_items_get_unique_names() {
        let t = table1_patients();
        let catalog = catalog_with("T", &t);
        let r = execute(&catalog, "SELECT COUNT(*), COUNT(*) FROM T").unwrap();
        assert_eq!(r.schema().attribute(0).name(), "COUNT(*)");
        assert_eq!(r.schema().attribute(1).name(), "COUNT(*)_2");
    }

    #[test]
    fn empty_group_by_result() {
        let t = table1_patients().filter(|_| false);
        let catalog = catalog_with("T", &t);
        let r = execute(&catalog, "SELECT Sex, COUNT(*) FROM T GROUP BY Sex").unwrap();
        assert_eq!(r.n_rows(), 0);
        // Global aggregate over the empty table still yields one row.
        let r = execute(&catalog, "SELECT COUNT(*) FROM T").unwrap();
        assert_eq!(r.value(0, 0), Value::Int(0));
    }
}
