//! Abstract syntax for the SQL subset.

use psens_microdata::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Applies the operator to an ordering outcome.
    pub fn evaluate(self, ordering: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ordering),
            (CompareOp::Eq, Equal)
                | (CompareOp::Neq, Less | Greater)
                | (CompareOp::Lt, Less)
                | (CompareOp::Le, Less | Equal)
                | (CompareOp::Gt, Greater)
                | (CompareOp::Ge, Greater | Equal)
        )
    }
}

/// A row predicate (the `WHERE` clause).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op literal`
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Literal to compare against.
        literal: Value,
    },
    /// `column IS NULL`
    IsNull(String),
    /// `column IS NOT NULL`
    IsNotNull(String),
    /// Logical conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Logical disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Logical negation.
    Not(Box<Predicate>),
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateFn {
    /// `COUNT(*)` / `COUNT(col)` / `COUNT(DISTINCT col)`
    Count,
    /// `MIN(col)`
    Min,
    /// `MAX(col)`
    Max,
    /// `SUM(col)` (integer columns only)
    Sum,
}

/// One item in the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A bare column reference.
    Column(String),
    /// An aggregate call.
    Aggregate {
        /// The function.
        func: AggregateFn,
        /// Argument column; `None` means `*` (COUNT only).
        column: Option<String>,
        /// `DISTINCT` modifier (COUNT only).
        distinct: bool,
    },
}

/// A `HAVING` condition: `aggregate op literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Having {
    /// The aggregate on the left-hand side.
    pub aggregate: SelectItem,
    /// The operator.
    pub op: CompareOp,
    /// The right-hand literal.
    pub literal: Value,
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Ascending (default).
    Asc,
    /// Descending.
    Desc,
}

/// A full query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The select list.
    pub select: Vec<SelectItem>,
    /// Table name after `FROM` (checked against the supplied table's name).
    pub from: String,
    /// Optional row filter.
    pub where_clause: Option<Predicate>,
    /// Grouping columns.
    pub group_by: Vec<String>,
    /// Optional group filter.
    pub having: Option<Having>,
    /// Output ordering: `(select-list index, direction)`.
    pub order_by: Option<(usize, SortOrder)>,
    /// Optional row cap.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn compare_op_truth_table() {
        assert!(CompareOp::Eq.evaluate(Ordering::Equal));
        assert!(!CompareOp::Eq.evaluate(Ordering::Less));
        assert!(CompareOp::Neq.evaluate(Ordering::Less));
        assert!(!CompareOp::Neq.evaluate(Ordering::Equal));
        assert!(CompareOp::Lt.evaluate(Ordering::Less));
        assert!(CompareOp::Le.evaluate(Ordering::Equal));
        assert!(CompareOp::Gt.evaluate(Ordering::Greater));
        assert!(CompareOp::Ge.evaluate(Ordering::Greater));
        assert!(!CompareOp::Ge.evaluate(Ordering::Less));
    }
}
