//! Tokenizer for the SQL subset.

use crate::error::{Error, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Bare identifier or keyword (keywords are matched case-insensitively
    /// by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single-quoted string literal (with `''` escaping).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Splits `input` into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            ',' => {
                chars.next();
                tokens.push(Token::Comma);
            }
            '(' => {
                chars.next();
                tokens.push(Token::LParen);
            }
            ')' => {
                chars.next();
                tokens.push(Token::RParen);
            }
            '*' => {
                chars.next();
                tokens.push(Token::Star);
            }
            '=' => {
                chars.next();
                tokens.push(Token::Eq);
            }
            '!' => {
                chars.next();
                if chars.next() != Some('=') {
                    return Err(Error::Lex("expected `=` after `!`".into()));
                }
                tokens.push(Token::Neq);
            }
            '<' => {
                chars.next();
                match chars.peek() {
                    Some('=') => {
                        chars.next();
                        tokens.push(Token::Le);
                    }
                    Some('>') => {
                        chars.next();
                        tokens.push(Token::Neq);
                    }
                    _ => tokens.push(Token::Lt),
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token::Ge);
                } else {
                    tokens.push(Token::Gt);
                }
            }
            '\'' => {
                chars.next();
                let mut text = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => {
                            if chars.peek() == Some(&'\'') {
                                chars.next();
                                text.push('\'');
                            } else {
                                break;
                            }
                        }
                        Some(other) => text.push(other),
                        None => return Err(Error::Lex("unterminated string literal".into())),
                    }
                }
                tokens.push(Token::Str(text));
            }
            c if c.is_ascii_digit() || c == '-' => {
                chars.next();
                let mut number = String::new();
                number.push(c);
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        number.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: i64 = number
                    .parse()
                    .map_err(|_| Error::Lex(format!("bad number `{number}`")))?;
                tokens.push(Token::Int(value));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(ident));
            }
            other => return Err(Error::Lex(format!("unexpected character `{other}`"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_papers_statement() {
        let tokens = tokenize("SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age").unwrap();
        assert_eq!(tokens[0], Token::Ident("SELECT".into()));
        assert_eq!(tokens[1], Token::Ident("COUNT".into()));
        assert_eq!(tokens[2], Token::LParen);
        assert_eq!(tokens[3], Token::Star);
        assert_eq!(tokens[4], Token::RParen);
        assert!(tokens.contains(&Token::Comma));
    }

    #[test]
    fn operators_and_literals() {
        let tokens = tokenize("a = 1 AND b <> 'x''y' OR c >= -5 AND d != 2 AND e <= 3").unwrap();
        assert!(tokens.contains(&Token::Eq));
        assert!(tokens.contains(&Token::Neq));
        assert!(tokens.contains(&Token::Ge));
        assert!(tokens.contains(&Token::Le));
        assert!(tokens.contains(&Token::Str("x'y".into())));
        assert!(tokens.contains(&Token::Int(-5)));
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a ; b").is_err());
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(tokenize("   ").unwrap().is_empty());
    }
}
