//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query      := SELECT items FROM ident [WHERE pred] [GROUP BY cols]
//!               [HAVING having] [ORDER BY item [ASC|DESC]] [LIMIT int]
//! items      := item ("," item)*
//! item       := agg | ident
//! agg        := COUNT "(" "*" ")" | COUNT "(" [DISTINCT] ident ")"
//!             | (MIN|MAX|SUM) "(" ident ")"
//! pred       := conj (OR conj)*
//! conj       := unary (AND unary)*
//! unary      := NOT unary | "(" pred ")" | comparison
//! comparison := ident (op literal | IS [NOT] NULL)
//! having     := agg op literal
//! ```

use crate::ast::*;
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token};
use psens_microdata::Value;

/// Parses one query.
pub fn parse(input: &str) -> Result<Query> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.query()?;
    if parser.pos != parser.tokens.len() {
        return Err(Error::Parse(format!(
            "unexpected trailing input at token {}",
            parser.pos
        )));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).cloned();
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    /// True (and consumes) when the next token is the keyword `kw`.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(word)) = self.peek() {
            if word.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected `{kw}`")))
        }
    }

    fn expect(&mut self, token: Token) -> Result<()> {
        if self.peek() == Some(&token) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::Parse(format!(
                "expected {token:?}, got {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(name),
            other => Err(Error::Parse(format!("expected identifier, got {other:?}"))),
        }
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            select.push(self.select_item()?);
        }
        self.expect_keyword("FROM")?;
        let from = self.ident()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.predicate()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.ident()?);
            while self.peek() == Some(&Token::Comma) {
                self.pos += 1;
                group_by.push(self.ident()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            let aggregate = self.select_item()?;
            if matches!(aggregate, SelectItem::Column(_)) {
                return Err(Error::Parse("HAVING requires an aggregate".into()));
            }
            let op = self.compare_op()?;
            let literal = self.literal()?;
            Some(Having {
                aggregate,
                op,
                literal,
            })
        } else {
            None
        };
        let order_by = if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            let index = match self.next() {
                Some(Token::Int(i)) if i >= 1 => (i - 1) as usize,
                other => {
                    return Err(Error::Parse(format!(
                        "ORDER BY takes a 1-based select-list position, got {other:?}"
                    )))
                }
            };
            let order = if self.eat_keyword("DESC") {
                SortOrder::Desc
            } else {
                let _ = self.eat_keyword("ASC");
                SortOrder::Asc
            };
            Some((index, order))
        } else {
            None
        };
        let limit = if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => return Err(Error::Parse(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        let name = self.ident()?;
        let func = if name.eq_ignore_ascii_case("COUNT") {
            Some(AggregateFn::Count)
        } else if name.eq_ignore_ascii_case("MIN") {
            Some(AggregateFn::Min)
        } else if name.eq_ignore_ascii_case("MAX") {
            Some(AggregateFn::Max)
        } else if name.eq_ignore_ascii_case("SUM") {
            Some(AggregateFn::Sum)
        } else {
            None
        };
        match func {
            Some(func) if self.peek() == Some(&Token::LParen) => {
                self.pos += 1;
                let (column, distinct) = if self.peek() == Some(&Token::Star) {
                    if func != AggregateFn::Count {
                        return Err(Error::Parse("only COUNT accepts `*`".into()));
                    }
                    self.pos += 1;
                    (None, false)
                } else {
                    let distinct = self.eat_keyword("DISTINCT");
                    if distinct && func != AggregateFn::Count {
                        return Err(Error::Parse("only COUNT accepts DISTINCT".into()));
                    }
                    (Some(self.ident()?), distinct)
                };
                self.expect(Token::RParen)?;
                Ok(SelectItem::Aggregate {
                    func,
                    column,
                    distinct,
                })
            }
            _ => Ok(SelectItem::Column(name)),
        }
    }

    fn compare_op(&mut self) -> Result<CompareOp> {
        match self.next() {
            Some(Token::Eq) => Ok(CompareOp::Eq),
            Some(Token::Neq) => Ok(CompareOp::Neq),
            Some(Token::Lt) => Ok(CompareOp::Lt),
            Some(Token::Le) => Ok(CompareOp::Le),
            Some(Token::Gt) => Ok(CompareOp::Gt),
            Some(Token::Ge) => Ok(CompareOp::Ge),
            other => Err(Error::Parse(format!("expected comparison, got {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            other => Err(Error::Parse(format!("expected literal, got {other:?}"))),
        }
    }

    fn predicate(&mut self) -> Result<Predicate> {
        let mut left = self.conjunction()?;
        while self.eat_keyword("OR") {
            let right = self.conjunction()?;
            left = Predicate::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Predicate> {
        let mut left = self.unary()?;
        while self.eat_keyword("AND") {
            let right = self.unary()?;
            left = Predicate::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Predicate> {
        if self.eat_keyword("NOT") {
            return Ok(Predicate::Not(Box::new(self.unary()?)));
        }
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let inner = self.predicate()?;
            self.expect(Token::RParen)?;
            return Ok(inner);
        }
        let column = self.ident()?;
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(if negated {
                Predicate::IsNotNull(column)
            } else {
                Predicate::IsNull(column)
            });
        }
        let op = self.compare_op()?;
        let literal = self.literal()?;
        Ok(Predicate::Compare {
            column,
            op,
            literal,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_group_by() {
        let q = parse("SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age").unwrap();
        assert_eq!(q.from, "Patient");
        assert_eq!(q.group_by, vec!["Sex", "ZipCode", "Age"]);
        assert_eq!(
            q.select,
            vec![SelectItem::Aggregate {
                func: AggregateFn::Count,
                column: None,
                distinct: false
            }]
        );
    }

    #[test]
    fn parses_the_papers_count_distinct() {
        let q = parse("SELECT COUNT(DISTINCT S1) FROM IM").unwrap();
        assert_eq!(
            q.select,
            vec![SelectItem::Aggregate {
                func: AggregateFn::Count,
                column: Some("S1".into()),
                distinct: true
            }]
        );
    }

    #[test]
    fn parses_where_having_order_limit() {
        let q = parse(
            "SELECT Sex, COUNT(*) FROM T WHERE Age >= 30 AND NOT (Sex = 'M' OR Zip IS NULL) \
             GROUP BY Sex HAVING COUNT(*) < 2 ORDER BY 2 DESC LIMIT 5",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
        let having = q.having.unwrap();
        assert_eq!(having.op, CompareOp::Lt);
        assert_eq!(having.literal, Value::Int(2));
        assert_eq!(q.order_by, Some((1, SortOrder::Desc)));
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("select Age from t where Age is not null group by Age").unwrap();
        assert_eq!(q.group_by, vec!["Age"]);
        assert_eq!(q.where_clause, Some(Predicate::IsNotNull("Age".into())));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("FROM t").is_err());
        assert!(parse("SELECT FROM t").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT MIN(*) FROM t").is_err());
        assert!(parse("SELECT SUM(DISTINCT a) FROM t").is_err());
        assert!(parse("SELECT a FROM t WHERE").is_err());
        assert!(parse("SELECT a FROM t GROUP a").is_err());
        assert!(parse("SELECT a FROM t HAVING a > 1").is_err());
        assert!(parse("SELECT a FROM t ORDER BY a").is_err());
        assert!(parse("SELECT a FROM t extra").is_err());
    }
}
