//! # psens-sql
//!
//! A small SQL subset over [`psens_microdata::Table`]s — enough to run the
//! paper's own statements verbatim:
//!
//! - `SELECT COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age` — the
//!   k-anonymity test of Definition 1 ("if the results include groups with
//!   count less than k, the relation Patient does not have k-anonymity");
//! - `SELECT COUNT(DISTINCT S1) FROM IM` — Condition 1's `s_j`.
//!
//! Supported: `SELECT` with bare columns and `COUNT(*)/COUNT/COUNT
//! DISTINCT/MIN/MAX/SUM`, `WHERE` with `AND/OR/NOT`, comparisons and
//! `IS [NOT] NULL`, `GROUP BY`, `HAVING <aggregate> <op> <literal>`,
//! `ORDER BY <select position> [ASC|DESC]`, and `LIMIT`.
//!
//! ## Example
//!
//! ```
//! use psens_sql::{execute, Catalog};
//! use psens_datasets::paper::table1_patients;
//!
//! let patient = table1_patients();
//! let mut catalog = Catalog::new();
//! catalog.register("Patient", &patient);
//!
//! // Groups violating 2-anonymity — none, Table 1 is 2-anonymous.
//! let violators = execute(
//!     &catalog,
//!     "SELECT Sex, COUNT(*) FROM Patient GROUP BY Sex, ZipCode, Age HAVING COUNT(*) < 2",
//! ).unwrap();
//! assert_eq!(violators.n_rows(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
mod error;
mod exec;
mod lexer;
mod parser;

pub use error::{Error, Result};
pub use exec::{execute, execute_query, Catalog};
pub use parser::parse;
