//! Errors for the SQL subset.

use std::fmt;

/// Errors produced while lexing, parsing, or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Tokenizer failure.
    Lex(String),
    /// Parser failure.
    Parse(String),
    /// Binder/executor failure (unknown column, bad aggregate use, ...).
    Plan(String),
    /// Error bubbled up from the microdata layer.
    Microdata(psens_microdata::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Lex(msg) => write!(f, "lex error: {msg}"),
            Error::Parse(msg) => write!(f, "parse error: {msg}"),
            Error::Plan(msg) => write!(f, "plan error: {msg}"),
            Error::Microdata(e) => write!(f, "microdata error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Microdata(e) => Some(e),
            _ => None,
        }
    }
}

impl From<psens_microdata::Error> for Error {
    fn from(e: psens_microdata::Error) -> Self {
        Error::Microdata(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Lex("x".into()).to_string().contains("lex"));
        assert!(Error::Parse("x".into()).to_string().contains("parse"));
        assert!(Error::Plan("x".into()).to_string().contains("plan"));
        let e: Error = psens_microdata::Error::UnknownAttribute("Q".into()).into();
        assert!(e.to_string().contains("Q"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
