//! Robustness: the lexer/parser/executor must return errors, never panic,
//! on arbitrary input.

use proptest::prelude::*;
use psens_sql::{execute, parse, Catalog};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_arbitrary_text(input in ".{0,120}") {
        let _ = parse(&input);
    }

    #[test]
    fn parser_never_panics_on_sql_shaped_text(
        input in "(SELECT|FROM|WHERE|GROUP|BY|HAVING|COUNT|DISTINCT|ORDER|LIMIT|AND|OR|NOT|NULL|IS|\\*|,|\\(|\\)|=|<|>|<=|>=|<>|x|y|s|T|'a'|1|-2| ){0,30}"
    ) {
        let _ = parse(&input);
    }

    #[test]
    fn executor_never_panics_on_valid_parses(
        input in "(SELECT|FROM|WHERE|GROUP|BY|HAVING|COUNT|DISTINCT|\\*|,|\\(|\\)|=|<|>|X|Y|S|T|'a'|1| ){0,24}"
    ) {
        // Whatever parses must execute to Ok or Err, never panic.
        if parse(&input).is_ok() {
            let table = psens_datasets::paper::figure3_microdata();
            let mut catalog = Catalog::new();
            catalog.register("T", &table);
            let _ = execute(&catalog, &input);
        }
    }
}
