//! The QI spaces the suites walk, factored out of the per-suite copies.
//!
//! All spaces are small on purpose: every oracle compares whole-lattice
//! results against a serial recompute, so lattice size multiplies directly
//! into test time.

use psens_hierarchy::{builders, CatHierarchy, Hierarchy, IntHierarchy, IntLevel, QiSpace};

/// The shared 3-level X hierarchy: `{x0..x3} → {xa, xb} → *`.
fn x_hierarchy() -> CatHierarchy {
    CatHierarchy::identity(["x0", "x1", "x2", "x3"])
        .unwrap()
        .push_level([("x0", "xa"), ("x1", "xa"), ("x2", "xb"), ("x3", "xb")])
        .unwrap()
        .push_top("*")
        .unwrap()
}

/// QI space over X (3 levels) and A (3 levels: unit ranges, `[0-1][2-3][4-5]`,
/// `*`); Y is deliberately left out, so it stays a static key column.
pub fn wide_qi_space() -> QiSpace {
    let a = IntHierarchy::new(vec![
        IntLevel::Ranges {
            cuts: vec![2, 4],
            labels: vec!["0-1".into(), "2-3".into(), "4-5".into()],
        },
        IntLevel::Single("*".into()),
    ])
    .unwrap();
    QiSpace::new(vec![
        ("X".into(), Hierarchy::Cat(x_hierarchy())),
        ("A".into(), Hierarchy::Int(a)),
    ])
    .unwrap()
}

/// [`wide_qi_space`] plus flat Y (2 leaves): a 12-node lattice of height 4 —
/// small enough for exhaustive oracles, big enough that 8-thread chunking
/// splits real strata.
pub fn search_qi_space() -> QiSpace {
    let a = IntHierarchy::new(vec![
        IntLevel::Ranges {
            cuts: vec![2, 4],
            labels: vec!["0-1".into(), "2-3".into(), "4-5".into()],
        },
        IntLevel::Single("*".into()),
    ])
    .unwrap();
    QiSpace::new(vec![
        ("X".into(), Hierarchy::Cat(x_hierarchy())),
        ("A".into(), Hierarchy::Int(a)),
        (
            "Y".into(),
            builders::flat_hierarchy(vec!["y0", "y1"]).unwrap(),
        ),
    ])
    .unwrap()
}

/// A flat one-attribute QI space over Y's three-value kernel domain; X and A
/// become static key columns.
pub fn flat_y_qi_space() -> QiSpace {
    QiSpace::new(vec![(
        "Y".into(),
        builders::flat_hierarchy(vec!["y0", "y1", "y2"]).unwrap(),
    )])
    .unwrap()
}

/// QI space over X (3 levels) and a coarser A (2 ranges, then `*`): the
/// 6-node lattice the chunked search-verdict oracle can walk quickly.
pub fn narrow_qi_space() -> QiSpace {
    let a = IntHierarchy::new(vec![
        IntLevel::Ranges {
            cuts: vec![2],
            labels: vec!["0-1".into(), "2-3".into()],
        },
        IntLevel::Single("*".into()),
    ])
    .unwrap();
    QiSpace::new(vec![
        ("X".into(), Hierarchy::Cat(x_hierarchy())),
        ("A".into(), Hierarchy::Int(a)),
    ])
    .unwrap()
}
