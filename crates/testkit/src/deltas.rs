//! Seeded delta-sequence generation for the incremental oracles.
//!
//! The incremental equivalence suite needs *adversarial* batch mixes —
//! exact duplicate appends (sterile candidates), delete-only batches that
//! kill whole QI groups, fresh rows that shift confidential statistics,
//! and append+delete batches that net out to zero — produced
//! deterministically from a seed so CI and local runs replay identically.

use psens_microdata::{DeltaBatch, Table, Value};
use std::collections::BTreeSet;

/// A tiny deterministic generator (xorshift64*), deliberately not a crypto
/// or statistics RNG: the suites only need seedable, platform-stable
/// variety.
#[derive(Debug, Clone)]
pub struct DeltaRng(u64);

impl DeltaRng {
    /// Seeds the generator; a zero seed is mapped to 1 (xorshift fixpoint).
    pub fn new(seed: u64) -> DeltaRng {
        DeltaRng(seed.max(1))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..bound` (`bound = 0` returns 0).
    pub fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as usize
        }
    }
}

/// One step of a generated delta script: the batch plus the table it
/// produced, so assertions can compare against the ground truth without
/// re-applying.
#[derive(Debug, Clone)]
pub struct DeltaStep {
    /// The batch applied at this step.
    pub batch: DeltaBatch,
    /// The table after applying [`batch`](Self::batch).
    pub after: Table,
}

/// Generates `n` batches against `base`, deterministically from `seed`.
///
/// Per batch (roll ∈ 0..100 against the *current* table):
///
/// - roll < 25, table non-empty: **duplicate appends** — 1–3 exact copies
///   of existing rows. These are the sterile candidates: on a table whose
///   ground groups are large enough, the invalidation classifier must keep
///   every cached verdict.
/// - roll < 50, table has > 4 rows: **delete-only** — 1–3 distinct
///   indices. Deletes shrink groups toward the k boundary and can kill a
///   group outright.
/// - roll < 62, table non-empty: **net-zero churn** — append copies of
///   1–2 rows and delete those same indices; the row multiset is unchanged
///   so every model's verdicts must be kept verbatim.
/// - otherwise: **fresh rows** — 1–2 rows from `fresh`, plus occasionally
///   one delete. Births new groups and shifts confidential stats.
///
/// `fresh` must return full rows in `base`'s schema order.
pub fn delta_script(
    base: &Table,
    n: usize,
    seed: u64,
    mut fresh: impl FnMut(&mut DeltaRng) -> Vec<Value>,
) -> Vec<DeltaStep> {
    let mut rng = DeltaRng::new(seed);
    let mut current = base.clone();
    let mut steps = Vec::with_capacity(n);
    for _ in 0..n {
        let n_rows = current.n_rows();
        let roll = rng.below(100);
        let batch = if roll < 25 && n_rows > 0 {
            let copies = 1 + rng.below(3);
            let appends = (0..copies)
                .map(|_| current.row(rng.below(n_rows)).expect("index in range"))
                .collect();
            DeltaBatch::append_rows(appends)
        } else if roll < 50 && n_rows > 4 {
            let mut victims = BTreeSet::new();
            for _ in 0..1 + rng.below(3) {
                victims.insert(rng.below(n_rows));
            }
            DeltaBatch::delete_rows(victims.into_iter().collect())
        } else if roll < 62 && n_rows > 0 {
            let mut victims = BTreeSet::new();
            for _ in 0..1 + rng.below(2) {
                victims.insert(rng.below(n_rows));
            }
            let deletes: Vec<usize> = victims.into_iter().collect();
            let appends = deletes
                .iter()
                .map(|&ix| current.row(ix).expect("index in range"))
                .collect();
            DeltaBatch { appends, deletes }
        } else {
            let appends: Vec<Vec<Value>> = (0..1 + rng.below(2)).map(|_| fresh(&mut rng)).collect();
            let deletes = if n_rows > 8 && rng.below(4) == 0 {
                vec![rng.below(n_rows)]
            } else {
                Vec::new()
            };
            DeltaBatch { appends, deletes }
        };
        current = batch.apply(&current).expect("generated batch is valid");
        steps.push(DeltaStep {
            batch,
            after: current.clone(),
        });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{build_wide_table, wide_schema, WideRow};

    fn base() -> Table {
        let rows: Vec<WideRow> = (0..12)
            .map(|i| {
                (
                    i % 4,
                    false,
                    i % 6,
                    false,
                    i % 3,
                    i % 4,
                    false,
                    (i % 3) as i64,
                )
            })
            .collect();
        build_wide_table(&rows)
    }

    fn fresh_row(rng: &mut DeltaRng) -> Vec<Value> {
        vec![
            Value::Text(format!("id-new-{}", rng.below(1000))),
            Value::Text(format!("x{}", rng.below(4))),
            Value::Int(rng.below(6) as i64),
            Value::Text(format!("y{}", rng.below(3))),
            Value::Text(format!("s{}", rng.below(4))),
            Value::Int(rng.below(3) as i64),
        ]
    }

    #[test]
    fn script_is_deterministic_and_replayable() {
        let t = base();
        let a = delta_script(&t, 40, 7, fresh_row);
        let b = delta_script(&t, 40, 7, fresh_row);
        assert_eq!(a.len(), 40);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.batch, y.batch);
            assert_eq!(x.after, y.after);
        }
        // Replaying the batches from scratch reproduces every intermediate.
        let mut current = t;
        for step in &a {
            current = step.batch.apply(&current).unwrap();
            assert_eq!(current, step.after);
        }
    }

    #[test]
    fn script_mixes_batch_shapes() {
        let t = base();
        let steps = delta_script(&t, 120, 3, fresh_row);
        let append_only = steps.iter().filter(|s| s.batch.is_append_only()).count();
        let with_deletes = steps.iter().filter(|s| !s.batch.deletes.is_empty()).count();
        let net_zero = steps
            .iter()
            .filter(|s| !s.batch.is_empty() && s.batch.appends.len() == s.batch.deletes.len())
            .count();
        assert!(append_only > 10, "append-only batches: {append_only}");
        assert!(with_deletes > 10, "deleting batches: {with_deletes}");
        assert!(net_zero > 0, "net-zero-shaped batches: {net_zero}");
        assert_eq!(steps.last().unwrap().after.schema(), &wide_schema());
    }
}
