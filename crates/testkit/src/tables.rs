//! Shared schemas, proptest row strategies, and table builders.
//!
//! Two families cover the integration suites:
//!
//! - the **wide** family (identifier + three keys + two confidential
//!   attributes) used by the kernel and search equivalence oracles, and
//! - the **narrow** family (two keys + one confidential attribute) used by
//!   the chunked-layer oracle, where small rows keep the chunk count high.
//!
//! The strategies keep the exact tuple structure of the per-suite copies
//! they replaced (see the crate docs for why).

use proptest::prelude::*;
use psens_microdata::{Attribute, Schema, Table, TableBuilder, Value};

/// Keys: categorical X, integer A, categorical Y. Confidential: categorical
/// S and integer T. Plus one identifier column that every pipeline drops.
///
/// Whether Y sits inside the QI space is the caller's choice — the kernel
/// suite deliberately leaves it out (grouped at ground level by both
/// evaluation paths), the search suite puts it in as a flat hierarchy.
pub fn wide_schema() -> Schema {
    Schema::new(vec![
        Attribute::cat_identifier("Id"),
        Attribute::cat_key("X"),
        Attribute::int_key("A"),
        Attribute::cat_key("Y"),
        Attribute::cat_confidential("S"),
        Attribute::int_confidential("T"),
    ])
    .unwrap()
}

/// One random wide row: domain indices, with independent missing flags for
/// the maskable cells (X, A, S — missing must group with missing at every
/// level in every evaluation path).
pub type WideRow = (u8, bool, u8, bool, u8, u8, bool, i64);

/// Strategy for [`WideRow`]s with `y_domain` distinct Y values.
///
/// The kernel suite uses `y_domain = 3` (Y is a static key there, so an
/// extra value stresses ground grouping); the search suite uses
/// `y_domain = 2` to match its two-leaf flat Y hierarchy.
pub fn arb_wide_row(y_domain: u8) -> impl Strategy<Value = WideRow> {
    (
        0u8..4,        // X index
        any::<bool>(), // X missing?
        0u8..6,        // A value
        any::<bool>(), // A missing?
        0u8..y_domain, // Y index
        0u8..4,        // S index
        any::<bool>(), // S missing?
        0i64..3,       // T value
    )
}

/// Materializes wide rows into a [`Table`]; a maskable cell is missing iff
/// its flag is set *and* its domain index is divisible by 3 (so missing
/// stays correlated with particular domain values, not uniform noise).
pub fn build_wide_table(rows: &[WideRow]) -> Table {
    let mut builder = TableBuilder::new(wide_schema());
    for (i, &(x, x_miss, a, a_miss, y, s, s_miss, t)) in rows.iter().enumerate() {
        let x = if x_miss && x % 3 == 0 {
            Value::Missing
        } else {
            Value::Text(format!("x{x}"))
        };
        let a = if a_miss && a % 3 == 0 {
            Value::Missing
        } else {
            Value::Int(a as i64)
        };
        let s = if s_miss && s % 3 == 0 {
            Value::Missing
        } else {
            Value::Text(format!("s{s}"))
        };
        builder
            .push_row(vec![
                Value::Text(format!("id{i}")),
                x,
                a,
                Value::Text(format!("y{y}")),
                s,
                Value::Int(t),
            ])
            .unwrap();
    }
    builder.finish()
}

/// Categorical key X, integer key A, categorical confidential S; the
/// maskable cells can be missing (missing compares equal to missing).
pub fn narrow_schema() -> Schema {
    Schema::new(vec![
        Attribute::cat_key("X"),
        Attribute::int_key("A"),
        Attribute::cat_confidential("S"),
    ])
    .unwrap()
}

/// One random narrow row: `(x, a, a_missing, s, s_missing)`.
pub type NarrowRow = (u8, i64, bool, u8, bool);

/// Strategy for [`NarrowRow`]s.
pub fn arb_narrow_row() -> impl Strategy<Value = NarrowRow> {
    (
        0u8..4,        // X index
        0i64..4,       // A value
        any::<bool>(), // A missing?
        0u8..4,        // S index
        any::<bool>(), // S missing?
    )
}

/// Materializes narrow rows into a [`Table`]. Unlike the wide builder,
/// missing flags apply unconditionally — the chunked oracle wants missing
/// cells in every chunk, not just on selected domain values.
pub fn build_narrow_table(rows: &[NarrowRow]) -> Table {
    let mut builder = TableBuilder::new(narrow_schema());
    for &(x, a, a_miss, s, s_miss) in rows {
        builder
            .push_row(vec![
                Value::Text(format!("x{x}")),
                if a_miss {
                    Value::Missing
                } else {
                    Value::Int(a)
                },
                if s_miss {
                    Value::Missing
                } else {
                    Value::Text(format!("s{s}"))
                },
            ])
            .unwrap();
    }
    builder.finish()
}
