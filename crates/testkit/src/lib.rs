//! # psens-testkit
//!
//! Fixture builders shared by the integration suites. Before this crate,
//! `tests/kernel_equivalence.rs`, `tests/search_equivalence.rs`, and
//! `tests/chunked_equivalence.rs` each carried their own copies of the same
//! schemas, row strategies, table builders, and QI spaces; any fix to one
//! silently diverged from the others.
//!
//! **Compatibility contract:** the proptest strategies here are
//! *structurally identical* to the copies they replaced — same tuple
//! shapes, same ranges, in the same order. The committed
//! `.proptest-regressions` files replay by seed, so changing a strategy's
//! structure would silently re-map every persisted failure onto a
//! different input. Extend by adding new functions, not by editing the
//! shapes of existing ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deltas;
pub mod spaces;
pub mod tables;
