//! Crash-recovery end-to-end: real servers restarted over a shared
//! `--state-dir`, with the journal and snapshot attacked between boots.
//!
//! The contract under test (DESIGN §15): the journal is written ahead of
//! every in-memory effect, so after ANY crash point a restart recovers a
//! prefix of the registrations and pool keys; the snapshot is an
//! all-or-nothing optimization whose loss costs warm-up, never
//! correctness. Every recovered path must yield verdicts byte-identical
//! to the pre-crash (and fresh-boot) ones. Byte-boundary truncation of
//! journal and snapshot is exhaustively unit-tested in `state.rs`; these
//! tests drive the same machinery through full server boots.

use psens_datasets::fixtures::adult_fixture;
use psens_microdata::JsonValue;
use psens_server::client::{register_params, Client};
use psens_server::{start, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};
use std::time::Duration;

const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Fresh scratch dir per test, safe under parallel test execution.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("psens-recovery-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stateful_server(dir: &Path) -> ServerHandle {
    start(ServerConfig {
        state_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    })
    .expect("bind loopback")
}

fn client_for(handle: &ServerHandle) -> Client {
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_io_timeout(Some(IO_TIMEOUT)).unwrap();
    client
}

fn anonymize_params() -> JsonValue {
    let mut params = JsonValue::object();
    params.set("dataset", JsonValue::Str("adult".into()));
    params.set("p", JsonValue::Int(2));
    params.set("k", JsonValue::Int(3));
    params.set("ts", JsonValue::Int(10));
    params
}

/// Boots, registers, anonymizes once (journaling the pool key), and shuts
/// down cleanly (writing the snapshot). Returns the pre-crash verdict.
fn seed_state(dir: &Path) -> String {
    let mut handle = stateful_server(dir);
    let mut client = client_for(&handle);
    let fixture = adult_fixture(21, 80);
    client
        .call_ok(
            "register",
            register_params("adult", &fixture.csv, &fixture.spec),
        )
        .unwrap();
    let result = client.call_ok("anonymize", anonymize_params()).unwrap();
    assert!(!result.require("warm").unwrap().as_bool().unwrap());
    let verdict = result.require("verdict").unwrap().to_json();
    drop(client);
    let snapshot = handle.shutdown().expect("clean shutdown writes a snapshot");
    assert!(snapshot.entries > 0, "snapshot must hold exact verdicts");
    verdict
}

#[test]
fn clean_restart_replays_journal_and_snapshot_verbatim() {
    let dir = scratch("clean");
    let baseline = seed_state(&dir);

    let handle = stateful_server(&dir);
    let recovery = handle.recovery();
    assert_eq!(recovery.datasets, 1, "journal replays the registration");
    assert_eq!(recovery.pools, 1, "journal replays the pool key");
    assert!(recovery.verdicts > 0, "snapshot replays exact verdicts");
    assert!(
        recovery.warnings.is_empty(),
        "clean state must recover without warnings: {:?}",
        recovery.warnings
    );

    let mut client = client_for(&handle);
    let result = client.call_ok("anonymize", anonymize_params()).unwrap();
    assert!(
        result.require("warm").unwrap().as_bool().unwrap(),
        "the recovered pool must serve the first post-boot request warm"
    );
    assert_eq!(result.require("verdict").unwrap().to_json(), baseline);
    // The recovered store actually replays: some verdicts come from cache.
    let search = result.require("search").unwrap();
    let replays = search.require("cache_hits").unwrap().as_u64().unwrap()
        + search.require("cache_inferred").unwrap().as_u64().unwrap();
    assert!(replays > 0, "warm boot must reuse snapshot verdicts");
}

/// kill -9 before the snapshot: the journal alone recovers registrations
/// and pool keys; pools rebuild cold, verdicts unchanged.
#[test]
fn crash_without_snapshot_rebuilds_cold_with_identical_verdicts() {
    let dir = scratch("no-snapshot");
    let baseline = seed_state(&dir);
    // Simulate dying before the shutdown snapshot existed.
    std::fs::remove_file(dir.join("pools.snap")).unwrap();

    let handle = stateful_server(&dir);
    let recovery = handle.recovery();
    assert_eq!(recovery.datasets, 1);
    assert_eq!(recovery.pools, 1);
    assert_eq!(recovery.verdicts, 0, "no snapshot, no warm verdicts");

    let mut client = client_for(&handle);
    let result = client.call_ok("anonymize", anonymize_params()).unwrap();
    assert_eq!(
        result.require("verdict").unwrap().to_json(),
        baseline,
        "a cold rebuild must not change the verdict"
    );
}

/// A torn journal tail (crash mid-append) costs at most the torn record:
/// the prefix replays, with a warning, and the server boots fine.
#[test]
fn torn_journal_tail_recovers_prefix_with_warning() {
    let dir = scratch("torn");
    let baseline = seed_state(&dir);
    let journal = dir.join("registry.journal");
    let mut bytes = std::fs::read(&journal).unwrap();
    // Append half a record with no trailing newline — a classic torn write.
    bytes.extend_from_slice(br#"{"kind":"pool","dataset":"adu"#);
    std::fs::write(&journal, &bytes).unwrap();

    let handle = stateful_server(&dir);
    let recovery = handle.recovery();
    assert_eq!(recovery.datasets, 1, "the intact prefix must replay");
    assert_eq!(recovery.pools, 1);
    assert!(
        recovery.warnings.iter().any(|w| w.contains("torn")),
        "the torn tail must be reported: {:?}",
        recovery.warnings
    );

    let mut client = client_for(&handle);
    let result = client.call_ok("anonymize", anonymize_params()).unwrap();
    assert_eq!(result.require("verdict").unwrap().to_json(), baseline);
}

/// A tampered snapshot is discarded whole (its end-marker hash fails);
/// recovery falls back to journal-only, verdicts unchanged.
#[test]
fn tampered_snapshot_is_discarded_whole() {
    let dir = scratch("tampered-snap");
    let baseline = seed_state(&dir);
    let snap = dir.join("pools.snap");
    let mut bytes = std::fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&snap, &bytes).unwrap();

    let handle = stateful_server(&dir);
    let recovery = handle.recovery();
    assert_eq!(recovery.datasets, 1);
    assert_eq!(recovery.pools, 1);
    assert_eq!(
        recovery.verdicts, 0,
        "a snapshot failing its hash must contribute nothing"
    );

    let mut client = client_for(&handle);
    let result = client.call_ok("anonymize", anonymize_params()).unwrap();
    assert_eq!(result.require("verdict").unwrap().to_json(), baseline);
}

/// A stored CSV whose bytes no longer match the journaled hash (disk
/// corruption) is refused: the dataset is skipped with a warning rather
/// than silently serving corrupt data; re-registering works.
#[test]
fn stale_csv_hash_skips_dataset_fail_closed() {
    let dir = scratch("stale-hash");
    seed_state(&dir);
    let datasets = dir.join("datasets");
    let stored: Vec<PathBuf> = std::fs::read_dir(&datasets)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(stored.len(), 1, "one content-addressed CSV expected");
    let mut csv = std::fs::read(&stored[0]).unwrap();
    csv[0] ^= 0x01;
    std::fs::write(&stored[0], &csv).unwrap();

    let handle = stateful_server(&dir);
    let recovery = handle.recovery();
    assert_eq!(
        recovery.datasets, 0,
        "a hash-mismatched CSV must not be served"
    );
    assert_eq!(recovery.pools, 0, "pools of a skipped dataset are dropped");
    assert!(
        recovery.warnings.iter().any(|w| w.contains("hash")),
        "the mismatch must be reported: {:?}",
        recovery.warnings
    );

    // The name is free again: a fresh register works and serves.
    let mut client = client_for(&handle);
    let fixture = adult_fixture(21, 80);
    client
        .call_ok(
            "register",
            register_params("adult", &fixture.csv, &fixture.spec),
        )
        .unwrap();
    client.call_ok("anonymize", anonymize_params()).unwrap();
}

/// Registrations performed AFTER a recovery are journaled too: state
/// accretes across restarts instead of resetting to the last seed.
#[test]
fn journal_accretes_across_restarts() {
    let dir = scratch("accrete");
    seed_state(&dir);

    {
        let handle = stateful_server(&dir);
        let mut client = client_for(&handle);
        let fixture = adult_fixture(77, 60);
        client
            .call_ok(
                "register",
                register_params("adult-2", &fixture.csv, &fixture.spec),
            )
            .unwrap();
    } // drop = clean shutdown

    let handle = stateful_server(&dir);
    let recovery = handle.recovery();
    assert_eq!(
        recovery.datasets, 2,
        "both generations of registrations must survive"
    );
    let mut client = client_for(&handle);
    let stats = client.call_ok("stats", JsonValue::object()).unwrap();
    let names: Vec<String> = stats
        .require("datasets")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|d| d.require("name").unwrap().as_str().unwrap().to_owned())
        .collect();
    assert!(names.contains(&"adult".to_owned()), "{names:?}");
    assert!(names.contains(&"adult-2".to_owned()), "{names:?}");
}
